"""Synthetic multi-source dataset machinery.

Implements the generation recipe every domain module shares: sample a
ground truth, then let each source — with its own reliability and coverage
— emit claims that are either correct or (deterministically seeded) wrong.
Wrong claims mix *typed* errors (a different value from the same pool, the
hard case for schema checks) with *confusion* errors (another entity's
value, the classic copy-paste mistake in web sources).

The paper's density distinction is controlled by ``coverage`` and
``report_prob``: Movies/Flights generators use high values (dense),
Books/Stocks low ones (sparse).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.datasets.schema import Claim, MultiSourceDataset, QuerySpec, SourceSpec
from repro.datasets.variants import SourceStyle, assign_style, render_variant
from repro.errors import DatasetError
from repro.util import canonical_value


@dataclass(frozen=True, slots=True)
class AttributeSpec:
    """One attribute of a domain and how sources report it."""

    name: str
    pool: tuple[str, ...]
    multi: bool = False
    max_values: int = 1
    report_prob: float = 1.0
    #: semantic kind driving per-source surface variation ("person",
    #: "title", "price", "count", or "plain").
    value_kind: str = "plain"


@dataclass(frozen=True, slots=True)
class SourceProfile:
    """A family of sources sharing format and quality characteristics."""

    fmt: str
    count: int
    reliability_low: float
    reliability_high: float
    coverage: float


@dataclass(slots=True)
class DomainSpec:
    """Everything needed to generate one domain's multi-source dataset."""

    domain: str
    entity_pool: list[str]
    attributes: list[AttributeSpec] = field(default_factory=list)
    #: probability that a wrong value is a typed error (same pool) rather
    #: than a confusion error (another entity's true value).
    typed_error_prob: float = 0.7
    #: probability that an erring source *copies* the key's popular wrong
    #: value instead of inventing its own — source dependence, the classic
    #: hardness of truth discovery (Dong et al.).  Correlated wrong values
    #: defeat plain counting (majority vote) while credibility-aware
    #: methods recover.
    herd_error_prob: float = 0.8
    #: probability that a wrong value comes from a *different* attribute's
    #: pool (a parsing/extraction slip, e.g. a gate code in the status
    #: field).  Catchable by schema-type checks.
    cross_type_error_prob: float = 0.3
    #: semantic kind of the entity names themselves ("title" entities may
    #: be rendered library-style: "Silent Horizon, The").
    entity_kind: str = "plain"
    #: probability that a source adopts each formatting convention of
    #: :class:`~repro.datasets.variants.SourceStyle` — the multi-source
    #: heterogeneity MultiRAG's standardization phase absorbs and
    #: string-level fusers fragment on.
    variant_rate: float = 0.0


def generate_dataset(
    name: str,
    spec: DomainSpec,
    profiles: list[SourceProfile],
    n_entities: int,
    n_queries: int,
    seed: int = 0,
) -> MultiSourceDataset:
    """Generate a complete multi-source dataset for ``spec``.

    Raises:
        DatasetError: when the requested entity count exceeds the pool or
            the spec has no attributes.
    """
    if not spec.attributes:
        raise DatasetError(f"domain {spec.domain!r} has no attributes")
    if n_entities > len(spec.entity_pool):
        raise DatasetError(
            f"requested {n_entities} entities but the {spec.domain!r} pool "
            f"has only {len(spec.entity_pool)}"
        )
    rng = random.Random(seed)

    entities = list(spec.entity_pool[:n_entities])
    truth = _sample_truth(rng, entities, spec.attributes)
    specs, styles = _make_source_specs(rng, name, profiles, spec.variant_rate)
    claims = _emit_claims(rng, spec, specs, styles, entities, truth)
    queries = _sample_queries(rng, name, truth, claims, n_queries)
    return MultiSourceDataset(
        name=name,
        domain=spec.domain,
        source_specs=specs,
        claims=claims,
        truth=truth,
        queries=queries,
    )


def _sample_truth(
    rng: random.Random,
    entities: list[str],
    attributes: list[AttributeSpec],
) -> dict[str, dict[str, set[str]]]:
    truth: dict[str, dict[str, set[str]]] = {}
    for entity in entities:
        record: dict[str, set[str]] = {}
        for attr in attributes:
            if attr.multi:
                k = rng.randint(1, max(1, attr.max_values))
                record[attr.name] = set(rng.sample(list(attr.pool), k))
            else:
                record[attr.name] = {rng.choice(list(attr.pool))}
        truth[entity] = record
    return truth


def _make_source_specs(
    rng: random.Random,
    name: str,
    profiles: list[SourceProfile],
    variant_rate: float,
) -> tuple[list[SourceSpec], dict[str, SourceStyle]]:
    specs: list[SourceSpec] = []
    styles: dict[str, SourceStyle] = {}
    for profile in profiles:
        for i in range(profile.count):
            reliability = rng.uniform(profile.reliability_low, profile.reliability_high)
            source_id = f"{name}-{profile.fmt}-{i:02d}"
            specs.append(
                SourceSpec(
                    source_id=source_id,
                    fmt=profile.fmt,
                    reliability=round(reliability, 3),
                    coverage=profile.coverage,
                )
            )
            styles[source_id] = assign_style(rng, variant_rate)
    return specs, styles


def _emit_claims(
    rng: random.Random,
    spec: DomainSpec,
    sources: list[SourceSpec],
    styles: dict[str, SourceStyle],
    entities: list[str],
    truth: dict[str, dict[str, set[str]]],
) -> list[Claim]:
    claims: list[Claim] = []
    attr_by_name = {a.name: a for a in spec.attributes}
    # Pre-draw one "popular wrong value" per (entity, attribute): the value
    # unreliable sources herd on when they copy from each other.
    popular_wrong: dict[tuple[str, str], str | None] = {}
    for entity in entities:
        for attr in spec.attributes:
            popular_wrong[(entity, attr.name)] = _wrong_value(
                rng, spec, attr_by_name[attr.name], entity, truth,
                allow_cross_type=False,
            )
    for source in sources:
        style = styles[source.source_id]
        for entity in entities:
            if rng.random() >= source.coverage:
                continue
            subject = render_variant(entity, spec.entity_kind, style)
            for attr in spec.attributes:
                if rng.random() >= attr.report_prob:
                    continue
                true_values = truth[entity][attr.name]
                if rng.random() < source.reliability:
                    for value in sorted(true_values):
                        # Multi-valued attributes may be reported partially.
                        if len(true_values) > 1 and rng.random() < 0.15:
                            continue
                        claims.append(Claim(
                            source.source_id, subject, attr.name,
                            render_variant(value, attr.value_kind, style),
                        ))
                else:
                    if rng.random() < spec.herd_error_prob:
                        wrong = popular_wrong[(entity, attr.name)]
                    else:
                        wrong = _wrong_value(
                            rng, spec, attr_by_name[attr.name], entity, truth,
                            allow_cross_type=True,
                        )
                    if wrong is not None:
                        claims.append(Claim(
                            source.source_id, subject, attr.name,
                            render_variant(wrong, attr.value_kind, style),
                        ))
    return claims


def _wrong_value(
    rng: random.Random,
    spec: DomainSpec,
    attr: AttributeSpec,
    entity: str,
    truth: dict[str, dict[str, set[str]]],
    allow_cross_type: bool = True,
) -> str | None:
    true_values = truth[entity][attr.name]
    if allow_cross_type and rng.random() < spec.cross_type_error_prob:
        other_attrs = [a for a in spec.attributes if a.name != attr.name]
        if other_attrs:
            donor_attr = rng.choice(other_attrs)
            candidates = [v for v in donor_attr.pool if v not in true_values]
            if candidates:
                return rng.choice(candidates)
    if rng.random() < spec.typed_error_prob:
        candidates = [v for v in attr.pool if v not in true_values]
        if candidates:
            return rng.choice(candidates)
    others = [e for e in truth if e != entity]
    if not others:
        return None
    donor = rng.choice(others)
    donor_values = sorted(truth[donor][attr.name] - true_values)
    return rng.choice(donor_values) if donor_values else None


def _sample_queries(
    rng: random.Random,
    name: str,
    truth: dict[str, dict[str, set[str]]],
    claims: list[Claim],
    n_queries: int,
) -> list[QuerySpec]:
    # Fusion queries target *multi-source* keys (Definition 3): evaluating
    # a fusion method on a key only one source ever mentions measures that
    # source's luck, not the method.  Single-claim keys are used only when
    # multi-source keys run out.
    # Claims may carry per-source surface variants of the entity name;
    # count source support under the semantic canonical form.
    sources_by_key: dict[tuple[str, str], set[str]] = {}
    for claim in claims:
        key = (canonical_value(claim.entity), claim.attribute)
        sources_by_key.setdefault(key, set()).add(claim.source_id)
    multi = [
        (entity, attribute)
        for entity, record in truth.items()
        for attribute, values in record.items()
        if values
        and len(sources_by_key.get((canonical_value(entity), attribute), ())) >= 2
    ]
    single = [
        (entity, attribute)
        for entity, record in truth.items()
        for attribute, values in record.items()
        if values
        and len(sources_by_key.get((canonical_value(entity), attribute), ())) == 1
    ]
    rng.shuffle(multi)
    rng.shuffle(single)
    candidates = multi + single
    queries = []
    for i, (entity, attribute) in enumerate(candidates[:n_queries]):
        spoken = attribute.replace("_", " ")
        queries.append(
            QuerySpec(
                qid=f"{name}-q{i:03d}",
                entity=entity,
                attribute=attribute,
                text=f"What is the {spoken} of {entity}?",
                answers=frozenset(truth[entity][attribute]),
            )
        )
    return queries
