"""Disk materialization and loading of multi-source corpora.

``write_dataset`` lays a :class:`~repro.datasets.schema.MultiSourceDataset`
out on disk the way real multi-source data arrives — one file per source
in its native format, plus a ``queries.json`` manifest — and
``load_sources`` reads any such directory back into
:class:`~repro.adapters.base.RawSource` objects by file extension, so the
pipeline can be pointed at a directory of heterogeneous files:

    rag.ingest(load_sources("corpus/"))
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.adapters.base import RawSource
from repro.datasets.multihop import MultiHopDataset, MultiHopQuery
from repro.datasets.schema import MultiSourceDataset, QuerySpec
from repro.errors import DatasetError

#: file suffix → adapter format.
SUFFIX_FORMATS = {
    ".csv": "csv",
    ".json": "json",
    ".xml": "xml",
    ".kg.json": "kg",
    ".txt": "text",
}

#: suffix for text sources whose payload is an entity→page mapping (the
#: multi-hop wiki corpora) rather than one flat document.
PAGES_SUFFIX = ".pages.json"


def _suffix_for(fmt: str) -> str:
    for suffix, known in SUFFIX_FORMATS.items():
        if known == fmt:
            return suffix
    raise DatasetError(f"no file suffix known for format {fmt!r}")


def write_dataset(dataset: MultiSourceDataset, directory: str | Path) -> Path:
    """Write every source (and the query manifest) under ``directory``.

    Raises:
        DatasetError: if a source cannot be materialized or its format has
            no known file suffix.
    """
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    for raw in dataset.raw_sources():
        path = root / f"{raw.source_id}{_suffix_for(raw.fmt)}"
        if raw.fmt in {"csv", "xml", "text"}:
            path.write_text(raw.payload)
        else:
            path.write_text(json.dumps(raw.payload, ensure_ascii=False, indent=1))
    manifest = {
        "name": dataset.name,
        "domain": dataset.domain,
        "queries": [
            {
                "qid": q.qid,
                "entity": q.entity,
                "attribute": q.attribute,
                "text": q.text,
                "answers": sorted(q.answers),
            }
            for q in dataset.queries
        ],
    }
    (root / "queries.json").write_text(
        json.dumps(manifest, ensure_ascii=False, indent=1)
    )
    return root


def write_multihop(dataset: MultiHopDataset, directory: str | Path) -> Path:
    """Write a multi-hop wiki corpus: page sources + multihop manifest.

    Each source lands as ``<id>.pages.json`` (entity → page text); the
    manifest keeps the hop decompositions and gold hop labels so a
    reloaded corpus diagnoses identically to a freshly generated one.

    Raises:
        DatasetError: if a source payload is not an entity→page mapping.
    """
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    for raw in dataset.sources:
        if not isinstance(raw.payload, dict):
            raise DatasetError(
                f"multihop source {raw.source_id!r} payload is not a "
                "page mapping"
            )
        (root / f"{raw.source_id}{PAGES_SUFFIX}").write_text(
            json.dumps(raw.payload, ensure_ascii=False, indent=1)
        )
    manifest = {
        "name": dataset.name,
        "kind": "multihop",
        "queries": [
            {
                "qid": q.qid,
                "text": q.text,
                "qtype": q.qtype,
                "hops": [list(h) for h in q.hops],
                "hops_b": [list(h) for h in q.hops_b],
                "answers": sorted(q.answers),
                "gold_entities": sorted(q.gold_entities),
                "gold_hops": [sorted(g) for g in q.gold_hops],
                "gold_hops_b": [sorted(g) for g in q.gold_hops_b],
            }
            for q in dataset.queries
        ],
    }
    (root / "queries.json").write_text(
        json.dumps(manifest, ensure_ascii=False, indent=1)
    )
    return root


def is_multihop_corpus(directory: str | Path) -> bool:
    """True when ``directory`` holds a manifest written by
    :func:`write_multihop`."""
    path = Path(directory) / "queries.json"
    if not path.exists():
        return False
    try:
        manifest = json.loads(path.read_text())
    except json.JSONDecodeError:
        return False
    return isinstance(manifest, dict) and manifest.get("kind") == "multihop"


def load_multihop(directory: str | Path) -> MultiHopDataset:
    """Read a corpus written by :func:`write_multihop` back from disk.

    Raises:
        DatasetError: if the manifest is missing or not a multihop one.
    """
    root = Path(directory)
    path = root / "queries.json"
    if not path.exists():
        raise DatasetError(f"no queries.json under {directory}")
    manifest = json.loads(path.read_text())
    if manifest.get("kind") != "multihop":
        raise DatasetError(f"{path} is not a multihop manifest")
    queries = [
        MultiHopQuery(
            qid=q["qid"],
            text=q["text"],
            qtype=q["qtype"],
            hops=tuple((h[0], h[1]) for h in q["hops"]),
            hops_b=tuple((h[0], h[1]) for h in q.get("hops_b", [])),
            answers=frozenset(q["answers"]),
            gold_entities=frozenset(q.get("gold_entities", [])),
            gold_hops=tuple(
                frozenset(g) for g in q.get("gold_hops", [])
            ),
            gold_hops_b=tuple(
                frozenset(g) for g in q.get("gold_hops_b", [])
            ),
        )
        for q in manifest.get("queries", [])
    ]
    return MultiHopDataset(
        name=manifest.get("name", root.name),
        sources=load_sources(root),
        queries=queries,
    )


def load_sources(directory: str | Path, domain: str = "") -> list[RawSource]:
    """Read every recognized data file under ``directory`` as a RawSource.

    The source id is the file stem; the format comes from the suffix
    (``.kg.json`` before plain ``.json``, ``.pages.json`` mapping back to
    dict-payload text sources).  ``queries.json`` is skipped.

    Raises:
        DatasetError: if the directory holds no recognized files.
    """
    root = Path(directory)
    if not root.is_dir():
        raise DatasetError(f"{root} is not a directory")
    sources: list[RawSource] = []
    for path in sorted(root.iterdir()):
        if not path.is_file() or path.name == "queries.json":
            continue
        fmt = None
        if path.name.endswith(PAGES_SUFFIX):
            fmt = "text"
            stem = path.name[: -len(PAGES_SUFFIX)]
        elif path.name.endswith(".kg.json"):
            fmt = "kg"
            stem = path.name[: -len(".kg.json")]
        elif path.suffix in SUFFIX_FORMATS:
            fmt = SUFFIX_FORMATS[path.suffix]
            stem = path.stem
        if fmt is None:
            continue
        text = path.read_text()
        payload: object = text
        if fmt in {"json", "kg"} or path.name.endswith(PAGES_SUFFIX):
            payload = json.loads(text)
        sources.append(
            RawSource(
                source_id=stem,
                domain=domain or root.name,
                fmt=fmt,
                name=path.name,
                payload=payload,
            )
        )
    if not sources:
        raise DatasetError(f"no recognized data files under {root}")
    return sources


def load_queries(directory: str | Path) -> list[QuerySpec]:
    """Read the ``queries.json`` manifest written by :func:`write_dataset`.

    Raises:
        DatasetError: if ``directory`` has no ``queries.json``.
    """
    path = Path(directory) / "queries.json"
    if not path.exists():
        raise DatasetError(f"no queries.json under {directory}")
    manifest = json.loads(path.read_text())
    return [
        QuerySpec(
            qid=q["qid"],
            entity=q["entity"],
            attribute=q["attribute"],
            text=q["text"],
            answers=frozenset(q["answers"]),
        )
        for q in manifest.get("queries", [])
    ]
