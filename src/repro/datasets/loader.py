"""Disk materialization and loading of multi-source corpora.

``write_dataset`` lays a :class:`~repro.datasets.schema.MultiSourceDataset`
out on disk the way real multi-source data arrives — one file per source
in its native format, plus a ``queries.json`` manifest — and
``load_sources`` reads any such directory back into
:class:`~repro.adapters.base.RawSource` objects by file extension, so the
pipeline can be pointed at a directory of heterogeneous files:

    rag.ingest(load_sources("corpus/"))
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.adapters.base import RawSource
from repro.datasets.schema import MultiSourceDataset, QuerySpec
from repro.errors import DatasetError

#: file suffix → adapter format.
SUFFIX_FORMATS = {
    ".csv": "csv",
    ".json": "json",
    ".xml": "xml",
    ".kg.json": "kg",
    ".txt": "text",
}


def _suffix_for(fmt: str) -> str:
    for suffix, known in SUFFIX_FORMATS.items():
        if known == fmt:
            return suffix
    raise DatasetError(f"no file suffix known for format {fmt!r}")


def write_dataset(dataset: MultiSourceDataset, directory: str | Path) -> Path:
    """Write every source (and the query manifest) under ``directory``.

    Raises:
        DatasetError: if a source cannot be materialized or its format has
            no known file suffix.
    """
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    for raw in dataset.raw_sources():
        path = root / f"{raw.source_id}{_suffix_for(raw.fmt)}"
        if raw.fmt in {"csv", "xml", "text"}:
            path.write_text(raw.payload)
        else:
            path.write_text(json.dumps(raw.payload, ensure_ascii=False, indent=1))
    manifest = {
        "name": dataset.name,
        "domain": dataset.domain,
        "queries": [
            {
                "qid": q.qid,
                "entity": q.entity,
                "attribute": q.attribute,
                "text": q.text,
                "answers": sorted(q.answers),
            }
            for q in dataset.queries
        ],
    }
    (root / "queries.json").write_text(
        json.dumps(manifest, ensure_ascii=False, indent=1)
    )
    return root


def load_sources(directory: str | Path, domain: str = "") -> list[RawSource]:
    """Read every recognized data file under ``directory`` as a RawSource.

    The source id is the file stem; the format comes from the suffix
    (``.kg.json`` before plain ``.json``).  ``queries.json`` is skipped.

    Raises:
        DatasetError: if the directory holds no recognized files.
    """
    root = Path(directory)
    if not root.is_dir():
        raise DatasetError(f"{root} is not a directory")
    sources: list[RawSource] = []
    for path in sorted(root.iterdir()):
        if not path.is_file() or path.name == "queries.json":
            continue
        fmt = None
        if path.name.endswith(".kg.json"):
            fmt = "kg"
            stem = path.name[: -len(".kg.json")]
        elif path.suffix in SUFFIX_FORMATS:
            fmt = SUFFIX_FORMATS[path.suffix]
            stem = path.stem
        if fmt is None:
            continue
        text = path.read_text()
        payload: object = text
        if fmt in {"json", "kg"}:
            payload = json.loads(text)
        sources.append(
            RawSource(
                source_id=stem,
                domain=domain or root.name,
                fmt=fmt,
                name=path.name,
                payload=payload,
            )
        )
    if not sources:
        raise DatasetError(f"no recognized data files under {root}")
    return sources


def load_queries(directory: str | Path) -> list[QuerySpec]:
    """Read the ``queries.json`` manifest written by :func:`write_dataset`.

    Raises:
        DatasetError: if ``directory`` has no ``queries.json``.
    """
    path = Path(directory) / "queries.json"
    if not path.exists():
        raise DatasetError(f"no queries.json under {directory}")
    manifest = json.loads(path.read_text())
    return [
        QuerySpec(
            qid=q["qid"],
            entity=q["entity"],
            attribute=q["attribute"],
            text=q["text"],
            answers=frozenset(q["answers"]),
        )
        for q in manifest.get("queries", [])
    ]
