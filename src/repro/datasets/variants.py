"""Surface-form variation across sources (multi-source heterogeneity).

Real multi-source data disagrees not only on *facts* but on *formats*: one
feed writes ``Christopher Nolan``, another ``Nolan, Christopher``; one
quotes ``249.74``, another ``$249.74``; one logs ``715000``, another
``715,000``.  This is the data heterogeneity MultiRAG's knowledge
construction module exists to absorb (the adapter + standardization
phases), and what string-level fusers fragment on.

Each synthetic source is assigned a deterministic *style* — whether it
uses comma-inverted names, dollar prefixes, thousands separators — and the
generator renders every claim through :func:`render_variant` accordingly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class SourceStyle:
    """Formatting conventions of one source."""

    comma_names: bool = False
    dollar_prices: bool = False
    grouped_counts: bool = False
    comma_titles: bool = False


def assign_style(rng: random.Random, variant_rate: float) -> SourceStyle:
    """Draw a style; each convention toggles on with ``variant_rate``."""
    return SourceStyle(
        comma_names=rng.random() < variant_rate,
        dollar_prices=rng.random() < variant_rate,
        grouped_counts=rng.random() < variant_rate,
        comma_titles=rng.random() < variant_rate,
    )


def render_variant(value: str, kind: str, style: SourceStyle) -> str:
    """Render ``value`` of semantic ``kind`` in this source's style."""
    if kind == "person" and style.comma_names:
        return invert_name(value)
    if kind == "title" and style.comma_titles:
        return invert_title(value)
    if kind == "price" and style.dollar_prices:
        return f"${value}"
    if kind == "count" and style.grouped_counts:
        return group_thousands(value)
    return value


def invert_name(name: str) -> str:
    """``First [Middle] Last`` → ``Last, First [Middle]``."""
    parts = name.split()
    if len(parts) < 2 or "," in name:
        return name
    return f"{parts[-1]}, {' '.join(parts[:-1])}"


def invert_title(title: str) -> str:
    """``The Silent Horizon`` → ``Silent Horizon, The`` (library style)."""
    parts = title.split()
    if len(parts) < 2 or parts[0].lower() not in {"the", "a", "an"} or "," in title:
        return title
    return f"{' '.join(parts[1:])}, {parts[0]}"


def group_thousands(number: str) -> str:
    """``715000`` → ``715,000``; non-integers pass through unchanged."""
    if not number.isdigit():
        return number
    return f"{int(number):,}"
