"""Books dataset generator (sparse; 10 sources: 3 JSON, 3 CSV, 4 XML).

The paper's Books benchmark is one of the two *sparse* datasets: low
coverage per source and fewer overlapping claims, which is where MultiRAG's
aggregation advantage is largest (Table II).
"""

from __future__ import annotations

import random

from repro.datasets import names
from repro.datasets.schema import MultiSourceDataset
from repro.datasets.synth import AttributeSpec, DomainSpec, SourceProfile, generate_dataset

#: Table I reports these paper-scale counts for Books.
PAPER_STATS = {
    "json": {"sources": 3, "entities": 3_392, "relations": 2_824},
    "csv": {"sources": 3, "entities": 2_547, "relations": 1_812},
    "xml": {"sources": 4, "entities": 2_054, "relations": 1_509},
}


def make_books(scale: float = 1.0, seed: int = 0, n_queries: int = 100) -> MultiSourceDataset:
    """Generate the synthetic Books dataset.

    Raises:
        DatasetError: if generation produces an inconsistent spec.
    """
    rng = random.Random(seed * 7919 + 23)
    n_entities = max(20, int(90 * scale))
    titles = names.work_titles(rng, n_entities, prefix="A")
    people = names.person_names(rng, 60)
    years = tuple(str(y) for y in range(1900, 2024))
    isbns = tuple(f"978-{rng.randint(0, 9)}-{rng.randint(1000, 9999)}-"
                  f"{rng.randint(1000, 9999)}-{rng.randint(0, 9)}"
                  for _ in range(300))
    spec = DomainSpec(
        domain="books",
        entity_pool=titles,
        entity_kind="title",
        variant_rate=0.40,
        attributes=[
            AttributeSpec("author", tuple(people), multi=True,
                          max_values=2, report_prob=0.9, value_kind="person"),
            AttributeSpec("publisher", tuple(names.PUBLISHERS), report_prob=0.7),
            AttributeSpec("publication_year", years, report_prob=0.75),
            AttributeSpec("isbn", isbns, report_prob=0.5),
            AttributeSpec("language", tuple(names.LANGUAGES), report_prob=0.55),
        ],
    )
    profiles = [
        SourceProfile("json", 3, 0.30, 0.85, coverage=0.45),
        SourceProfile("csv", 3, 0.28, 0.82, coverage=0.42),
        SourceProfile("xml", 4, 0.25, 0.80, coverage=0.42),
    ]
    return generate_dataset(
        "books", spec, profiles, n_entities=n_entities,
        n_queries=n_queries, seed=seed,
    )
