"""Dataset schemas shared by all synthetic domain generators.

A dataset is fundamentally a *claims table*: every row says "source S
asserts entity E's attribute A has value V".  Raw multi-format files
(CSV / nested JSON / XML / KG / text) are materialized from the claims on
demand, which is what lets the perturbation machinery (sparsity masking,
consistency corruption) operate format-agnostically on claims and still
exercise every adapter.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.adapters.base import RawSource
from repro.errors import DatasetError
from repro.llm.lexicon import verbalize
from repro.util import normalize_value

#: Table I format letters used in source-configuration names (J/K/C/X).
FORMAT_LETTERS: dict[str, str] = {
    "json": "J",
    "kg": "K",
    "csv": "C",
    "xml": "X",
    "text": "T",
}


@dataclass(frozen=True, slots=True)
class Claim:
    """One source's assertion about one attribute of one entity."""

    source_id: str
    entity: str
    attribute: str
    value: str

    def key(self) -> tuple[str, str]:
        return (self.entity, self.attribute)


@dataclass(frozen=True, slots=True)
class SourceSpec:
    """A synthetic source: its format and quality characteristics."""

    source_id: str
    fmt: str
    reliability: float
    coverage: float

    def letter(self) -> str:
        return FORMAT_LETTERS.get(self.fmt, "?")


@dataclass(frozen=True, slots=True)
class QuerySpec:
    """One evaluation query with its ground-truth answer set."""

    qid: str
    entity: str
    attribute: str
    text: str
    answers: frozenset[str]

    def normalized_answers(self) -> set[str]:
        return {normalize_value(a) for a in self.answers}


@dataclass(slots=True)
class MultiSourceDataset:
    """A claims table plus sources, ground truth and evaluation queries."""

    name: str
    domain: str
    source_specs: list[SourceSpec]
    claims: list[Claim]
    truth: dict[str, dict[str, set[str]]]
    queries: list[QuerySpec]

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def spec(self, source_id: str) -> SourceSpec:
        """The :class:`SourceSpec` with the given id.

        Raises:
            DatasetError: if no source has that id.
        """
        for spec in self.source_specs:
            if spec.source_id == source_id:
                return spec
        raise DatasetError(f"unknown source {source_id!r} in dataset {self.name!r}")

    def claims_by_source(self) -> dict[str, list[Claim]]:
        grouped: dict[str, list[Claim]] = defaultdict(list)
        for claim in self.claims:
            grouped[claim.source_id].append(claim)
        return grouped

    def formats(self) -> list[str]:
        return sorted({spec.fmt for spec in self.source_specs})

    def restrict_formats(self, fmts: set[str]) -> "MultiSourceDataset":
        """Sub-dataset with only the sources of the given formats.

        This is how Table II's source configurations (J/K, J/C, J/K/C, ...)
        are produced from the full dataset.

        Raises:
            DatasetError: if no source matches the requested formats.
        """
        specs = [s for s in self.source_specs if s.fmt in fmts]
        if not specs:
            raise DatasetError(
                f"dataset {self.name!r} has no sources in formats {sorted(fmts)}"
            )
        keep_ids = {s.source_id for s in specs}
        claims = [c for c in self.claims if c.source_id in keep_ids]
        answered = {c.key() for c in claims}
        queries = [q for q in self.queries if (q.entity, q.attribute) in answered]
        letters = "/".join(sorted({s.letter() for s in specs}))
        return MultiSourceDataset(
            name=f"{self.name}-{letters}",
            domain=self.domain,
            source_specs=specs,
            claims=claims,
            truth=self.truth,
            queries=queries,
        )

    def config_name(self) -> str:
        """Format-letter configuration label, e.g. ``"J/K/C"``."""
        return "/".join(sorted({s.letter() for s in self.source_specs}))

    # ------------------------------------------------------------------
    # materialization
    # ------------------------------------------------------------------
    def raw_sources(self) -> list[RawSource]:
        """Materialize every source's claims into its storage format.

        Raises:
            DatasetError: if a spec names a format with no materializer.
        """
        grouped = self.claims_by_source()
        sources: list[RawSource] = []
        for spec in self.source_specs:
            claims = grouped.get(spec.source_id, [])
            sources.append(_materialize(self.domain, spec, claims))
        return sources

    # ------------------------------------------------------------------
    # statistics (Table I)
    # ------------------------------------------------------------------
    def stats_by_format(self) -> dict[str, dict[str, int]]:
        """Per-format entity / relation / source counts (Table I rows)."""
        stats: dict[str, dict[str, int]] = {}
        grouped = self.claims_by_source()
        for fmt in self.formats():
            specs = [s for s in self.source_specs if s.fmt == fmt]
            entities: set[str] = set()
            relations = 0
            for spec in specs:
                for claim in grouped.get(spec.source_id, []):
                    entities.add(claim.entity)
                    entities.add(claim.value)
                    relations += 1
            stats[fmt] = {
                "sources": len(specs),
                "entities": len(entities),
                "relations": relations,
            }
        return stats


def _materialize(domain: str, spec: SourceSpec, claims: list[Claim]) -> RawSource:
    """Render one source's claims in its native storage format."""
    builder = {
        "csv": _to_csv,
        "json": _to_json,
        "xml": _to_xml,
        "kg": _to_kg,
        "text": _to_text,
    }.get(spec.fmt)
    if builder is None:
        raise DatasetError(f"cannot materialize format {spec.fmt!r}")
    payload = builder(claims)
    return RawSource(
        source_id=spec.source_id,
        domain=domain,
        fmt=spec.fmt,
        name=f"{spec.source_id}.{spec.fmt}",
        payload=payload,
        meta={"reliability_band": "undisclosed", "domain": domain},
    )


def _group_by_entity(claims: list[Claim]) -> dict[str, dict[str, list[str]]]:
    by_entity: dict[str, dict[str, list[str]]] = defaultdict(lambda: defaultdict(list))
    for claim in claims:
        by_entity[claim.entity][claim.attribute].append(claim.value)
    return by_entity


def _to_csv(claims: list[Claim]) -> str:
    by_entity = _group_by_entity(claims)
    attributes = sorted({c.attribute for c in claims})
    header = ["entity"] + attributes
    lines = [",".join(header)]
    for entity in sorted(by_entity):
        row = [_csv_escape(entity)]
        for attr in attributes:
            row.append(_csv_escape(";".join(by_entity[entity].get(attr, []))))
        lines.append(",".join(row))
    return "\n".join(lines) + "\n"


def _csv_escape(cell: str) -> str:
    if "," in cell or '"' in cell:
        return '"' + cell.replace('"', '""') + '"'
    return cell


def _to_json(claims: list[Claim]) -> dict:
    by_entity = _group_by_entity(claims)
    records = []
    for entity in sorted(by_entity):
        attrs: dict[str, object] = {}
        # Nest every second attribute under a "details" block so the DFS
        # flattening path of the JSON adapter is genuinely exercised.
        details: dict[str, object] = {}
        for i, (attr, values) in enumerate(sorted(by_entity[entity].items())):
            payload: object = values if len(values) > 1 else values[0]
            if i % 2 == 1:
                details[attr] = payload
            else:
                attrs[attr] = payload
        if details:
            attrs["details"] = details
        records.append({"name": entity, "attributes": attrs})
    return {"records": records}


def _to_xml(claims: list[Claim]) -> str:
    from xml.sax.saxutils import escape, quoteattr

    by_entity = _group_by_entity(claims)
    lines = ["<source>"]
    for entity in sorted(by_entity):
        lines.append(f"  <record name={quoteattr(entity)}>")
        for attr, values in sorted(by_entity[entity].items()):
            for value in values:
                lines.append(f"    <{attr}>{escape(value)}</{attr}>")
        lines.append("  </record>")
    lines.append("</source>")
    return "\n".join(lines)


def _to_kg(claims: list[Claim]) -> dict:
    return {
        "triples": [[c.entity, c.attribute, c.value] for c in claims]
    }


def _to_text(claims: list[Claim]) -> str:
    return " ".join(verbalize(c.entity, c.attribute, c.value) for c in claims)
