"""Synthetic datasets mirroring the paper's benchmarks (see DESIGN.md §1)."""

from repro.datasets.books import make_books
from repro.datasets.flights import make_flights
from repro.datasets.loader import (
    is_multihop_corpus,
    load_multihop,
    load_queries,
    load_sources,
    write_dataset,
    write_multihop,
)
from repro.datasets.movies import make_movies
from repro.datasets.multihop import (
    MultiHopDataset,
    MultiHopQuery,
    make_2wiki,
    make_2wiki_like,
    make_hotpot,
    make_hotpotqa_like,
)
from repro.datasets.perturb import (
    corrupt_consistency,
    corrupt_sources,
    mask_relations,
)
from repro.datasets.schema import (
    Claim,
    MultiSourceDataset,
    QuerySpec,
    SourceSpec,
)
from repro.datasets.stocks import make_stocks
from repro.datasets.synth import (
    AttributeSpec,
    DomainSpec,
    SourceProfile,
    generate_dataset,
)

#: name -> factory for the four fusion benchmarks.
DATASET_FACTORIES = {
    "movies": make_movies,
    "books": make_books,
    "flights": make_flights,
    "stocks": make_stocks,
}

#: name -> factory for the multi-hop QA corpora (separate table: these
#: return :class:`MultiHopDataset`, not :class:`MultiSourceDataset`).
MULTIHOP_FACTORIES = {
    "hotpot": make_hotpot,
    "2wiki": make_2wiki,
}

__all__ = [
    "AttributeSpec",
    "is_multihop_corpus",
    "load_multihop",
    "load_queries",
    "load_sources",
    "write_dataset",
    "write_multihop",
    "Claim",
    "DATASET_FACTORIES",
    "MULTIHOP_FACTORIES",
    "DomainSpec",
    "MultiHopDataset",
    "MultiHopQuery",
    "MultiSourceDataset",
    "QuerySpec",
    "SourceProfile",
    "SourceSpec",
    "corrupt_consistency",
    "corrupt_sources",
    "generate_dataset",
    "make_2wiki",
    "make_2wiki_like",
    "make_books",
    "make_flights",
    "make_hotpot",
    "make_hotpotqa_like",
    "make_movies",
    "mask_relations",
    "make_stocks",
]
