"""Runtime race sanitizer for the exec worker pool (TSan-lite).

The static concurrency layer (``repro.lint`` CONC/ASY rules) proves
what it can see; this package watches what actually happens.  With
``MultiRAGConfig(sanitize=True)`` — or ``REPRO_SANITIZE=1`` in the
environment — every ``worker_view()`` wraps its shared-by-reference
attributes in :class:`AccessProxy` tripwires that record
``(worker, object, attribute, read/write)`` events during ``execute()``;
:class:`RaceSanitizer` then flags write-write and read-write conflicts
across workers and reports view attributes the split/absorb protocol
failed to mirror (the runtime twin of the static CONC002 rule).

Off by default, like ``debug_contracts``: the disabled path costs one
attribute check per worker view.

The :func:`bisect_divergence` helper replays a batch
sequential-vs-parallel and uses ``repro.obs`` spans to name the first
divergent query, result field, and pipeline stage.

Entry points:

* ``python -m repro sanitize corpus/`` — run a corpus's query batch
  under the sanitizer and the bisector;
* ``MultiRAGConfig(sanitize=True)`` / ``REPRO_SANITIZE=1`` — wire the
  sanitizer into any pipeline;
* the ``sanitized_rag`` pytest fixture (``tests/conftest.py``) — a
  sanitize-enabled pipeline whose teardown fails the test on conflicts.

See ``docs/static_analysis.md`` for the full concurrency gate.
"""

from repro.san.bisect import (
    DivergenceReport,
    bisect_divergence,
    canonical_result,
)
from repro.san.events import READ, WRITE, AccessEvent, AccessLog
from repro.san.monitor import (
    READ_WRITE,
    WRITE_WRITE,
    Conflict,
    RaceSanitizer,
    SanitizerReport,
)
from repro.san.proxy import MUTATOR_NAMES, AccessProxy, unwrap

__all__ = [
    "READ",
    "READ_WRITE",
    "WRITE",
    "WRITE_WRITE",
    "AccessEvent",
    "AccessLog",
    "AccessProxy",
    "Conflict",
    "DivergenceReport",
    "MUTATOR_NAMES",
    "RaceSanitizer",
    "SanitizerReport",
    "bisect_divergence",
    "canonical_result",
    "unwrap",
]
