"""Instrumented proxy wrappers — the sanitizer's tripwires.

An :class:`AccessProxy` stands in for one shared pipeline object inside
a worker view.  It forwards every operation to the real target
unchanged — same values, same exceptions, same iteration order, so the
determinism contract (parallel ≡ sequential, byte for byte) holds under
instrumentation — while recording ``(worker, label, attr, kind)`` into
the sanitizer's :class:`~repro.san.events.AccessLog`.

Instrumentation is one level deep by design: attribute *access* on the
proxy is recorded (reads, or writes for known in-place mutator methods)
and returns the raw underlying object.  That catches every write the
``worker_view()`` protocol can express — stores and mutator calls
through the view's shared attributes — without wrapping the world in
proxies that would leak into result records.  Deeper objects that need
watching (``fusion.graph`` handed to the per-view scorer) are wrapped
explicitly at the seam.

Dunder operations bypass ``__getattr__`` (the interpreter looks them up
on the type), so the container protocol is forwarded explicitly.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.san.events import READ, WRITE, AccessEvent, AccessLog

#: method names that mutate their receiver in place — attribute access
#: to one of these on a proxy records a WRITE even before the call.
MUTATOR_NAMES = frozenset({
    "add", "append", "appendleft", "clear", "discard", "extend",
    "extendleft", "insert", "merge", "pop", "popitem", "remove",
    "setdefault", "set_weight", "update",
})

_SLOTS = ("_san_target", "_san_log", "_san_worker", "_san_label")


class AccessProxy:
    """Transparent recording wrapper around one shared object."""

    __slots__ = _SLOTS

    def __init__(
        self, target: Any, log: AccessLog, worker: int, label: str
    ) -> None:
        object.__setattr__(self, "_san_target", target)
        object.__setattr__(self, "_san_log", log)
        object.__setattr__(self, "_san_worker", worker)
        object.__setattr__(self, "_san_label", label)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def _san_record(self, attr: str, kind: str) -> None:
        log: AccessLog = object.__getattribute__(self, "_san_log")
        log.record(AccessEvent(
            worker=object.__getattribute__(self, "_san_worker"),
            label=object.__getattribute__(self, "_san_label"),
            attr=attr,
            kind=kind,
        ))

    # ------------------------------------------------------------------
    # attribute protocol
    # ------------------------------------------------------------------
    def __getattr__(self, name: str) -> Any:
        target = object.__getattribute__(self, "_san_target")
        kind = WRITE if name in MUTATOR_NAMES else READ
        self._san_record(name, kind)
        return getattr(target, name)

    def __setattr__(self, name: str, value: Any) -> None:
        self._san_record(name, WRITE)
        setattr(object.__getattribute__(self, "_san_target"), name, value)

    def __delattr__(self, name: str) -> None:
        self._san_record(name, WRITE)
        delattr(object.__getattribute__(self, "_san_target"), name)

    # ------------------------------------------------------------------
    # container protocol (dunders bypass __getattr__)
    # ------------------------------------------------------------------
    def __getitem__(self, key: Any) -> Any:
        self._san_record(repr(key), READ)
        return object.__getattribute__(self, "_san_target")[key]

    def __setitem__(self, key: Any, value: Any) -> None:
        self._san_record(repr(key), WRITE)
        object.__getattribute__(self, "_san_target")[key] = value

    def __delitem__(self, key: Any) -> None:
        self._san_record(repr(key), WRITE)
        del object.__getattribute__(self, "_san_target")[key]

    def __contains__(self, key: Any) -> bool:
        self._san_record("__contains__", READ)
        return key in object.__getattribute__(self, "_san_target")

    def __len__(self) -> int:
        self._san_record("__len__", READ)
        return len(object.__getattribute__(self, "_san_target"))

    def __iter__(self) -> Iterator[Any]:
        self._san_record("__iter__", READ)
        return iter(object.__getattribute__(self, "_san_target"))

    def __bool__(self) -> bool:
        return bool(object.__getattribute__(self, "_san_target"))

    def __eq__(self, other: object) -> bool:
        target = object.__getattribute__(self, "_san_target")
        if isinstance(other, AccessProxy):
            other = object.__getattribute__(other, "_san_target")
        return bool(target == other)

    def __hash__(self) -> int:
        # Transparent forwarding: the proxy must hash like its target so
        # in-process dict/set membership is unchanged; nothing derived
        # from this hash is ever persisted or ordered by.
        return hash(object.__getattribute__(self, "_san_target"))  # repro-lint: ignore[DET006]

    def __repr__(self) -> str:
        return repr(object.__getattribute__(self, "_san_target"))


def unwrap(obj: Any) -> Any:
    """The raw object behind a proxy (identity for everything else)."""
    if isinstance(obj, AccessProxy):
        return object.__getattribute__(obj, "_san_target")
    return obj
