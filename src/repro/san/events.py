"""Access-event recording for the runtime race sanitizer.

Every instrumented operation on a shared pipeline object becomes one
:class:`AccessEvent` — ``(worker, object label, attribute, read/write)``
— recorded into a lock-guarded, deduplicating :class:`AccessLog`.
Deduplication keeps the log O(distinct accesses) rather than O(calls):
the conflict detector only needs *which* workers touched *what*, not how
often, and the counts ride along for the event-log artifact.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass

#: access kinds, in the order reports list them.
READ = "read"
WRITE = "write"


@dataclass(frozen=True, slots=True)
class AccessEvent:
    """One deduplicated access: who touched what, and how."""

    worker: int
    #: logical name of the shared object ("fusion.graph", "history").
    label: str
    #: attribute name, item key repr, or a dunder operation ("__iter__").
    attr: str
    #: :data:`READ` or :data:`WRITE`.
    kind: str

    def to_dict(self) -> dict[str, object]:
        return {
            "worker": self.worker,
            "label": self.label,
            "attr": self.attr,
            "kind": self.kind,
        }


class AccessLog:
    """Thread-safe deduplicating event log.

    ``record`` is on the instrumented hot path, so it does the minimum
    under the lock: one dict upsert.  Reads snapshot under the same lock.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: dict[AccessEvent, int] = {}

    def record(self, event: AccessEvent) -> None:
        with self._lock:
            self._counts[event] = self._counts.get(event, 0) + 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._counts)

    def events(self) -> list[AccessEvent]:
        """Deduplicated events, deterministically ordered."""
        with self._lock:
            items = list(self._counts)
        return sorted(
            items, key=lambda e: (e.label, e.attr, e.worker, e.kind)
        )

    def counts(self) -> dict[AccessEvent, int]:
        with self._lock:
            return dict(self._counts)

    def to_jsonl(self) -> str:
        """One JSON object per deduplicated event (the CI artifact)."""
        counts = self.counts()
        lines = [
            json.dumps({**event.to_dict(), "count": counts[event]},
                       sort_keys=True)
            for event in self.events()
        ]
        return "\n".join(lines)
