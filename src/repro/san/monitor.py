"""The race sanitizer: conflict detection over recorded accesses.

TSan-lite: instead of vector clocks, the sanitizer flags any pair of
*distinct workers* that touched the same ``(object, attribute)`` with at
least one write.  Worker tasks are meant to be independent — the
``worker_view()`` split/absorb protocol gives each task its own copy of
everything mutable — so a cross-worker conflicting access is an
order-dependence hazard even when the thread pool happens to serialize
it: it breaks the parallel ≡ sequential byte-identity contract, which is
exactly what the reproduction guarantees.

A :class:`RaceSanitizer` hangs off the pipeline when
``MultiRAGConfig(sanitize=True)`` (or ``REPRO_SANITIZE=1``) is set;
``worker_view()`` wraps each view's shared-by-reference attributes in
:class:`~repro.san.proxy.AccessProxy` tripwires and reports attributes
the view protocol failed to mirror as coverage gaps — the runtime twin
of the static CONC002 rule.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from typing import Any

from repro.san.events import WRITE, AccessEvent, AccessLog
from repro.san.proxy import AccessProxy

#: conflict kinds.
WRITE_WRITE = "write-write"
READ_WRITE = "read-write"


@dataclass(frozen=True, slots=True)
class Conflict:
    """Cross-worker conflicting access to one shared attribute."""

    label: str
    attr: str
    #: :data:`WRITE_WRITE` or :data:`READ_WRITE`.
    kind: str
    #: sorted worker ids that wrote.
    writers: tuple[int, ...]
    #: sorted worker ids that only read (empty for write-write).
    readers: tuple[int, ...]

    def format(self) -> str:
        who = f"writers={list(self.writers)}"
        if self.readers:
            who += f" readers={list(self.readers)}"
        return f"{self.kind}: {self.label}.{self.attr} ({who})"

    def to_dict(self) -> dict[str, object]:
        return {
            "label": self.label,
            "attr": self.attr,
            "kind": self.kind,
            "writers": list(self.writers),
            "readers": list(self.readers),
        }


@dataclass(slots=True)
class SanitizerReport:
    """Outcome of one sanitized run."""

    conflicts: list[Conflict] = field(default_factory=list)
    #: class name → view attributes worker_view() failed to mirror.
    coverage_gaps: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: deduplicated access events observed.
    events_seen: int = 0
    workers_seen: int = 0

    @property
    def ok(self) -> bool:
        return not self.conflicts and not self.coverage_gaps

    def format_text(self) -> str:
        lines = [conflict.format() for conflict in self.conflicts]
        for cls_name in sorted(self.coverage_gaps):
            attrs = ", ".join(self.coverage_gaps[cls_name])
            lines.append(
                f"coverage gap: {cls_name}.worker_view() does not mirror "
                f"attribute(s) {attrs} — workers are missing them"
            )
        lines.append(
            f"{len(self.conflicts)} conflict(s), "
            f"{len(self.coverage_gaps)} coverage gap(s) over "
            f"{self.events_seen} access(es) by {self.workers_seen} worker(s)"
        )
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(
            {
                "ok": self.ok,
                "conflicts": [c.to_dict() for c in self.conflicts],
                "coverage_gaps": {
                    cls_name: list(attrs)
                    for cls_name, attrs in sorted(self.coverage_gaps.items())
                },
                "events_seen": self.events_seen,
                "workers_seen": self.workers_seen,
            },
            indent=2,
        )


class RaceSanitizer:
    """Per-pipeline sanitizer state: worker ids, event log, verdicts."""

    def __init__(self) -> None:
        self.log = AccessLog()
        self._lock = threading.Lock()
        self._next_worker = 0
        self._coverage_gaps: dict[str, tuple[str, ...]] = {}

    # ------------------------------------------------------------------
    # instrumentation hooks (called from worker_view on the main thread)
    # ------------------------------------------------------------------
    def next_worker(self) -> int:
        """A fresh worker id for one view (locked for safety; the
        pipeline only calls this from the submitting thread)."""
        with self._lock:
            worker = self._next_worker
            self._next_worker += 1
            return worker

    def wrap(self, target: Any, worker: int, label: str) -> Any:
        """An :class:`AccessProxy` tripwire over ``target``.

        ``None`` passes through (optional pipeline attributes), as does
        an existing proxy's raw target (re-wrapping under a new worker).
        """
        if target is None:
            return None
        if isinstance(target, AccessProxy):
            target = object.__getattribute__(target, "_san_target")
        return AccessProxy(target, self.log, worker, label)

    def note_coverage_gap(self, cls_name: str, attrs: set[str]) -> None:
        """Record view attributes ``worker_view()`` failed to mirror."""
        if not attrs:
            return
        with self._lock:
            known = set(self._coverage_gaps.get(cls_name, ()))
            self._coverage_gaps[cls_name] = tuple(sorted(known | attrs))

    # ------------------------------------------------------------------
    # verdicts
    # ------------------------------------------------------------------
    def conflicts(self) -> list[Conflict]:
        """Cross-worker conflicting accesses seen so far."""
        by_site: dict[tuple[str, str], list[AccessEvent]] = {}
        for event in self.log.events():
            by_site.setdefault((event.label, event.attr), []).append(event)
        out: list[Conflict] = []
        for (label, attr) in sorted(by_site):
            events = by_site[(label, attr)]
            writers = sorted({e.worker for e in events if e.kind == WRITE})
            readers = sorted(
                {e.worker for e in events if e.kind != WRITE}
                - set(writers)
            )
            if len(writers) >= 2:
                out.append(Conflict(
                    label=label, attr=attr, kind=WRITE_WRITE,
                    writers=tuple(writers), readers=tuple(readers),
                ))
            elif writers and readers:
                out.append(Conflict(
                    label=label, attr=attr, kind=READ_WRITE,
                    writers=tuple(writers), readers=tuple(readers),
                ))
        return out

    def report(self) -> SanitizerReport:
        """The sanitized run's verdict (conflicts + coverage gaps)."""
        events = self.log.events()
        with self._lock:
            gaps = dict(self._coverage_gaps)
            workers = self._next_worker
        return SanitizerReport(
            conflicts=self.conflicts(),
            coverage_gaps=gaps,
            events_seen=len(events),
            workers_seen=workers,
        )
