"""Divergence bisector: localize where parallel stops matching sequential.

The reproduction's core concurrency contract is byte-identity: a query
batch dispatched over the exec worker pool must produce exactly the
results (and telemetry) of a sequential loop.  When that breaks, the
failure usually surfaces far from its cause — a wrong F1 three stages
after a racy cache fill.  The bisector turns "the batch diverged" into
"query #3 diverged, first at the node-scoring stage":

1. replay the batch sequentially (``jobs=1``) and in parallel on two
   freshly built pipelines and canonicalize every result (timing
   dropped — wall clock is exempt from the contract);
2. report the first query index and result field where they differ;
3. localize the stage by aligning the two runs' ``repro.obs`` span
   streams (names + attributes, wall-clock fields excluded) and naming
   the first span where they disagree, falling back to the per-result
   stage trace when tracing is off.

Pipelines are duck-typed (anything with ``run_batch``) so this module
stays below :mod:`repro.core` in the layering DAG; the CLI's
``python -m repro sanitize`` drives it with real pipelines.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.obs import Observability

#: result fields compared, in pipeline-stage order — the first differing
#: field is the earliest externally visible symptom.
_RESULT_FIELDS = (
    "query", "stage_values", "candidates_considered", "answers",
    "generated_text", "trace",
)


def canonical_result(result: Any) -> dict[str, object]:
    """A result's contract-relevant content (timing dropped).

    Duck-typed over :class:`repro.core.answer.RetrievalResult`; unknown
    fields are simply absent, so toy pipelines compare too.
    """
    out: dict[str, object] = {}
    for name in _RESULT_FIELDS:
        value = getattr(result, name, None)
        if name == "answers" and value is not None:
            value = [
                (
                    getattr(a, "value", None),
                    getattr(a, "confidence", None),
                    tuple(getattr(a, "sources", ())),
                )
                for a in value
            ]
        out[name] = value
    return out


def canonical_spans(obs: Observability) -> list[dict[str, object]]:
    """The tracer's span stream minus wall-clock fields."""
    return [span.to_dict(drop_timing=True) for span in obs.tracer.spans]


@dataclass(slots=True)
class DivergenceReport:
    """Outcome of one sequential-vs-parallel replay."""

    diverged: bool
    queries: int
    jobs: int
    #: first divergent query index (None when identical).
    query_index: int | None = None
    #: first divergent result field ("" when identical).
    field: str = ""
    #: first divergent pipeline stage, from the span streams ("" when
    #: identical or untraced).
    stage: str = ""
    detail: str = ""

    @property
    def ok(self) -> bool:
        return not self.diverged

    def format_text(self) -> str:
        if not self.diverged:
            return (
                f"parallel ≡ sequential: {self.queries} queries "
                f"byte-identical at jobs={self.jobs}"
            )
        where = f"query #{self.query_index}, field {self.field!r}"
        if self.stage:
            where += f", first divergent stage {self.stage!r}"
        return f"DIVERGENCE at {where}\n{self.detail}"

    def to_json(self) -> str:
        return json.dumps(
            {
                "diverged": self.diverged,
                "queries": self.queries,
                "jobs": self.jobs,
                "query_index": self.query_index,
                "field": self.field,
                "stage": self.stage,
                "detail": self.detail,
            },
            indent=2,
        )


def _first_divergence(
    seq: list[dict[str, object]],
    par: list[dict[str, object]],
) -> tuple[int, str] | None:
    """(query index, field) of the first mismatch, else None."""
    for index, (a, b) in enumerate(zip(seq, par)):
        if a == b:
            continue
        for name in _RESULT_FIELDS:
            if a.get(name) != b.get(name):
                return index, name
        return index, "<unknown>"
    if len(seq) != len(par):
        return min(len(seq), len(par)), "<batch length>"
    return None


def _first_span_mismatch(
    seq: list[dict[str, object]],
    par: list[dict[str, object]],
) -> str:
    """Name of the first span where the two streams disagree."""
    for a, b in zip(seq, par):
        if a != b:
            return str(a.get("name", "<unnamed>"))
    if len(seq) != len(par):
        shorter = seq if len(seq) < len(par) else par
        longer = par if len(seq) < len(par) else seq
        return str(longer[len(shorter)].get("name", "<unnamed>"))
    return ""


def bisect_divergence(
    factory: Callable[[Observability], Any],
    queries: Sequence[Any],
    *,
    jobs: int = 4,
    batch_size: int | None = None,
) -> DivergenceReport:
    """Replay ``queries`` sequential-vs-parallel and localize divergence.

    ``factory`` builds one freshly ingested pipeline bound to the given
    observability bundle; it is called twice so the two runs cannot
    share mutable state.  Spans are compared only when the factory wires
    the bundle in (pass ``Observability.enable()``-backed pipelines for
    stage localization; a NOOP bundle still yields the query/field
    verdict).
    """
    obs_seq = Observability.enable()
    obs_par = Observability.enable()
    rag_seq = factory(obs_seq)
    rag_par = factory(obs_par)
    results_seq = [
        canonical_result(r)
        for r in rag_seq.run_batch(queries, jobs=1, batch_size=batch_size)
    ]
    results_par = [
        canonical_result(r)
        for r in rag_par.run_batch(queries, jobs=jobs, batch_size=batch_size)
    ]
    hit = _first_divergence(results_seq, results_par)
    if hit is None:
        return DivergenceReport(
            diverged=False, queries=len(queries), jobs=jobs
        )
    index, field_name = hit
    stage = _first_span_mismatch(
        canonical_spans(obs_seq), canonical_spans(obs_par)
    )
    if not stage:
        # untraced pipelines: fall back to the per-result stage trace.
        seq_trace = results_seq[index].get("trace") or [] if (
            index < len(results_seq)
        ) else []
        par_trace = results_par[index].get("trace") or [] if (
            index < len(results_par)
        ) else []
        for a, b in zip(list(seq_trace), list(par_trace)):  # type: ignore[arg-type]
            if a != b:
                stage = str(a)
                break
    detail = (
        f"sequential: {json.dumps(results_seq[index], default=str)[:400]}\n"
        f"parallel:   {json.dumps(results_par[index], default=str)[:400]}"
        if index < len(results_seq) and index < len(results_par)
        else "batch lengths differ"
    )
    return DivergenceReport(
        diverged=True,
        queries=len(queries),
        jobs=jobs,
        query_index=index,
        field=field_name,
        stage=stage,
        detail=detail,
    )
