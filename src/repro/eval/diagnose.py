"""Diagnosis driver: run queries hop-by-hop and attribute failures.

:mod:`repro.obs.diagnose` is the pure attribution calculus; this module
feeds it.  For every query it re-runs the hop decomposition through the
pipeline one hop at a time (the bridge-entity pattern: hop *k*'s subject
is hop *k-1*'s top answer), reduces each hop's evidence trail — stage
values, MCC audit events, ranked answers — to a
:class:`~repro.obs.diagnose.HopRecord`, and folds the per-query
diagnoses into a :class:`~repro.obs.diagnose.DiagnosisReport`.

Fan-out rides the exec engine with the same contract as
``MultiRAG.run_batch``: read-only pipelines diagnose over
``worker_view`` instances and ``jobs=4`` is byte-identical to the
sequential run; history-updating pipelines serialize.

Robustness probes re-run the whole corpus under controlled damage:

* **masked evidence** — every digit run in the source payloads is
  masked before re-ingesting, so numeric/date facts disappear; hops
  that collapse (C→W) were numerically grounded;
* **reworded questions** — explicit-entity hops are re-asked as
  free-text questions instead of structured claim keys, measuring how
  much accuracy the logic-form path is worth.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace
from typing import Any, Sequence

from repro.adapters.base import RawSource
from repro.core.config import MultiRAGConfig
from repro.core.pipeline import MultiRAG
from repro.datasets import make_hotpotqa_like, make_movies
from repro.datasets.multihop import Hop, MultiHopDataset, MultiHopQuery
from repro.datasets.schema import QuerySpec
from repro.errors import DatasetError
from repro.exec import ExecutionPlan, Query, execute
from repro.obs import (
    ACTION_DROPPED,
    AuditLog,
    DiagnosisReport,
    HopRecord,
    Observability,
    QueryDiagnosis,
    attribute_query,
)
from repro.util import normalize_value


@dataclass(frozen=True, slots=True)
class DiagnosisTask:
    """One query prepared for hop-by-hop diagnosis."""

    qid: str
    qtype: str
    text: str
    hops: tuple[Hop, ...]
    answers: frozenset[str]
    gold_hops: tuple[frozenset[str], ...]
    hops_b: tuple[Hop, ...] = ()
    gold_hops_b: tuple[frozenset[str], ...] = ()


def as_task(query: MultiHopQuery | QuerySpec) -> DiagnosisTask:
    """Adapt a dataset query (multi-hop or flat) into a DiagnosisTask.

    Flat :class:`QuerySpec` rows (the fusion corpora) become single-hop
    tasks whose only gold hop is the answer set — attribution still
    separates never-retrieved from filtered-out from outranked.
    """
    if isinstance(query, MultiHopQuery):
        gold_hops = query.gold_hops
        if not gold_hops:
            # Datasets predating gold hop labels: the final hop's gold
            # is the answer set; intermediate hops carry no labels.
            gold_hops = tuple(
                frozenset() for _ in query.hops[:-1]
            ) + (query.answers,)
        return DiagnosisTask(
            qid=query.qid,
            qtype=query.qtype,
            text=query.text,
            hops=query.hops,
            answers=query.answers,
            gold_hops=gold_hops,
            hops_b=query.hops_b,
            gold_hops_b=query.gold_hops_b,
        )
    return DiagnosisTask(
        qid=query.qid,
        qtype="single",
        text=query.text,
        hops=((query.entity, query.attribute),),
        answers=query.answers,
        gold_hops=(query.answers,),
    )


def _hop_record(
    index: int,
    entity: str,
    attribute: str,
    result: Any,
    gold: frozenset[str],
) -> HopRecord:
    """Reduce one hop's RetrievalResult to normalized value sets."""
    stage = result.stage_values
    retrieved = frozenset(
        normalize_value(v)
        for v in stage.get("before_subgraph_filtering", [])
    )
    kept = frozenset(
        normalize_value(v)
        for v in stage.get("after_node_filtering", [])
    )
    drop_codes = tuple(sorted({
        (normalize_value(e.value), e.code)
        for e in result.audit
        if e.stage == "mcc.node" and e.action == ACTION_DROPPED and e.code
    }))
    return HopRecord(
        index=index,
        entity=entity,
        attribute=attribute,
        gold=frozenset(normalize_value(v) for v in gold),
        retrieved=retrieved,
        kept=kept,
        top=result.answers[0].value if result.answers else "",
        drop_codes=drop_codes,
    )


def _empty_record(
    index: int, attribute: str, gold: frozenset[str]
) -> HopRecord:
    """Placeholder for a hop never executed (chain broke earlier)."""
    return HopRecord(
        index=index,
        entity="",
        attribute=attribute,
        gold=frozenset(normalize_value(v) for v in gold),
        retrieved=frozenset(),
        kept=frozenset(),
        top="",
    )


def _run_chain(
    view: MultiRAG,
    hops: Sequence[Hop],
    gold_hops: Sequence[frozenset[str]],
    start_index: int,
    reworded: bool = False,
) -> list[HopRecord]:
    """Execute one hop chain, recording each hop's evidence trail."""
    records: list[HopRecord] = []
    previous_top = ""
    broken = False
    for offset, (entity, attribute) in enumerate(hops):  # repro-lint: loop-bound[H] — one retrieval round per question hop
        index = start_index + offset
        gold = gold_hops[offset] if offset < len(gold_hops) else frozenset()
        subject = entity if entity is not None else previous_top
        if broken or not subject:
            broken = True
            records.append(_empty_record(index, attribute, gold))
            continue
        if reworded and entity is not None:
            # Deliberately outside the parser's grammar: the logic form
            # falls back to ``open`` intent and the hop is answered from
            # free retrieval instead of a structured claim-key lookup.
            result = view.run(
                Query.text(f"Please tell me the {attribute} of {subject}.")
            )
        else:
            result = view.run(Query.key(subject, attribute))
        record = _hop_record(index, subject, attribute, result, gold)
        records.append(record)
        previous_top = record.top
        if not previous_top:
            broken = True
    return records


def diagnose_one(
    view: MultiRAG, task: DiagnosisTask, reworded: bool = False
) -> QueryDiagnosis:
    """Diagnose one query on ``view`` (a pipeline or worker view).

    Raises:
        StateError: if the pipeline has not ingested a corpus.
        ContractViolation: if ``debug_contracts`` finds an invalid MCC
            result or answer ranking.
    """
    records_a = _run_chain(view, task.hops, task.gold_hops, 0, reworded)
    records_b = _run_chain(
        view, task.hops_b, task.gold_hops_b, len(task.hops), reworded
    ) if task.hops_b else []
    if task.qtype == "comparison":
        # Mirror the baselines' comparison semantics: equality of the
        # two chains' final answers, "no" when either chain is empty.
        top_a = records_a[-1].top if records_a else ""
        top_b = records_b[-1].top if records_b else ""
        if not top_a or not top_b:
            predicted = "no"
        else:
            predicted = (
                "yes"
                if normalize_value(top_a) == normalize_value(top_b)
                else "no"
            )
    else:
        predicted = records_a[-1].top if records_a else ""
    return attribute_query(
        qid=task.qid,
        qtype=task.qtype,
        hops=records_a,
        gold_answers=task.answers,
        predicted=predicted,
        hops_b=records_b,
    )


def diagnose_batch(
    rag: MultiRAG,
    tasks: Sequence[DiagnosisTask],
    *,
    jobs: int | None = None,
    plan: ExecutionPlan | None = None,
    reworded: bool = False,
) -> list[QueryDiagnosis]:
    """Diagnose a task batch through the exec engine, in submit order.

    Same dispatch contract as ``MultiRAG.run_batch``: history-updating
    pipelines serialize (queries form a dependency chain); read-only
    pipelines fan out over worker views for every worker count, so
    ``jobs=4`` produces byte-identical diagnoses to ``jobs=1``.

    Raises:
        StateError: if the pipeline has not ingested a corpus.
        ConfigError: if the resolved execution plan is invalid.
        ContractViolation: if ``debug_contracts`` finds an invalid MCC
            result or answer ranking.
    """
    items = list(tasks)
    resolved = plan if plan is not None else ExecutionPlan.resolve(
        jobs=jobs
    )
    if rag.config.update_history:
        return execute(
            len(items),
            resolved,
            run=lambda _ctx, i: diagnose_one(rag, items[i], reworded),
            serialize=True,
        )
    return execute(
        len(items),
        resolved,
        context=lambda i: rag.worker_view(),
        run=lambda view, i: diagnose_one(view, items[i], reworded),
        merge=lambda view, result, i: rag.absorb_view(view),
    )


#: replaces digit runs when masking evidence values.
_MASK_PATTERN = re.compile(r"\d+")


def _mask_text(text: str) -> str:
    return _MASK_PATTERN.sub("unknown", text)


def _mask_payload(payload: Any) -> Any:
    """Mask digit runs in every string leaf (dict keys left intact)."""
    if isinstance(payload, str):
        return _mask_text(payload)
    if isinstance(payload, dict):
        return {k: _mask_payload(v) for k, v in payload.items()}
    if isinstance(payload, list):
        return [_mask_payload(v) for v in payload]
    return payload


def mask_source_values(sources: Sequence[RawSource]) -> list[RawSource]:
    """Masked copies of ``sources``: numbers/dates become ``unknown``."""
    return [
        replace(raw, payload=_mask_payload(raw.payload)) for raw in sources
    ]


def _fresh_pipeline(rag: MultiRAG) -> MultiRAG:
    """A new pipeline with the same config/seed and a fresh audit log."""
    return MultiRAG(
        rag.config,
        obs=Observability(audit=AuditLog()) if rag.obs.audit.enabled
        else None,
    )


def _probe_payload(
    base: Sequence[QueryDiagnosis], probed: Sequence[QueryDiagnosis]
) -> dict[str, Any]:
    """Compare a probe run against the baseline diagnoses."""
    collapsed = 0
    flipped = 0
    for before, after in zip(base, probed):
        if before.verdict == "correct" and after.verdict != "correct":
            collapsed += 1
        if before.predicted != after.predicted:
            flipped += 1
    correct = sum(1 for d in probed if d.verdict == "correct")
    return {
        "accuracy": round(correct / len(probed), 6) if probed else 0.0,
        "collapsed": collapsed,
        "flipped": flipped,
        "queries": len(probed),
    }


def run_probes(
    rag: MultiRAG,
    sources: Sequence[RawSource],
    tasks: Sequence[DiagnosisTask],
    base: Sequence[QueryDiagnosis],
    *,
    jobs: int | None = None,
    plan: ExecutionPlan | None = None,
) -> dict[str, Any]:
    """Run both robustness probes; returns JSON-ready payloads by name.

    Raises:
        ReproError: if re-ingesting the masked corpus or re-running the
            batch fails (state, config or contract errors).
    """
    masked_rag = _fresh_pipeline(rag)
    masked_rag.ingest(mask_source_values(sources))
    masked = diagnose_batch(masked_rag, tasks, jobs=jobs, plan=plan)
    reworded = diagnose_batch(
        rag, tasks, jobs=jobs, plan=plan, reworded=True
    )
    return {
        "masked_evidence": _probe_payload(base, masked),
        "reworded_questions": _probe_payload(base, reworded),
    }


def diagnose_corpus(
    rag: MultiRAG,
    dataset: MultiHopDataset,
    *,
    corpus: str = "",
    jobs: int | None = None,
    plan: ExecutionPlan | None = None,
    probes: bool = False,
    sources: Sequence[RawSource] | None = None,
) -> DiagnosisReport:
    """Diagnose every query of an ingested corpus into one report.

    ``rag`` must already have ingested the corpus's sources;
    ``probes=True`` additionally runs the robustness probes (requires
    ``sources`` — or a :class:`MultiHopDataset` carrying them — so the
    masked probe can re-ingest).

    Raises:
        ReproError: if the pipeline is not ingested, the execution plan
            is invalid, or probes need sources that were not provided.
    """
    tasks = [as_task(q) for q in dataset.queries]
    base = diagnose_batch(rag, tasks, jobs=jobs, plan=plan)
    report = DiagnosisReport(
        corpus=corpus or dataset.name, queries=base
    )
    if probes:
        probe_sources = sources if sources is not None else dataset.sources
        if not probe_sources:
            raise DatasetError(
                "robustness probes need the corpus sources to re-ingest"
            )
        report.probes = run_probes(
            rag, probe_sources, tasks, base, jobs=jobs, plan=plan
        )
    return report


#: corpora with committed reference diagnoses under ``results/``.
REFERENCE_CORPORA = ("hotpot", "movies")


def reference_diagnosis(
    name: str, jobs: int | None = None
) -> DiagnosisReport:
    """The canonical seeded diagnosis behind ``results/diagnosis_*.json``.

    Fixed recipe — corpus, seed, scale, config — so the committed tables
    are regenerable byte-identically by CI's drift gate and by
    ``python -m repro evaluate --diagnose`` runs at any worker count.

    Raises:
        DatasetError: if ``name`` is not one of :data:`REFERENCE_CORPORA`.
        ReproError: if building or diagnosing the corpus fails.
    """
    config = MultiRAGConfig(update_history=False)
    obs = Observability(audit=AuditLog())
    rag = MultiRAG(config, obs=obs)
    if name == "hotpot":
        dataset = make_hotpotqa_like(n_queries=24, seed=0)
        rag.ingest(dataset.sources)
        return diagnose_corpus(
            rag, dataset, corpus="hotpot", jobs=jobs, probes=True
        )
    if name == "movies":
        movies = make_movies(seed=0, scale=0.3)
        sources = movies.raw_sources()
        rag.ingest(sources)
        tasks = [as_task(q) for q in list(movies.queries)[:24]]
        base = diagnose_batch(rag, tasks, jobs=jobs)
        report = DiagnosisReport(corpus="movies", queries=base)
        report.probes = run_probes(rag, sources, tasks, base, jobs=jobs)
        return report
    raise DatasetError(
        f"no reference diagnosis recipe for {name!r}; "
        f"known: {', '.join(REFERENCE_CORPORA)}"
    )
