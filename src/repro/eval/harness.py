"""Experiment harness: build substrates, run methods, collect table rows.

This is the machinery behind every benchmark in ``benchmarks/``: it fuses a
dataset once into a shared :class:`~repro.baselines.base.Substrate`, then
times each method's ``setup`` and per-query phases separately and scores
predictions against ground truth.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.adapters.fusion import DataFusionEngine
from repro.baselines.base import FusionMethod, QAMethod, Substrate
from repro.datasets.multihop import MultiHopDataset
from repro.datasets.schema import MultiSourceDataset
from repro.eval.metrics import f1_score, mean, precision, recall_at_k
from repro.exec import ExecutionPlan, Query, execute
from repro.llm.simulated import SimulatedLLM
from repro.obs.context import NOOP, Observability
from repro.retrieval.retriever import MultiSourceRetriever


@dataclass(slots=True)
class FusionRow:
    """One (dataset-config, method) cell of Table II / III."""

    dataset: str
    config: str
    method: str
    f1: float
    setup_time_s: float
    query_time_s: float
    prompt_time_s: float
    queries: int

    @property
    def total_time_s(self) -> float:
        return self.setup_time_s + self.query_time_s


@dataclass(slots=True)
class QARow:
    """One (dataset, method) row of Table IV."""

    dataset: str
    method: str
    precision: float
    recall_at_5: float
    queries: int


@dataclass(slots=True)
class StageRecall:
    """Recall@K at MKLGP's three filtering stages (paper §IV-A(b))."""

    before_subgraph: float = 0.0
    before_node: float = 0.0
    after_node: float = 0.0


def build_substrate(
    dataset: MultiSourceDataset | MultiHopDataset,
    seed: int = 0,
    extraction_noise: float = 0.05,
    obs: Observability | None = None,
) -> Substrate:
    """Fuse a dataset once into the substrate all methods share.

    Raises:
        ReproError: if materializing or fusing the dataset fails
            (dataset, format, extraction or entity errors).
    """
    obs = obs if obs is not None else NOOP
    llm = SimulatedLLM(seed=seed, extraction_noise=extraction_noise)
    engine = DataFusionEngine(llm=llm, obs=obs)
    if isinstance(dataset, MultiHopDataset):
        sources = dataset.sources
    else:
        sources = dataset.raw_sources()
    fusion = engine.fuse(sources)
    retriever = MultiSourceRetriever(obs=obs)
    retriever.add_chunks(fusion.chunks)
    retriever.build()
    return Substrate(
        dataset=dataset,
        graph=fusion.graph,
        chunks=fusion.chunks,
        retriever=retriever,
        llm_seed=seed,
    )


def run_fusion_method(
    method: FusionMethod,
    substrate: Substrate,
    dataset: MultiSourceDataset,
    *,
    jobs: int | None = None,
    plan: ExecutionPlan | None = None,
) -> FusionRow:
    """Set up and run one fusion method over every dataset query.

    ``jobs`` / ``plan`` (or the ``REPRO_EXEC_WORKERS`` environment
    variable) dispatch the per-query phase through the exec engine.
    Methods that declare themselves stateful (``split()`` returning
    ``None``) are serialized regardless of the requested worker count.

    Raises:
        ConfigError: if the resolved execution plan is invalid.
    """
    setup_start = time.perf_counter()
    method.setup(substrate)
    setup_time = time.perf_counter() - setup_start

    llm = getattr(method, "llm", None)
    pipeline = getattr(method, "pipeline", None)
    if pipeline is not None:
        llm = pipeline.llm
    # Checkpoint/delta instead of a meter reset: the meter keeps running
    # for callers that also read it, and concurrent phases can't race a
    # reset away from each other.
    usage_before = llm.meter.checkpoint() if llm else None

    queries = list(dataset.queries)
    resolved = plan if plan is not None else ExecutionPlan.resolve(jobs=jobs)
    query_start = time.perf_counter()
    if resolved.workers > 1 and method.split() is not None:
        predictions = execute(
            len(queries),
            resolved,
            context=lambda i: method.split(),
            run=lambda view, i: view.query(
                queries[i].entity, queries[i].attribute
            ),
            merge=lambda view, result, i: method.absorb(view),
        )
    else:
        predictions = [
            method.query(query.entity, query.attribute) for query in queries
        ]
    scores = [
        f1_score(predicted, query.answers)
        for predicted, query in zip(predictions, queries)
    ]
    query_time = time.perf_counter() - query_start
    prompt_time = (
        llm.meter.delta(usage_before)["simulated_latency_s"]
        if llm is not None and usage_before is not None
        else 0.0
    )

    return FusionRow(
        dataset=dataset.domain,
        config=dataset.config_name(),
        method=method.name,
        f1=100.0 * mean(scores),
        setup_time_s=setup_time,
        query_time_s=query_time,
        prompt_time_s=prompt_time,
        queries=len(dataset.queries),
    )


def run_fusion_methods(
    methods: list[FusionMethod],
    dataset: MultiSourceDataset,
    seed: int = 0,
    *,
    jobs: int | None = None,
    plan: ExecutionPlan | None = None,
) -> list[FusionRow]:
    """Run several methods against one shared substrate.

    Raises:
        ReproError: if building the substrate fails or the execution
            plan is invalid.
    """
    substrate = build_substrate(dataset, seed=seed)
    return [
        run_fusion_method(m, substrate, dataset, jobs=jobs, plan=plan)
        for m in methods
    ]


def run_qa_method(
    method: QAMethod,
    substrate: Substrate,
    dataset: MultiHopDataset,
    *,
    jobs: int | None = None,
    plan: ExecutionPlan | None = None,
) -> QARow:
    """Set up and run one QA method over every multi-hop question.

    Same exec dispatch contract as :func:`run_fusion_method`.

    Raises:
        ConfigError: if the resolved execution plan is invalid.
    """
    method.setup(substrate)
    queries = list(dataset.queries)
    resolved = plan if plan is not None else ExecutionPlan.resolve(jobs=jobs)
    if resolved.workers > 1 and method.split() is not None:
        predictions = execute(
            len(queries),
            resolved,
            context=lambda i: method.split(),
            run=lambda view, i: view.answer(queries[i]),
            merge=lambda view, result, i: method.absorb(view),
        )
    else:
        predictions = [method.answer(query) for query in queries]
    precisions = []
    recalls = []
    for prediction, query in zip(predictions, queries):
        precisions.append(precision(prediction.answers, query.answers))
        recalls.append(
            recall_at_k(list(prediction.candidates), query.answers, k=5)
        )
    return QARow(
        dataset=dataset.name,
        method=method.name,
        precision=100.0 * mean(precisions),
        recall_at_5=100.0 * mean(recalls),
        queries=len(dataset.queries),
    )


def run_qa_methods(
    methods: list[QAMethod],
    dataset: MultiHopDataset,
    seed: int = 0,
    *,
    jobs: int | None = None,
    plan: ExecutionPlan | None = None,
) -> list[QARow]:
    """Run several QA methods against one shared substrate.

    Raises:
        ReproError: if building the substrate fails or the execution
            plan is invalid.
    """
    substrate = build_substrate(dataset, seed=seed)
    return [
        run_qa_method(m, substrate, dataset, jobs=jobs, plan=plan)
        for m in methods
    ]


@dataclass(slots=True)
class MultiRAGStageReport:
    """MKLGP stage-recall measurement over a query stream."""

    rows: list[StageRecall] = field(default_factory=list)

    def averaged(self) -> StageRecall:
        return StageRecall(
            before_subgraph=100.0 * mean(r.before_subgraph for r in self.rows),
            before_node=100.0 * mean(r.before_node for r in self.rows),
            after_node=100.0 * mean(r.after_node for r in self.rows),
        )


def measure_stage_recall(pipeline, dataset: MultiSourceDataset, k: int = 5) -> MultiRAGStageReport:
    """Recall@K before subgraph filtering / before node filtering / after.

    ``pipeline`` must already have ingested the dataset's sources.
    """
    report = MultiRAGStageReport()
    for query in dataset.queries:
        result = pipeline.run(Query.key(query.entity, query.attribute))
        gold = query.answers
        report.rows.append(
            StageRecall(
                before_subgraph=recall_at_k(
                    result.stage_values.get("before_subgraph_filtering", []), gold, k=10**6
                ),
                before_node=recall_at_k(
                    result.stage_values.get("before_node_filtering", []), gold, k=10**6
                ),
                after_node=recall_at_k(
                    result.stage_values.get("after_node_filtering", []), gold, k=k
                ),
            )
        )
    return report
