"""Statistical significance for method comparisons.

The paper backs its Table IV discussion with means *and* standard
deviations; a credible reproduction should be able to say whether an
observed F1 gap survives resampling.  Two seeded, dependency-light tools:

* :func:`bootstrap_ci` — percentile bootstrap confidence interval for the
  mean of per-query scores;
* :func:`paired_permutation_test` — sign-flip permutation p-value for the
  mean difference of two methods scored on the *same* queries (the right
  test for paired per-query metrics).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.eval.metrics import mean


@dataclass(frozen=True, slots=True)
class BootstrapCI:
    """A bootstrap interval for a mean."""

    mean: float
    low: float
    high: float
    confidence: float

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high


def bootstrap_ci(
    scores: list[float],
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
) -> BootstrapCI:
    """Percentile bootstrap CI of ``mean(scores)``.

    Raises:
        ValueError: for empty input or a confidence outside (0, 1).
    """
    if not scores:
        raise ValueError("bootstrap_ci needs at least one score")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must lie in (0, 1)")
    rng = random.Random(seed)
    n = len(scores)
    means = sorted(
        mean(rng.choices(scores, k=n)) for _ in range(n_resamples)
    )
    alpha = (1.0 - confidence) / 2.0
    low_idx = int(alpha * n_resamples)
    high_idx = min(n_resamples - 1, int((1.0 - alpha) * n_resamples))
    return BootstrapCI(
        mean=mean(scores),
        low=means[low_idx],
        high=means[high_idx],
        confidence=confidence,
    )


@dataclass(frozen=True, slots=True)
class PermutationResult:
    """Outcome of a paired permutation test."""

    observed_difference: float
    p_value: float

    def significant(self, alpha: float = 0.05) -> bool:
        return self.p_value < alpha


def paired_permutation_test(
    scores_a: list[float],
    scores_b: list[float],
    n_permutations: int = 5000,
    seed: int = 0,
) -> PermutationResult:
    """Two-sided sign-flip permutation test on paired score differences.

    Under H0 (no difference between methods), each per-query difference is
    symmetric around zero, so random sign flips generate the null
    distribution of the mean difference.

    Raises:
        ValueError: when the score lists have different lengths or are
            empty.
    """
    if len(scores_a) != len(scores_b):
        raise ValueError("paired test needs equal-length score lists")
    if not scores_a:
        raise ValueError("paired test needs at least one pair")
    differences = [a - b for a, b in zip(scores_a, scores_b)]
    observed = mean(differences)
    if all(d == 0 for d in differences):
        return PermutationResult(observed_difference=0.0, p_value=1.0)
    rng = random.Random(seed)
    extreme = 0
    for _ in range(n_permutations):
        flipped = mean(d if rng.random() < 0.5 else -d for d in differences)
        if abs(flipped) >= abs(observed) - 1e-12:
            extreme += 1
    # Add-one smoothing keeps the p-value away from an impossible 0.
    p_value = (extreme + 1) / (n_permutations + 1)
    return PermutationResult(observed_difference=observed, p_value=p_value)
