"""Hallucination / error analysis (paper Q4 discussion and §IV-C(b)).

Classifies each wrong prediction into the paper's three multi-source
hallucination types:

* ``inconsistency`` — the method surfaced a value that some source claims
  but that contradicts the ground truth (inter-source conflict won);
* ``fabrication`` — the predicted value appears in *no* source's claims
  (pure model hallucination, the closed-book failure mode);
* ``incomplete`` — nothing wrong was asserted, but part of a multi-valued
  answer is missing (incomplete inference path).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.datasets.schema import MultiSourceDataset, QuerySpec
from repro.util import canonical_value


@dataclass(slots=True)
class ErrorBreakdown:
    """Counts of error categories over a query stream."""

    total_queries: int = 0
    correct: int = 0
    counts: Counter = field(default_factory=Counter)

    def rate(self, category: str) -> float:
        errors = self.total_queries - self.correct
        if errors == 0:
            return 0.0
        return self.counts[category] / errors

    def hallucination_rate(self) -> float:
        """Fraction of all queries with at least one hallucinated value."""
        if self.total_queries == 0:
            return 0.0
        return (self.counts["inconsistency"] + self.counts["fabrication"]) / self.total_queries


def classify_errors(
    dataset: MultiSourceDataset,
    predictions: dict[str, set[str]],
) -> ErrorBreakdown:
    """Classify every query's prediction; ``predictions`` maps qid → values."""
    claimed_values = {
        (canonical_value(c.entity), c.attribute, canonical_value(c.value))
        for c in dataset.claims
    }
    breakdown = ErrorBreakdown(total_queries=len(dataset.queries))
    for query in dataset.queries:
        predicted = {canonical_value(v) for v in predictions.get(query.qid, set())}
        gold = {canonical_value(a) for a in query.answers}
        if predicted == gold:
            breakdown.correct += 1
            continue
        category = _classify_one(query, predicted, gold, claimed_values)
        breakdown.counts[category] += 1
    return breakdown


def _classify_one(
    query: QuerySpec,
    predicted: set[str],
    gold: set[str],
    claimed_values: set[tuple[str, str, str]],
) -> str:
    wrong = predicted - gold
    if wrong:
        for value in wrong:
            if (canonical_value(query.entity), query.attribute, value) not in claimed_values:
                return "fabrication"
        return "inconsistency"
    return "incomplete"
