"""Evaluation: metrics, experiment harness, reporting, error analysis."""

from repro.eval.analysis import ErrorBreakdown, classify_errors
from repro.eval.diagnose import (
    REFERENCE_CORPORA,
    DiagnosisTask,
    as_task,
    diagnose_batch,
    diagnose_corpus,
    diagnose_one,
    mask_source_values,
    reference_diagnosis,
    run_probes,
)
from repro.eval.hallucheck import (
    AnswerCheck,
    ClaimVerdict,
    check_answer,
    decompose_answer,
    hallucination_rate,
)
from repro.eval.latency import LatencyTracker
from repro.eval.harness import (
    FusionRow,
    MultiRAGStageReport,
    QARow,
    StageRecall,
    build_substrate,
    measure_stage_recall,
    run_fusion_method,
    run_fusion_methods,
    run_qa_method,
    run_qa_methods,
)
from repro.eval.metrics import (
    exact_match,
    f1_score,
    mean,
    normalized,
    precision,
    recall,
    recall_at_k,
    std,
)
from repro.eval.report import generate_report
from repro.eval.reporting import format_series, format_table
from repro.eval.stats import (
    BootstrapCI,
    PermutationResult,
    bootstrap_ci,
    paired_permutation_test,
)

__all__ = [
    "AnswerCheck",
    "BootstrapCI",
    "PermutationResult",
    "bootstrap_ci",
    "paired_permutation_test",
    "ClaimVerdict",
    "DiagnosisTask",
    "ErrorBreakdown",
    "REFERENCE_CORPORA",
    "as_task",
    "check_answer",
    "decompose_answer",
    "diagnose_batch",
    "diagnose_corpus",
    "diagnose_one",
    "hallucination_rate",
    "mask_source_values",
    "reference_diagnosis",
    "run_probes",
    "FusionRow",
    "LatencyTracker",
    "MultiRAGStageReport",
    "QARow",
    "StageRecall",
    "build_substrate",
    "classify_errors",
    "exact_match",
    "f1_score",
    "format_series",
    "generate_report",
    "format_table",
    "mean",
    "measure_stage_recall",
    "normalized",
    "precision",
    "recall",
    "recall_at_k",
    "run_fusion_method",
    "run_fusion_methods",
    "run_qa_method",
    "run_qa_methods",
    "std",
]
