"""Plain-text table rendering for the benchmark harnesses.

Every benchmark prints the rows/series the paper reports; this module keeps
the formatting in one place so all tables look alike.
"""

from __future__ import annotations

from collections.abc import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an ASCII table with column auto-sizing."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append("-+-".join("-" * w for w in widths))
    parts.extend(line(row) for row in str_rows)
    return "\n".join(parts)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.1f}" if abs(value) >= 10 else f"{value:.3f}"
    return str(value)


def format_series(
    name: str,
    xs: Sequence[object],
    ys: Sequence[float],
    unit: str = "",
) -> str:
    """One figure series as ``name: x=y, x=y, ...`` (for Fig. 5–7 output)."""
    pairs = ", ".join(f"{x}={y:.1f}{unit}" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"
