"""Compile benchmark artifacts (``results/*.json``) into a Markdown report.

Every benchmark dumps its raw series to ``results/``; this module renders
them back into the tables of EXPERIMENTS.md so the record can be
regenerated from a fresh run with one command::

    python -m repro report results/ -o EXPERIMENTS.generated.md
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import DatasetError


def _load(directory: Path, name: str) -> object | None:
    path = directory / f"{name}.json"
    if not path.exists():
        return None
    return json.loads(path.read_text())


def _markdown_table(headers: list[str], rows: list[list[object]]) -> str:
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


def render_table2(payload: list[dict]) -> str:
    methods: list[str] = []
    by_config: dict[tuple[str, str], dict[str, dict]] = {}
    for row in payload:
        key = (row["dataset"], row["config"])
        by_config.setdefault(key, {})[row["method"]] = row
        if row["method"] not in methods:
            methods.append(row["method"])
    rows = [
        [dataset, config] + [_fmt(cells[m]["f1"]) for m in methods]
        for (dataset, config), cells in by_config.items()
    ]
    return "## Table II — F1 (%)\n\n" + _markdown_table(
        ["dataset", "config"] + methods, rows
    )


def render_table3(payload: dict[str, dict]) -> str:
    rows = []
    for key, cell in payload.items():
        dataset, label = key.split("|", 1)
        rows.append([dataset, label, _fmt(cell["f1"]),
                     f"{cell['qt']:.3f}", _fmt(cell["pt"])])
    return "## Table III — ablations\n\n" + _markdown_table(
        ["dataset", "ablation", "F1/%", "QT/s", "PT/s"], rows
    )


def render_table4(payload: dict[str, dict]) -> str:
    datasets: list[str] = []
    methods: list[str] = []
    cells: dict[tuple[str, str], dict] = {}
    for key, row in payload.items():
        dataset, method = key.split("|", 1)
        cells[(dataset, method)] = row
        if dataset not in datasets:
            datasets.append(dataset)
        if method not in methods:
            methods.append(method)
    headers = ["method"] + [
        f"{d.split('-')[0]} {metric}" for d in datasets for metric in ("P", "R@5")
    ]
    rows = []
    for method in methods:
        row: list[object] = [method]
        for dataset in datasets:
            cell = cells[(dataset, method)]
            row += [_fmt(cell["precision"]), _fmt(cell["recall_at_5"])]
        rows.append(row)
    return "## Table IV — multi-hop QA\n\n" + _markdown_table(headers, rows)


def render_fig(name: str, payload: dict) -> str:
    lines = [f"## {name}", ""]
    for series, ys in payload.items():
        if isinstance(ys, dict):
            for sub, values in ys.items():
                rendered = ", ".join(_fmt(v) for v in values)
                lines.append(f"* {series} {sub}: {rendered}")
        elif isinstance(ys, list):
            rendered = ", ".join(_fmt(v) for v in ys)
            lines.append(f"* {series}: {rendered}")
        else:
            lines.append(f"* {series}: {_fmt(ys)}")
    return "\n".join(lines)


def generate_report(results_dir: str | Path) -> str:
    """Render every known artifact under ``results_dir`` to Markdown.

    Raises:
        DatasetError: when the directory holds none of the known
            artifacts (nothing has been benchmarked yet).
    """
    directory = Path(results_dir)
    sections: list[str] = ["# Benchmark report (generated)"]

    table2 = _load(directory, "table2")
    if table2:
        sections.append(render_table2(table2))
    table3 = _load(directory, "table3")
    if table3:
        sections.append(render_table3(table3))
    table4 = _load(directory, "table4")
    if table4:
        sections.append(render_table4(table4))
    for fig, title in (("fig5", "Fig. 5 — robustness"),
                       ("fig6", "Fig. 6 — per-source corruption"),
                       ("fig7", "Fig. 7 — alpha sweep")):
        payload = _load(directory, fig)
        if payload:
            sections.append(render_fig(title, payload))

    if len(sections) == 1:
        raise DatasetError(
            f"no benchmark artifacts under {directory}; run "
            "`pytest benchmarks/ --benchmark-only` first"
        )
    return "\n\n".join(sections) + "\n"
