"""Claim-level hallucination checking of generated answers.

Inspired by the RefChecker line of work the paper cites (§V-C):
fine-grained hallucination detection works at the *triple* level, not the
sentence level.  :func:`check_answer` decomposes a generated answer into
the claim values it asserts and grades each against the evidence the
pipeline retrieved:

* ``supported``     — the value is claimed for the asked key by ≥ 1 source;
* ``contradicted``  — sources claim the key, but never with this value
  (the answer sided with nobody — an inter-source hallucination);
* ``fabricated``    — no source claims the key at all (pure generation).

The answer's *hallucination intensity* is the fraction of asserted values
that are not supported, mirroring RAGTruth's word-level intensities at
claim granularity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.kg.graph import KnowledgeGraph
from repro.util import canonical_value


@dataclass(frozen=True, slots=True)
class ClaimVerdict:
    """The verdict for one asserted value."""

    value: str
    verdict: str  # "supported" | "contradicted" | "fabricated"
    supporting_sources: tuple[str, ...] = ()


@dataclass(slots=True)
class AnswerCheck:
    """Aggregate verdicts for one generated answer."""

    entity: str
    attribute: str
    verdicts: list[ClaimVerdict] = field(default_factory=list)

    @property
    def supported(self) -> list[ClaimVerdict]:
        return [v for v in self.verdicts if v.verdict == "supported"]

    @property
    def hallucinated(self) -> list[ClaimVerdict]:
        return [v for v in self.verdicts if v.verdict != "supported"]

    def intensity(self) -> float:
        """Fraction of asserted values that are hallucinated (0 = clean)."""
        if not self.verdicts:
            return 0.0
        return len(self.hallucinated) / len(self.verdicts)

    def is_grounded(self) -> bool:
        return not self.hallucinated


def decompose_answer(answer_text: str) -> list[str]:
    """Split a generated answer into its asserted values.

    The trustworthy generator joins values with ``;`` — the same
    decomposition applies to baseline generations that reuse the format.
    Refusals ("No trustworthy answer ...") assert nothing.
    """
    text = answer_text.strip()
    if not text or text.lower().startswith("no trustworthy answer"):
        return []
    return [part.strip() for part in text.split(";") if part.strip()]


def check_answer(
    graph: KnowledgeGraph,
    entity: str,
    attribute: str,
    answer_text: str,
) -> AnswerCheck:
    """Grade every value asserted by ``answer_text`` against the graph."""
    check = AnswerCheck(entity=entity, attribute=attribute)
    claims = graph.by_key(entity, attribute)
    claimed: dict[str, list[str]] = {}
    for claim in claims:
        claimed.setdefault(canonical_value(claim.obj), []).append(
            claim.source_id()
        )
    for value in decompose_answer(answer_text):
        key = canonical_value(value)
        if key in claimed:
            check.verdicts.append(
                ClaimVerdict(
                    value=value,
                    verdict="supported",
                    supporting_sources=tuple(sorted(set(claimed[key]))),
                )
            )
        elif claims:
            check.verdicts.append(ClaimVerdict(value=value, verdict="contradicted"))
        else:
            check.verdicts.append(ClaimVerdict(value=value, verdict="fabricated"))
    return check


def hallucination_rate(checks: list[AnswerCheck]) -> float:
    """Fraction of answers asserting at least one unsupported value."""
    if not checks:
        return 0.0
    return sum(1 for c in checks if c.hallucinated) / len(checks)
