"""Latency percentile tracking for query streams.

Means hide tails; a retrieval system is judged by its p95/p99.  The
tracker is a plain reservoir of observations with percentile reads —
enough telemetry for the benchmark harness without a metrics dependency.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class LatencyTracker:
    """Collect per-operation latencies and answer percentile queries."""

    samples: list[float] = field(default_factory=list)

    def observe(self, seconds: float) -> None:
        """Record one latency observation.

        Raises:
            ValueError: for negative latencies.
        """
        if seconds < 0:
            raise ValueError(f"latency cannot be negative: {seconds}")
        self.samples.append(seconds)

    def __len__(self) -> int:
        return len(self.samples)

    def percentile(self, q: float) -> float:
        """Linear-interpolated percentile (``q`` in [0, 100]).

        Raises:
            ValueError: when no samples have been observed or ``q`` is out
                of range.
        """
        if not self.samples:
            raise ValueError("no latency samples observed")
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must lie in [0, 100], got {q}")
        ordered = sorted(self.samples)
        if len(ordered) == 1:
            return ordered[0]
        position = (q / 100.0) * (len(ordered) - 1)
        lower = int(position)
        upper = min(lower + 1, len(ordered) - 1)
        fraction = position - lower
        return ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    def mean(self) -> float:
        if not self.samples:
            raise ValueError("no latency samples observed")
        return sum(self.samples) / len(self.samples)

    def summary(self) -> dict[str, float]:
        """``{count, mean, p50, p95, p99, max}`` for reporting."""
        return {
            "count": float(len(self.samples)),
            "mean": self.mean(),
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": max(self.samples),
        }
