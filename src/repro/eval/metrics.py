"""Compatibility shim: the metric functions live in :mod:`repro.metrics`.

The implementations moved to a foundation-layer leaf so that
``repro.core`` can score predictions without importing upward into the
evaluation layer.  Import from here or from :mod:`repro.metrics` —
they are the same objects.
"""

from repro.metrics import (
    exact_match,
    f1_score,
    mean,
    normalized,
    precision,
    recall,
    recall_at_k,
    std,
)

__all__ = [
    "exact_match",
    "f1_score",
    "mean",
    "normalized",
    "precision",
    "recall",
    "recall_at_k",
    "std",
]
