"""FusionQuery (Zhu et al., VLDB 2024) — on-demand fusion queries.

Instead of fusing the whole claim table offline, FusionQuery fuses *only
the claims a query touches*, with source credibility estimated
incrementally across the query stream.  Per query it runs a small
EM-style loop between value veracity and per-query source weights, then
folds the outcome back into the running credibility — the incremental
estimation the MultiRAG paper borrows for its Eq. 11.
"""

from __future__ import annotations

from collections import defaultdict

from repro.baselines.base import FusionMethod, Substrate, register_fusion
from repro.util import canonical_value


@register_fusion
class FusionQuery(FusionMethod):
    """On-demand EM fusion with incremental source credibility."""

    name = "FusionQuery"

    def __init__(
        self,
        em_rounds: int = 3,
        accept_threshold: float = 0.45,
        smoothing: float = 5.0,
    ) -> None:
        self.em_rounds = em_rounds
        self.accept_threshold = accept_threshold
        self.smoothing = smoothing
        self._hits: dict[str, float] = defaultdict(float)
        self._participations: dict[str, float] = defaultdict(float)

    def setup(self, substrate: Substrate) -> None:
        super().setup(substrate)
        self._hits.clear()
        self._participations.clear()

    def _credibility(self, source: str) -> float:
        a = self.smoothing
        return (self._hits[source] + a * 0.5) / (self._participations[source] + a)

    def query(self, entity: str, attribute: str) -> set[str]:
        claims = self.substrate.graph.by_key(entity, attribute)
        if not claims:
            return set()
        # FusionQuery's heterogeneous-graph matching step merges surface
        # variants of the same value before fusing (its published strength);
        # subject-level variants across sources remain out of its reach.
        votes: dict[str, set[str]] = defaultdict(set)
        display: dict[str, str] = {}
        for claim in claims:
            key = canonical_value(claim.obj)
            votes[key].add(claim.source_id())
            display.setdefault(key, claim.obj)

        weight = {s: self._credibility(s) for c in claims for s in [c.source_id()]}
        veracity: dict[str, float] = {}
        for _ in range(self.em_rounds):
            total = sum(weight.values()) or 1.0
            veracity = {
                value: sum(weight[s] for s in sources) / total
                for value, sources in votes.items()
            }
            best = max(veracity.values())
            for source in weight:
                supported = max(
                    (v for val, v in veracity.items() if source in votes[val]),
                    default=0.0,
                )
                # Per-query reweighting: sources backing strong values gain.
                weight[source] = 0.5 * weight[source] + 0.5 * (
                    supported / best if best > 0 else 0.0
                )

        accepted = {
            value for value, v in veracity.items() if v >= self.accept_threshold
        }
        if not accepted and veracity:
            accepted = {max(veracity, key=lambda k: veracity[k])}

        # Incremental credibility update from this query's outcome.
        for value, sources in votes.items():
            hit = value in accepted
            for source in sources:
                self._participations[source] += 1.0
                if hit:
                    self._hits[source] += 1.0
        return {display[v] for v in accepted}
