"""Standard RAG baseline (Lewis et al., 2020).

Retrieve top-k chunks for the question, extract every statement matching
the asked key, and return all claimed values — no conflict handling, no
confidence.  Under multi-source inconsistency this is precisely the
configuration that hallucinates: every conflicting claim that makes it
into the context surfaces in the answer.
"""

from __future__ import annotations

from repro.baselines.base import (
    FusionMethod,
    Substrate,
    parse_chunk_statements,
    register_fusion,
)
from repro.util import normalize_value


@register_fusion
class StandardRAG(FusionMethod):
    """Retrieve-then-read with no filtering."""

    name = "StandardRAG"

    def __init__(self, top_k: int = 8) -> None:
        self.top_k = top_k

    def setup(self, substrate: Substrate) -> None:
        super().setup(substrate)
        self.llm = substrate.fresh_llm()

    def query(self, entity: str, attribute: str) -> set[str]:
        spoken = attribute.replace("_", " ")
        question = f"What is the {spoken} of {entity}?"
        hits = self.substrate.retriever.retrieve(question, k=self.top_k)
        statements = parse_chunk_statements([h.item for h in hits])
        values: dict[str, str] = {}
        for st in statements:
            if st.subject == entity and st.predicate == attribute:
                values.setdefault(normalize_value(st.obj), st.obj)
        if values:
            # One generation call turns the context into the answer.
            self.llm.generate_answer(
                question,
                [f"{entity} | {attribute} | {v}" for v in values.values()],
            )
        return set(values.values())
