"""Baseline and SOTA methods the paper compares against, plus ours.

Importing this package populates the method registries
(:data:`FUSION_METHODS`, :data:`QA_METHODS`).
"""

from repro.baselines.base import (
    FUSION_METHODS,
    QA_METHODS,
    ChunkStatement,
    FusionMethod,
    QAMethod,
    QAPrediction,
    Substrate,
    parse_chunk_statements,
    register_fusion,
    register_qa,
)
from repro.baselines.chatkbqa import ChatKBQA
from repro.baselines.cot import ChainOfThought
from repro.baselines.fusionquery import FusionQuery
from repro.baselines.ircot import IRCoT
from repro.baselines.ltm import LatentTruthModel
from repro.baselines.majority_vote import MajorityVote
from repro.baselines.mdqa import MDQA
from repro.baselines.multihop_methods import (
    QAChatKBQA,
    QACoT,
    QAIRCoT,
    QAMDQA,
    QAMetaRAG,
    QAMultiRAG,
    QARQRAG,
    QAStandardRAG,
)
from repro.baselines.ours import MCCMethod, MultiRAGMethod
from repro.baselines.standard_rag import StandardRAG
from repro.baselines.truthfinder import TruthFinder

__all__ = [
    "ChatKBQA",
    "ChainOfThought",
    "ChunkStatement",
    "FUSION_METHODS",
    "FusionMethod",
    "FusionQuery",
    "IRCoT",
    "LatentTruthModel",
    "MCCMethod",
    "MDQA",
    "MajorityVote",
    "MultiRAGMethod",
    "QAChatKBQA",
    "QACoT",
    "QAIRCoT",
    "QAMDQA",
    "QAMetaRAG",
    "QAMethod",
    "QAMultiRAG",
    "QAPrediction",
    "QARQRAG",
    "QAStandardRAG",
    "QA_METHODS",
    "StandardRAG",
    "Substrate",
    "TruthFinder",
    "parse_chunk_statements",
    "register_fusion",
    "register_qa",
]
