"""MDQA baseline (Wang et al., AAAI 2024) — KG prompting over documents.

Multi-document QA via knowledge-graph prompting: retrieve a document set,
build a *local* knowledge graph from their statements, and answer from
that subgraph.  The local graph improves grounding over raw text, but
values are adjudicated by simple in-graph support with no source
credibility — its blind spot under source-level corruption.
"""

from __future__ import annotations

from collections import Counter

from repro.baselines.base import (
    FusionMethod,
    Substrate,
    parse_chunk_statements,
    register_fusion,
)
from repro.kg.graph import KnowledgeGraph
from repro.kg.triple import Provenance, Triple
from repro.util import normalize_value


@register_fusion
class MDQA(FusionMethod):
    """Retrieve documents → local KG → subgraph answer."""

    name = "MDQA"

    def __init__(self, top_k: int = 10) -> None:
        self.top_k = top_k

    def setup(self, substrate: Substrate) -> None:
        super().setup(substrate)
        self.llm = substrate.fresh_llm()

    def _local_graph(self, question: str) -> KnowledgeGraph:
        hits = self.substrate.retriever.retrieve(question, k=self.top_k)
        graph = KnowledgeGraph(name="mdqa-local")
        for st in parse_chunk_statements([h.item for h in hits]):
            graph.add_triple(
                Triple(
                    st.subject,
                    st.predicate,
                    st.obj,
                    Provenance(source_id=st.source_id, fmt="chunk",
                               chunk_id=st.chunk.chunk_id),
                )
            )
        return graph

    def query(self, entity: str, attribute: str) -> set[str]:
        spoken = attribute.replace("_", " ")
        question = f"What is the {spoken} of {entity}?"
        local = self._local_graph(question)
        claims = local.by_key(entity, attribute)
        if not claims:
            return set()
        # KG-prompting call: the local subgraph is serialized into the
        # prompt for answer extraction.
        self.llm.generate_answer(
            question,
            [f"{c.subject} | {c.predicate} | {c.obj}" for c in claims],
        )
        counts: Counter[str] = Counter()
        display: dict[str, str] = {}
        for claim in claims:
            key = normalize_value(claim.obj)
            counts[key] += 1
            display.setdefault(key, claim.obj)
        best = max(counts.values())
        return {display[v] for v, n in counts.items() if n == best}
