"""Latent Truth Model (Zhao et al., VLDB 2012) — Bayesian data fusion.

Each distinct claimed fact has a latent truth label; each source has a
*sensitivity* (probability of asserting a true fact it covers) and a
*specificity* (probability of staying silent on a false fact).  An EM-style
loop alternates fact-posterior (E) and per-source quality (M) updates.
Unlike TruthFinder, LTM natively supports multi-valued truths: every fact's
posterior is judged independently, so two directors can both come out true.

Like all global fusers the model is fit over the entire claim table at
``setup()`` time.
"""

from __future__ import annotations

from collections import defaultdict

from repro.baselines.base import FusionMethod, Substrate, register_fusion
from repro.util import normalize_value

_Fact = tuple[str, str, str]


@register_fusion
class LatentTruthModel(FusionMethod):
    """EM over latent fact truth and per-source sensitivity/specificity."""

    name = "LTM"

    def __init__(
        self,
        max_iters: int = 10,
        prior_true: float = 0.5,
        smoothing: float = 2.0,
        accept_threshold: float = 0.5,
    ) -> None:
        self.max_iters = max_iters
        self.prior_true = prior_true
        self.smoothing = smoothing
        self.accept_threshold = accept_threshold
        self._posterior: dict[_Fact, float] = {}
        self._display: dict[_Fact, str] = {}

    def setup(self, substrate: Substrate) -> None:
        super().setup(substrate)
        claimed_by: dict[_Fact, set[str]] = defaultdict(set)
        key_sources: dict[tuple[str, str], set[str]] = defaultdict(set)
        facts_by_key: dict[tuple[str, str], set[_Fact]] = defaultdict(set)
        for triple in substrate.graph.triples():
            fact = (triple.subject, triple.predicate, normalize_value(triple.obj))
            self._display.setdefault(fact, triple.obj)
            claimed_by[fact].add(triple.source_id())
            key_sources[triple.key()].add(triple.source_id())
            facts_by_key[triple.key()].add(fact)

        sources = {s for srcs in claimed_by.values() for s in srcs}
        sensitivity = {s: 0.8 for s in sources}
        specificity = {s: 0.8 for s in sources}
        posterior = {fact: self.prior_true for fact in claimed_by}

        for _ in range(self.max_iters):
            # E-step: fact posteriors given source qualities.  A source that
            # covers the fact's key either asserts the fact or abstains.
            for fact, asserters in claimed_by.items():
                key = (fact[0], fact[1])
                observers = key_sources[key]
                like_true = 1.0
                like_false = 1.0
                for source in observers:
                    if source in asserters:
                        like_true *= sensitivity[source]
                        like_false *= 1.0 - specificity[source]
                    else:
                        like_true *= 1.0 - sensitivity[source]
                        like_false *= specificity[source]
                numer = self.prior_true * like_true
                denom = numer + (1.0 - self.prior_true) * like_false
                posterior[fact] = numer / denom if denom > 0 else self.prior_true

            # M-step: source qualities from fact posteriors.
            true_hits: dict[str, float] = defaultdict(float)
            true_total: dict[str, float] = defaultdict(float)
            false_abstain: dict[str, float] = defaultdict(float)
            false_total: dict[str, float] = defaultdict(float)
            for key, facts in facts_by_key.items():
                for source in key_sources[key]:
                    for fact in facts:
                        p = posterior[fact]
                        asserted = source in claimed_by[fact]
                        true_total[source] += p
                        false_total[source] += 1.0 - p
                        if asserted:
                            true_hits[source] += p
                        else:
                            false_abstain[source] += 1.0 - p
            a = self.smoothing
            for source in sources:
                sensitivity[source] = (true_hits[source] + a * 0.8) / (
                    true_total[source] + a
                )
                specificity[source] = (false_abstain[source] + a * 0.8) / (
                    false_total[source] + a
                )
        self._posterior = posterior

    def query(self, entity: str, attribute: str) -> set[str]:
        return {
            self._display[fact]
            for fact, p in self._posterior.items()
            if fact[0] == entity and fact[1] == attribute
            and p >= self.accept_threshold
        }
