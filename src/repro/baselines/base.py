"""Baseline framework: shared substrate and method interfaces.

Every method — the paper's baselines and MultiRAG itself — runs against the
same :class:`Substrate`: one fused knowledge graph, one chunk corpus, one
retriever, and a fresh simulated LLM per method (so token/latency meters
do not leak across methods).  ``setup()`` is where offline work happens
(TruthFinder's global trust iteration, index building); ``query()`` answers
one claim key.  The harness times both phases separately, which is what
gives Table II its time column shape.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.datasets.schema import MultiSourceDataset
from repro.kg.graph import KnowledgeGraph
from repro.llm.simulated import SimulatedLLM
from repro.retrieval.chunking import Chunk
from repro.retrieval.retriever import MultiSourceRetriever


@dataclass(slots=True)
class Substrate:
    """Everything a method may consume, built once per dataset.

    ``dataset`` is a :class:`~repro.datasets.schema.MultiSourceDataset` for
    fusion benchmarks or a :class:`~repro.datasets.multihop.MultiHopDataset`
    for the QA benchmarks; methods access only the fields their benchmark
    guarantees.
    """

    dataset: "MultiSourceDataset | object"
    graph: KnowledgeGraph
    chunks: list[Chunk]
    retriever: MultiSourceRetriever
    llm_seed: int = 0

    def fresh_llm(self, **kwargs: object) -> SimulatedLLM:
        """A new simulated LLM with this substrate's seed (meters isolated)."""
        return SimulatedLLM(seed=self.llm_seed, **kwargs)  # type: ignore[arg-type]

    def truth_oracle(self) -> dict[str, set[str]]:
        """``entity|attribute -> values`` map for parametric (CoT) methods.

        This models the base LLM's pretraining exposure to the benchmark's
        facts; the simulated model recalls from it only at its configured
        ``knowledge_accuracy``.
        """
        oracle: dict[str, set[str]] = {}
        for entity, record in self.dataset.truth.items():
            for attribute, values in record.items():
                oracle[f"{entity}|{attribute}"] = set(values)
        return oracle


class FusionMethod(ABC):
    """A method that answers ``(entity, attribute)`` fusion queries."""

    #: display name used in benchmark tables.
    name: str = ""

    def setup(self, substrate: Substrate) -> None:
        """Offline preparation; default is to remember the substrate."""
        self.substrate = substrate

    @abstractmethod
    def query(self, entity: str, attribute: str) -> set[str]:
        """Predicted value set for one claim key."""

    def split(self) -> "FusionMethod | None":
        """A worker-local view safe for concurrent ``query`` calls.

        ``None`` (the default) declares the method stateful across
        queries; the exec harness then serializes its batch instead of
        fanning out.  Methods whose query path is read-only override
        this to return a meter-isolated view and fold telemetry back in
        :meth:`absorb`.
        """
        return None

    def absorb(self, worker: "FusionMethod") -> None:
        """Fold a :meth:`split` view's accounting back into this method."""


@dataclass(frozen=True, slots=True)
class QAPrediction:
    """One multi-hop answer.

    ``answers`` is the method's final answer set (scored for precision);
    ``candidates`` is its ranked candidate list, whose top-5 slice is what
    the paper's Recall@5 measures; ``retrieved_entities`` records which
    entity pages were consulted (for error analysis).
    """

    answers: frozenset[str]
    candidates: tuple[str, ...] = ()
    retrieved_entities: tuple[str, ...] = ()


class QAMethod(ABC):
    """A method that answers multi-hop questions over a text corpus."""

    name: str = ""

    def setup(self, substrate: Substrate) -> None:
        self.substrate = substrate

    @abstractmethod
    def answer(self, query: object) -> QAPrediction:
        """Answer one :class:`~repro.datasets.multihop.MultiHopQuery`."""

    def split(self) -> "QAMethod | None":
        """A worker-local view safe for concurrent ``answer`` calls.

        Same contract as :meth:`FusionMethod.split`: ``None`` (the
        default) means "serialize me"; a view means the harness may fan
        the batch out and :meth:`absorb` each view back in submit order.
        """
        return None

    def absorb(self, worker: "QAMethod") -> None:
        """Fold a :meth:`split` view's accounting back into this method."""


FUSION_METHODS: dict[str, type[FusionMethod]] = {}
QA_METHODS: dict[str, type[QAMethod]] = {}


def register_fusion(cls: type[FusionMethod]) -> type[FusionMethod]:
    """Class decorator adding a fusion method to the registry."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} must define a name")
    FUSION_METHODS[cls.name] = cls
    return cls


def register_qa(cls: type[QAMethod]) -> type[QAMethod]:
    """Class decorator adding a QA method to the registry."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} must define a name")
    QA_METHODS[cls.name] = cls
    return cls


@dataclass(slots=True)
class ChunkStatement:
    """A parsed ``(subject, predicate, object)`` found inside a chunk."""

    subject: str
    predicate: str
    obj: str
    chunk: Chunk

    @property
    def source_id(self) -> str:
        return self.chunk.source_id


def parse_chunk_statements(chunks: list[Chunk]) -> list[ChunkStatement]:
    """Extract lexicon statements from retrieved chunks (shared helper)."""
    from repro.llm.lexicon import split_sentence
    from repro.retrieval.tokenize import sentences

    statements: list[ChunkStatement] = []
    for chunk in chunks:
        for sentence in sentences(chunk.text):
            parsed = split_sentence(sentence)
            if parsed is not None:
                statements.append(ChunkStatement(*parsed, chunk=chunk))
    return statements
