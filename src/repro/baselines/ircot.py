"""IRCoT baseline (Trivedi et al., 2022) — interleaved retrieval + CoT.

Retrieval and reasoning alternate: an initial retrieval produces candidate
facts, a reasoning step forms an interim answer, and the interim answer is
appended to the query for a second retrieval round.  Values must survive
both rounds (or match the interim majority) to be returned — better
precision than Standard RAG at the cost of extra LLM calls and latency.
"""

from __future__ import annotations

from collections import Counter

from repro.baselines.base import (
    FusionMethod,
    Substrate,
    parse_chunk_statements,
    register_fusion,
)
from repro.util import normalize_value


@register_fusion
class IRCoT(FusionMethod):
    """Two-round interleaved retrieve/reason loop."""

    name = "IRCoT"

    def __init__(self, top_k: int = 6, rounds: int = 2) -> None:
        if rounds < 1:
            raise ValueError("rounds must be at least 1")
        self.top_k = top_k
        self.rounds = rounds

    def setup(self, substrate: Substrate) -> None:
        super().setup(substrate)
        self.llm = substrate.fresh_llm()

    def _collect(self, question: str, entity: str, attribute: str) -> dict[str, str]:
        hits = self.substrate.retriever.retrieve(question, k=self.top_k)
        values: dict[str, str] = {}
        for st in parse_chunk_statements([h.item for h in hits]):
            if st.subject == entity and st.predicate == attribute:
                values.setdefault(normalize_value(st.obj), st.obj)
        return values

    def query(self, entity: str, attribute: str) -> set[str]:
        spoken = attribute.replace("_", " ")
        question = f"What is the {spoken} of {entity}?"
        seen_rounds: list[dict[str, str]] = []
        counts: Counter[str] = Counter()
        for round_no in range(self.rounds):
            values = self._collect(question, entity, attribute)
            seen_rounds.append(values)
            counts.update(values.keys())
            if not values:
                break
            # Reasoning step: the model writes an interim thought that is
            # appended to the next retrieval query.
            interim = min(values, key=lambda k: (-counts[k], k))
            self.llm.generate_answer(question, [f"{entity} | {attribute} | {values[interim]}"])
            question = f"{question} {values[interim]}"
        if not seen_rounds or not any(seen_rounds):
            return set()
        # Keep values observed in every non-empty round (stable evidence).
        non_empty = [set(v) for v in seen_rounds if v]
        stable = set.intersection(*non_empty) if non_empty else set()
        display: dict[str, str] = {}
        for values in seen_rounds:
            display.update(values)
        if not stable:
            best = min(counts, key=lambda k: (-counts[k], k))
            stable = {best}
        return {display[v] for v in stable}
