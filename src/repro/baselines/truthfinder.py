"""TruthFinder (Yin, Han & Yu, KDD 2007) — iterative trust propagation.

The classic fixed point between *source trustworthiness* and *fact
confidence*:

* a fact's confidence grows with the trust of the sources asserting it,
  ``σ(f) = 1 − Π_s (1 − t(s))``, computed in log space (the paper's
  trustworthiness score ``τ(s) = −ln(1 − t(s))``);
* implications between conflicting facts about the same object adjust
  confidence (similar values support each other, dissimilar ones detract);
* a source's trust is the mean confidence of its claims.

The whole claim table is fused at ``setup()`` time — this global offline
iteration is exactly why the data-fusion baselines carry the large "Time/s"
entries in Table II.
"""

from __future__ import annotations

import math
from collections import defaultdict

from repro.baselines.base import FusionMethod, Substrate, register_fusion
from repro.confidence.similarity import similarity
from repro.util import normalize_value

_MAX_TRUST = 0.999999


@register_fusion
class TruthFinder(FusionMethod):
    """Iterative source-trust / fact-confidence fusion over all claims."""

    name = "TruthFinder"

    def __init__(
        self,
        max_iters: int = 8,
        tol: float = 1e-4,
        init_trust: float = 0.8,
        rho: float = 0.5,
        gamma: float = 0.3,
    ) -> None:
        self.max_iters = max_iters
        self.tol = tol
        self.init_trust = init_trust
        self.rho = rho
        self.gamma = gamma
        self._fact_conf: dict[tuple[str, str, str], float] = {}
        self._display: dict[tuple[str, str, str], str] = {}

    def setup(self, substrate: Substrate) -> None:
        super().setup(substrate)
        facts_by_key: dict[tuple[str, str], set[tuple[str, str, str]]] = defaultdict(set)
        sources_of_fact: dict[tuple[str, str, str], set[str]] = defaultdict(set)
        facts_of_source: dict[str, set[tuple[str, str, str]]] = defaultdict(set)

        for triple in substrate.graph.triples():
            fact = (triple.subject, triple.predicate, normalize_value(triple.obj))
            self._display.setdefault(fact, triple.obj)
            facts_by_key[(triple.subject, triple.predicate)].add(fact)
            sources_of_fact[fact].add(triple.source_id())
            facts_of_source[triple.source_id()].add(fact)

        trust = {s: self.init_trust for s in facts_of_source}
        conf: dict[tuple[str, str, str], float] = {}
        for _ in range(self.max_iters):
            # fact confidence score from source trustworthiness (log space):
            # σ(f) = Σ_s τ(s),  τ(s) = −ln(1 − t(s)).
            sigma = {
                fact: sum(-math.log(1.0 - min(trust[s], _MAX_TRUST)) for s in sources)
                for fact, sources in sources_of_fact.items()
            }
            # implication adjustment between same-key facts, then the
            # logistic squash s(f) = 1 / (1 + e^{−γ σ*(f)}).
            conf = {}
            for key, facts in facts_by_key.items():
                facts_list = sorted(facts)
                for fact in facts_list:
                    adjusted = sigma[fact]
                    for other in facts_list:
                        if other == fact:
                            continue
                        imp = similarity([other[2]], [fact[2]]) - 0.5
                        adjusted += self.rho * sigma[other] * imp
                    conf[fact] = 1.0 / (1.0 + math.exp(-self.gamma * adjusted))
            # source trust from fact confidence.
            new_trust = {}
            delta = 0.0
            for source, facts in facts_of_source.items():
                value = sum(conf[f] for f in facts) / len(facts)
                delta = max(delta, abs(value - trust[source]))
                new_trust[source] = min(value, _MAX_TRUST)
            trust = new_trust
            if delta < self.tol:
                break
        self._fact_conf = conf

    def query(self, entity: str, attribute: str) -> set[str]:
        """Classic TruthFinder returns the single highest-confidence fact
        (ties included) — the single-truth assumption the MultiRAG paper
        calls out as a weakness on multi-valued attributes."""
        candidates = {
            fact: c for fact, c in self._fact_conf.items()
            if fact[0] == entity and fact[1] == attribute
        }
        if not candidates:
            return set()
        best = max(candidates.values())
        return {
            self._display[fact]
            for fact, c in candidates.items()
            if c >= best - 1e-12
        }
