"""Our methods, wrapped in the shared fusion-method interface.

* :class:`MCCMethod` — the multi-level confidence computing module alone,
  applied to candidates fetched straight from the knowledge graph's key
  index (Table II's "MCC" column).
* :class:`MultiRAGMethod` — the full pipeline: multi-source line graph
  aggregation + MCC + historical credibility updates (Table II's
  "MultiRAG" column and the subject of every ablation).
"""

from __future__ import annotations

from repro.baselines.base import FusionMethod, Substrate, register_fusion
from repro.confidence.history import HistoryStore
from repro.confidence.mcc import mcc
from repro.confidence.node_level import NodeScorer
from repro.core.config import MultiRAGConfig
from repro.core.pipeline import MultiRAG
from repro.exec import Query
from repro.linegraph.homologous import HomologousGroup, HomologousNode


@register_fusion
class MCCMethod(FusionMethod):
    """Confidence computing over directly indexed candidates (no MLG)."""

    name = "MCC"

    def __init__(self, config: MultiRAGConfig | None = None) -> None:
        self.config = config or MultiRAGConfig()

    def setup(self, substrate: Substrate) -> None:
        super().setup(substrate)
        self.llm = substrate.fresh_llm()
        self.history = HistoryStore(
            init_entities=self.config.history_init_entities
        )
        self.scorer = NodeScorer(
            graph=substrate.graph,
            llm=self.llm,
            history=self.history,
            alpha=self.config.alpha,
            beta=self.config.beta,
        )

    def query(self, entity: str, attribute: str) -> set[str]:
        candidates = self.substrate.graph.by_key(entity, attribute)
        if not candidates:
            return set()
        snode = HomologousNode(name=attribute, entity=entity, num=len(candidates))
        group = HomologousGroup(
            key=(entity, attribute), snode=snode, members=list(candidates)
        )
        result = mcc(
            [group],
            self.scorer,
            node_threshold=self.config.node_threshold,
            graph_threshold=self.config.graph_threshold,
            fast_path_nodes=self.config.fast_path_nodes,
            hedge_margin=self.config.hedge_margin,
        )
        return {a.value for a in result.accepted_assessments()}

    def split(self) -> "MCCMethod":
        """A concurrent view: shared graph/history, isolated LLM meter.

        The query path only *reads* the graph key index and the history
        store, so views are safe to run in parallel; each carries its
        own LLM clone (and a scorer bound to it) for race-free
        accounting.

        Raises:
            ConfigError: if this method's config is invalid.
        """
        view = MCCMethod(self.config)
        view.substrate = self.substrate
        view.llm = self.llm.split()
        view.history = self.history
        view.scorer = NodeScorer(
            graph=self.substrate.graph,
            llm=view.llm,
            history=self.history,
            alpha=self.config.alpha,
            beta=self.config.beta,
        )
        return view

    def absorb(self, worker: FusionMethod) -> None:
        assert isinstance(worker, MCCMethod)
        self.llm.meter.merge(worker.llm.meter)


@register_fusion
class MultiRAGMethod(FusionMethod):
    """The complete MultiRAG pipeline behind the fusion interface."""

    name = "MultiRAG"

    def __init__(self, config: MultiRAGConfig | None = None) -> None:
        self.config = config or MultiRAGConfig()

    def setup(self, substrate: Substrate) -> None:
        """Build and ingest the full MultiRAG pipeline.

        Raises:
            ReproError: if pipeline construction or ingestion fails
                (bad config, dataset materialization, unknown format,
                extraction or contract failure).
        """
        super().setup(substrate)
        self.pipeline = MultiRAG(
            config=self.config,
            llm=substrate.fresh_llm(extraction_noise=self.config.extraction_noise),
        )
        self.build_report = self.pipeline.ingest(substrate.dataset.raw_sources())

    def query(self, entity: str, attribute: str) -> set[str]:
        """Answer one (entity, attribute) key query.

        Raises:
            StateError: if :meth:`setup` has not run.
            ContractViolation: if a pipeline contract check fails in
                ``debug_contracts`` mode.
        """
        result = self.pipeline.run(Query.key(entity, attribute))
        return {a.value for a in result.answers}

    def split(self) -> "MultiRAGMethod | None":
        """A concurrent view over a pipeline worker view.

        Only valid when the config disables consensus-feedback history
        (``update_history=False``): with feedback on, each query's
        outcome influences the next query's credibility scores, so the
        batch must stay sequential — signalled by returning ``None``.

        Raises:
            ConfigError: if this method's config is invalid.
            StateError: if :meth:`setup` has not run.
        """
        if self.config.update_history:
            return None
        view = MultiRAGMethod(self.config)
        view.substrate = self.substrate
        view.pipeline = self.pipeline.worker_view()
        return view

    def absorb(self, worker: FusionMethod) -> None:
        assert isinstance(worker, MultiRAGMethod)
        self.pipeline.absorb_view(worker.pipeline)

    @property
    def prompt_time_s(self) -> float:
        """Accumulated simulated LLM latency (the PT columns)."""
        return self.pipeline.llm.meter.simulated_latency_s
