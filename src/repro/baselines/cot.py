"""Chain-of-Thought baseline (closed-book GPT-3.5-Turbo in the paper).

CoT reasons step by step but retrieves nothing: answers come from the base
model's parametric knowledge.  The simulated LLM models this with a
ground-truth oracle it recalls at a configurable accuracy, hallucinating a
plausible same-domain value otherwise — the canonical failure mode RAG was
invented to fix.
"""

from __future__ import annotations

from repro.baselines.base import FusionMethod, Substrate, register_fusion


@register_fusion
class ChainOfThought(FusionMethod):
    """Closed-book parametric answering with step-by-step prompting."""

    name = "CoT"

    def __init__(self, knowledge_accuracy: float = 0.45) -> None:
        self.knowledge_accuracy = knowledge_accuracy

    def setup(self, substrate: Substrate) -> None:
        super().setup(substrate)
        pool = tuple(
            sorted({t.obj for t in substrate.graph.triples()})[:200]
        )
        self.llm = substrate.fresh_llm(
            knowledge=substrate.truth_oracle(),
            knowledge_accuracy=self.knowledge_accuracy,
            hallucination_pool=pool,
        )

    def query(self, entity: str, attribute: str) -> set[str]:
        text = self.llm.parametric_answer(f"{entity}|{attribute}")
        return {part.strip() for part in text.split(";") if part.strip()}
