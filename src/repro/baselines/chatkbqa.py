"""ChatKBQA baseline (Luo et al., 2023) — generate-then-retrieve KBQA.

An LLM first generates a logical form for the question, which is then
executed against the knowledge base.  Execution itself is exact, so
ChatKBQA is strong on dense, clean graphs — but it returns *every* claim
matching the logical form with no credibility weighting, which is the
sensitivity to inconsistent data that Fig. 5 of the paper exposes.
"""

from __future__ import annotations

from repro.baselines.base import FusionMethod, Substrate, register_fusion
from repro.core.logic_form import generate_logic_form
from repro.llm.stage import Stage
from repro.util import normalize_value


@register_fusion
class ChatKBQA(FusionMethod):
    """Logical-form generation + unweighted KB execution."""

    name = "ChatKBQA"

    def setup(self, substrate: Substrate) -> None:
        super().setup(substrate)
        self.llm = substrate.fresh_llm()

    def query(self, entity: str, attribute: str) -> set[str]:
        spoken = attribute.replace("_", " ")
        question = f"What is the {spoken} of {entity}?"
        # The generation call that produces the logical form.
        self.llm.complete(
            "### TASK: answer\n### QUERY\n" + question
            + "\n### INPUT\nGenerate a logical form.\n### END\n",
            stage=Stage.OTHER,  # baseline-specific: logical-form generation
        )
        logic_form = generate_logic_form(question)
        if not logic_form.is_structured:
            return set()
        claims = self.substrate.graph.by_key(*logic_form.key())
        support: dict[str, int] = {}
        display: dict[str, str] = {}
        for claim in claims:
            key = normalize_value(claim.obj)
            support[key] = support.get(key, 0) + 1
            display.setdefault(key, claim.obj)
        if not support:
            return set()
        # Unweighted support pruning: keep values backed by at least half
        # the strongest support.  No source credibility enters — which is
        # why shuffled-increment corruption degrades this method fast.
        best = max(support.values())
        cut = max(1, best // 2 + (best % 2))
        return {display[v] for v, n in support.items() if n >= cut}
