"""Majority voting (MV) baseline.

Returns the single most-claimed value for a key.  The paper notes MV
"performs poorly on all datasets because it can only return a single answer
for a query" — multi-valued attributes (a movie's several directors) are
structurally out of reach, and that is the behaviour reproduced here.
"""

from __future__ import annotations

from collections import Counter

from repro.baselines.base import FusionMethod, register_fusion
from repro.util import normalize_value


@register_fusion
class MajorityVote(FusionMethod):
    """One claim key → the plurality value (deterministic tie-break)."""

    name = "MV"

    def query(self, entity: str, attribute: str) -> set[str]:
        claims = self.substrate.graph.by_key(entity, attribute)
        if not claims:
            return set()
        counts: Counter[str] = Counter()
        display: dict[str, str] = {}
        for claim in claims:
            key = normalize_value(claim.obj)
            counts[key] += 1
            display.setdefault(key, claim.obj)
        winner = min(counts, key=lambda k: (-counts[k], k))
        return {display[winner]}
