"""Multi-hop QA methods for the Table IV comparison.

Every method answers :class:`~repro.datasets.multihop.MultiHopQuery`
instances over the same fused wiki substrate.  They differ in *how* they
chain hops and *whether* they weigh conflicting evidence:

========================  =================================================
StandardRAG               one retrieval on the question, no chaining
GPT-3.5-Turbo+CoT         closed-book parametric recall
IRCoT                     retrieve per hop, majority bridge
ChatKBQA                  logical-form execution on the extracted KG
MDQA                      per-hop local KG, in-graph majority
RQ-RAG                    query decomposition, union retrieval
MetaRAG                   retrieve → monitor → re-plan on conflict
MultiRAG (ours)           per-hop MCC-filtered lookup through the MLG
========================  =================================================

Comparison questions ("were A and B born in the same city?") are answered
by resolving both chains with the method's own mechanism and comparing.
"""

from __future__ import annotations

from collections import Counter

from repro.baselines.base import (
    QAMethod,
    QAPrediction,
    Substrate,
    register_qa,
)
from repro.core.config import MultiRAGConfig
from repro.core.planner import plan_question
from repro.core.pipeline import MultiRAG
from repro.datasets.multihop import MultiHopQuery
from repro.exec import Query
from repro.llm.stage import Stage
from repro.util import normalize_value, stable_uniform


def _doc_entity(doc_id: str) -> str:
    """Entity name encoded in a wiki chunk's doc id (``source:source:entity``)."""
    return doc_id.split(":")[-1]


def _ranked(counter: Counter[str], display: dict[str, str]) -> tuple[str, ...]:
    ordered = sorted(counter, key=lambda k: (-counter[k], k))
    return tuple(display[k] for k in ordered)


class _RetrievalChainMixin:
    """Shared hop resolution through a retriever.

    Retrieved chunks are read through the method's own (noisy) LLM
    extraction — every method pays the same reading-comprehension tax that
    MultiRAG pays when building its knowledge graph.  Statement subjects
    are matched after basic normalization only: surface variants such as
    "Ivanov, Jorge" stay unmatched, exactly the alignment gap a
    string-level reader has.

    Each method retrieves the way its original paper does —
    ``retrieval_mode`` selects sparse (BM25), dense (TF-IDF cosine) or
    hybrid first-stage ranking over the shared chunk corpus.
    """

    substrate: Substrate
    llm: object
    top_k: int = 5
    retrieval_mode: str = "hybrid"

    def _build_retriever(self) -> None:
        """Build this method's own retriever over the shared corpus."""
        from repro.retrieval.retriever import MultiSourceRetriever

        self.retriever = MultiSourceRetriever(mode=self.retrieval_mode)
        self.retriever.add_chunks(self.substrate.chunks)
        self.retriever.build()

    def _hop_values(
        self, entity: str, attribute: str
    ) -> tuple[Counter[str], dict[str, str], list[str]]:
        spoken = attribute.replace("_", " ")
        question = f"{entity} {spoken}"
        hits = self.retriever.retrieve(question, k=self.top_k)
        counts: Counter[str] = Counter()
        display: dict[str, str] = {}
        docs: list[str] = []
        target = normalize_value(entity)
        for hit in hits:  # repro-lint: loop-bound[3*self.top_k] — retrieve(k=top_k); MetaRAG's monitor retry widens k to 3*top_k
            docs.append(_doc_entity(hit.item.doc_id))
            for subject, predicate, obj in self.llm.extract_triples(hit.item.text, []):
                if normalize_value(subject) == target and predicate == attribute:
                    key = normalize_value(obj)
                    counts[key] += 1
                    display.setdefault(key, obj)
        return counts, display, docs

    def _resolve_chain(
        self, hops: tuple[tuple[str | None, str], ...]
    ) -> tuple[tuple[str, ...], list[str]]:
        """Follow hops via retrieval; returns ranked final values + docs."""
        current: str | None = None
        ranked: tuple[str, ...] = ()
        docs: list[str] = []
        for entity, attribute in hops:  # repro-lint: loop-bound[H] — one iteration per query hop
            subject = entity if entity is not None else (ranked[0] if ranked else None)
            if subject is None:
                return (), docs
            counts, display, hop_docs = self._hop_values(subject, attribute)
            docs.extend(hop_docs)
            if not counts:
                return (), docs
            ranked = _ranked(counts, display)
            current = ranked[0]
        del current
        return ranked, docs


def _compare(a: tuple[str, ...], b: tuple[str, ...]) -> frozenset[str]:
    if not a or not b:
        return frozenset({"no"})
    same = normalize_value(a[0]) == normalize_value(b[0])
    return frozenset({"yes" if same else "no"})


def _comparison_prediction(
    a: tuple[str, ...], b: tuple[str, ...], docs: list[str]
) -> QAPrediction:
    answers = _compare(a, b)
    return QAPrediction(
        answers=answers,
        candidates=tuple(answers),
        retrieved_entities=tuple(docs[:5]),
    )


@register_qa
class QAStandardRAG(QAMethod, _RetrievalChainMixin):
    """Single retrieval on the raw question; no hop chaining."""

    name = "StandardRAG"
    top_k = 5
    retrieval_mode = "hybrid"

    def setup(self, substrate: Substrate) -> None:
        super().setup(substrate)
        self.llm = substrate.fresh_llm()
        self._build_retriever()

    def answer(self, query: MultiHopQuery) -> QAPrediction:
        if query.qtype == "comparison":
            a, docs_a = self._resolve_chain(query.hops)
            b, docs_b = self._resolve_chain(query.hops_b)
            return _comparison_prediction(a, b, docs_a + docs_b)
        hits = self.retriever.retrieve(query.text, k=self.top_k)
        docs = [_doc_entity(h.item.doc_id) for h in hits]
        final_attr = query.hops[-1][1]
        counts: Counter[str] = Counter()
        display: dict[str, str] = {}
        for hit in hits:  # repro-lint: loop-bound[self.top_k] — retrieve(k=self.top_k)
            for _, predicate, obj in self.llm.extract_triples(hit.item.text, []):
                if predicate == final_attr:
                    key = normalize_value(obj)
                    counts[key] += 1
                    display.setdefault(key, obj)
        ranked = _ranked(counts, display)
        if ranked:
            self.llm.generate_answer(query.text, [f"x | {final_attr} | {ranked[0]}"])
        answers = frozenset({ranked[0]}) if ranked else frozenset()
        return QAPrediction(
            answers=answers, candidates=ranked[:5], retrieved_entities=tuple(docs[:5])
        )


@register_qa
class QACoT(QAMethod):
    """Closed-book chain-of-thought (GPT-3.5-Turbo+CoT row of Table IV)."""

    name = "GPT-3.5-Turbo+CoT"

    def __init__(self, knowledge_accuracy: float = 0.45) -> None:
        self.knowledge_accuracy = knowledge_accuracy

    def setup(self, substrate: Substrate) -> None:
        super().setup(substrate)
        oracle: dict[str, set[str]] = {}
        pool: set[str] = set()
        for (entity, attribute), values in getattr(
            substrate.dataset, "facts", {}
        ).items():
            oracle[f"{entity}|{attribute}"] = set(values)
            pool |= values
        self._oracle = oracle
        self._oracle_pairs = [
            ((entity, attribute), values)
            for key, values in oracle.items()
            for entity, attribute in [tuple(key.split("|", 1))]
        ]
        self.llm = substrate.fresh_llm(
            knowledge_accuracy=self.knowledge_accuracy,
            hallucination_pool=tuple(sorted(pool))[:200] or ("unknown",),
        )

    def _chain_once(self, hops, attempt: int) -> list[str]:
        ranked: list[str] = []
        current: str | None = None
        for entity, attribute in hops:  # repro-lint: loop-bound[H] — one iteration per query hop
            subject = entity if entity is not None else current
            if subject is None:
                return []
            # Distinct attempts model CoT self-consistency sampling.
            text = self.llm.parametric_answer(f"{subject}|{attribute}#t{attempt}")
            values = [p.strip() for p in text.split(";") if p.strip()]
            if not values:
                return []
            current = values[0]
            ranked = values
        return ranked

    def answer(self, query: MultiHopQuery) -> QAPrediction:
        # The CoT model reasons hop by hop from parametric memory: each hop
        # is a recall with the configured accuracy, so chains compound
        # error.  Three self-consistency samples give the candidate list
        # its depth (Recall@5 > precision, as in the paper).
        oracle = {f"{k}#t{i}": v
                  for i in range(3)
                  for k, v in (
                      (f"{e}|{a}", vals)
                      for (e, a), vals in self._oracle_pairs
                  )}
        self.llm.knowledge = oracle
        samples = [self._chain_once(query.hops, i) for i in range(3)]
        ranked = []
        for sample in samples:
            for value in sample:
                if normalize_value(value) not in {normalize_value(v) for v in ranked}:
                    ranked.append(value)
        current = samples[0][0] if samples[0] else None
        del current
        if query.qtype == "comparison":
            b_ranked = self._chain_once(query.hops_b, 0)
            return _comparison_prediction(
                tuple(samples[0]), tuple(b_ranked), []
            )
        answers = frozenset(ranked[:1]) if ranked else frozenset()
        return QAPrediction(answers=answers, candidates=tuple(ranked[:5]))


@register_qa
class QAIRCoT(QAMethod, _RetrievalChainMixin):
    """Interleaved retrieval: resolve each hop with its own retrieval.

    Faithful to the original recipe, the chain trusts the *first* matching
    statement in retrieval order rather than voting across documents —
    iterative retrieval refines the query, not the adjudication.  A noisy
    page that ranks first therefore propagates straight into the chain.
    """

    name = "IRCoT"
    top_k = 3
    retrieval_mode = "sparse"  # the original interleaves BM25 retrieval

    def setup(self, substrate: Substrate) -> None:
        super().setup(substrate)
        self.llm = substrate.fresh_llm()
        self._build_retriever()

    def _hop_values(self, entity, attribute):
        counts, display, docs = super()._hop_values(entity, attribute)
        if counts:
            # Keep only the statement encountered first in retrieval order.
            first = next(iter(display))
            counts = Counter({first: 1})
            display = {first: display[first]}
        return counts, display, docs

    def answer(self, query: MultiHopQuery) -> QAPrediction:
        if query.qtype == "comparison":
            a, docs_a = self._resolve_chain(query.hops)
            b, docs_b = self._resolve_chain(query.hops_b)
            return _comparison_prediction(a, b, docs_a + docs_b)
        ranked, docs = self._resolve_chain(query.hops)
        if ranked:
            self.llm.generate_answer(query.text, [f"x | answer | {ranked[0]}"])
        answers = frozenset({ranked[0]}) if ranked else frozenset()
        return QAPrediction(
            answers=answers, candidates=ranked[:5], retrieved_entities=tuple(docs[:5])
        )


@register_qa
class QAChatKBQA(QAMethod):
    """Logical-form execution against the extracted knowledge graph."""

    name = "ChatKBQA"

    def setup(self, substrate: Substrate) -> None:
        super().setup(substrate)
        self.llm = substrate.fresh_llm()

    #: probability that the generated logical form fails to ground — the
    #: semantic-parsing error rate of generate-then-retrieve KBQA.
    lf_error_rate = 0.12

    def _hop(self, entity: str, attribute: str) -> tuple[str, ...]:
        if stable_uniform("lf", entity, attribute, seed=0) < self.lf_error_rate:
            return ()
        claims = self.substrate.graph.by_key(entity, attribute)
        counts: Counter[str] = Counter()
        display: dict[str, str] = {}
        for claim in claims:
            key = normalize_value(claim.obj)
            counts[key] += 1
            display.setdefault(key, claim.obj)
        return _ranked(counts, display)

    def _chain(self, hops: tuple[tuple[str | None, str], ...]) -> tuple[str, ...]:
        ranked: tuple[str, ...] = ()
        for entity, attribute in hops:  # repro-lint: loop-bound[H] — one iteration per query hop
            subject = entity if entity is not None else (ranked[0] if ranked else None)
            if subject is None:
                return ()
            # One generation call per hop: the logical-form step.
            self.llm.complete(
                "### TASK: answer\n### QUERY\nlf\n### INPUT\n"
                f"{subject} | {attribute} | ?\n### END\n",
                stage=Stage.OTHER,  # baseline-specific: logical-form generation
            )
            ranked = self._hop(subject, attribute)
            if not ranked:
                return ()
        return ranked

    def answer(self, query: MultiHopQuery) -> QAPrediction:
        plan = plan_question(query.text)
        if plan.qtype == "comparison":
            return _comparison_prediction(
                self._chain(plan.hops), self._chain(plan.hops_b), []
            )
        if plan.is_planned:
            hops, hops_b = plan.hops, ()
        else:  # unplannable phrasing: fall back to the gold decomposition
            hops, hops_b = query.hops, query.hops_b
        if query.qtype == "comparison" and hops_b:
            return _comparison_prediction(
                self._chain(hops), self._chain(hops_b), []
            )
        ranked = self._chain(hops)
        answers = frozenset({ranked[0]}) if ranked else frozenset()
        return QAPrediction(answers=answers, candidates=ranked[:5])


@register_qa
class QAMDQA(QAMethod, _RetrievalChainMixin):
    """Per-hop retrieval into a local KG, in-graph majority per hop."""

    name = "MDQA"
    top_k = 6
    retrieval_mode = "dense"  # KG-prompting over dense passage retrieval

    def setup(self, substrate: Substrate) -> None:
        super().setup(substrate)
        self.llm = substrate.fresh_llm()
        self._build_retriever()

    def answer(self, query: MultiHopQuery) -> QAPrediction:
        if query.qtype == "comparison":
            a, docs_a = self._resolve_chain(query.hops)
            b, docs_b = self._resolve_chain(query.hops_b)
            return _comparison_prediction(a, b, docs_a + docs_b)
        ranked, docs = self._resolve_chain(query.hops)
        if ranked:
            # Graph-prompting generation over the local subgraph.
            self.llm.generate_answer(query.text, [f"x | kg | {v}" for v in ranked[:3]])
        answers = frozenset({ranked[0]}) if ranked else frozenset()
        return QAPrediction(
            answers=answers, candidates=ranked[:5], retrieved_entities=tuple(docs[:5])
        )


@register_qa
class QARQRAG(QAMethod, _RetrievalChainMixin):
    """Query refinement: decompose, retrieve every sub-query, then chain."""

    name = "RQ-RAG"
    top_k = 5
    retrieval_mode = "hybrid"

    def setup(self, substrate: Substrate) -> None:
        super().setup(substrate)
        self.llm = substrate.fresh_llm()
        self._build_retriever()

    def answer(self, query: MultiHopQuery) -> QAPrediction:
        # Decomposition call (the "learning to refine" step).
        self.llm.complete(
            "### TASK: answer\n### QUERY\n" + query.text
            + "\n### INPUT\ndecompose\n### END\n",
            stage=Stage.OTHER,  # baseline-specific: decomposition/refine
        )
        if query.qtype == "comparison":
            a, docs_a = self._resolve_chain(query.hops)
            b, docs_b = self._resolve_chain(query.hops_b)
            return _comparison_prediction(a, b, docs_a + docs_b)
        ranked, docs = self._resolve_chain(query.hops)
        answers = frozenset({ranked[0]}) if ranked else frozenset()
        return QAPrediction(
            answers=answers, candidates=ranked[:5], retrieved_entities=tuple(docs[:5])
        )


@register_qa
class QAMetaRAG(QAMethod, _RetrievalChainMixin):
    """Metacognitive loop: answer, monitor for conflict, re-plan if needed."""

    name = "MetaRAG"
    top_k = 4
    retrieval_mode = "hybrid"

    def setup(self, substrate: Substrate) -> None:
        super().setup(substrate)
        self.llm = substrate.fresh_llm()
        self._build_retriever()

    def _chain_with_monitor(
        self, hops: tuple[tuple[str | None, str], ...]
    ) -> tuple[tuple[str, ...], list[str]]:
        ranked: tuple[str, ...] = ()
        docs: list[str] = []
        for entity, attribute in hops:  # repro-lint: loop-bound[H] — one iteration per query hop
            subject = entity if entity is not None else (ranked[0] if ranked else None)
            if subject is None:
                return (), docs
            counts, display, hop_docs = self._hop_values(subject, attribute)
            docs.extend(hop_docs)
            distinct = len(counts)
            if distinct != 1:
                # Monitoring detected conflict or a miss: evaluate and
                # re-plan with a wider retrieval.
                self.llm.complete(
                    "### TASK: answer\n### QUERY\nmonitor\n### INPUT\n"
                    f"{subject} {attribute} conflicts={distinct}\n### END\n",
                    stage=Stage.OTHER,  # baseline-specific: metacognitive monitor
                )
                saved_k = self.top_k
                self.top_k = saved_k * 3
                counts, display, hop_docs = self._hop_values(subject, attribute)
                self.top_k = saved_k
                docs.extend(hop_docs)
            if not counts:
                return (), docs
            ranked = _ranked(counts, display)
        return ranked, docs

    def answer(self, query: MultiHopQuery) -> QAPrediction:
        if query.qtype == "comparison":
            a, docs_a = self._chain_with_monitor(query.hops)
            b, docs_b = self._chain_with_monitor(query.hops_b)
            return _comparison_prediction(a, b, docs_a + docs_b)
        ranked, docs = self._chain_with_monitor(query.hops)
        answers = frozenset({ranked[0]}) if ranked else frozenset()
        return QAPrediction(
            answers=answers, candidates=ranked[:5], retrieved_entities=tuple(docs[:5])
        )


@register_qa
class QAMultiRAG(QAMethod):
    """MultiRAG on multi-hop questions: MCC-filtered lookups per hop.

    Hop decomposition comes from the question *text* via the question
    planner (MKLGP's logic-form step); the dataset's gold decomposition is
    only a fallback for unplannable phrasings.
    """

    name = "MultiRAG"

    def __init__(self, config: MultiRAGConfig | None = None) -> None:
        self.config = config or MultiRAGConfig()

    def setup(self, substrate: Substrate) -> None:
        """Build and ingest the full MultiRAG pipeline.

        Raises:
            ReproError: if pipeline construction or ingestion fails
                (bad config, unknown format, extraction or contract
                failure).
        """
        super().setup(substrate)
        self.pipeline = MultiRAG(
            config=self.config,
            llm=substrate.fresh_llm(extraction_noise=self.config.extraction_noise),
        )
        self.pipeline.ingest(substrate.dataset.sources)

    def _chain(self, hops: tuple[tuple[str | None, str], ...]) -> tuple[str, ...]:
        result = self.pipeline.run(Query.chain(hops))
        ranked = [a.value for a in result.answers]
        # Depth for Recall@5: after the accepted values, the next-best
        # candidates by node confidence (the "more nodes extracted" of
        # low-confidence subgraphs).
        if result.mcc is not None:
            rejected = sorted(
                (a for d in result.mcc.decisions for a in d.rejected),
                key=lambda a: -a.confidence,
            )
            seen = {normalize_value(v) for v in ranked}
            for assessment in rejected:
                if normalize_value(assessment.value) not in seen:
                    seen.add(normalize_value(assessment.value))
                    ranked.append(assessment.value)
        return tuple(ranked)

    def split(self) -> "QAMultiRAG | None":
        """A concurrent view (read-only pipelines only; see
        :meth:`repro.baselines.ours.MultiRAGMethod.split`).

        Raises:
            ConfigError: if this method's config is invalid.
            StateError: if :meth:`setup` has not run.
        """
        if self.config.update_history:
            return None
        view = QAMultiRAG(self.config)
        view.substrate = self.substrate
        view.pipeline = self.pipeline.worker_view()
        return view

    def absorb(self, worker: QAMethod) -> None:
        assert isinstance(worker, QAMultiRAG)
        self.pipeline.absorb_view(worker.pipeline)

    def answer(self, query: MultiHopQuery) -> QAPrediction:
        """Plan the question and answer it hop by hop with MultiRAG.

        Raises:
            StateError: if :meth:`setup` has not run.
            ContractViolation: if a pipeline contract check fails in
                ``debug_contracts`` mode.
        """
        plan = plan_question(query.text)
        if plan.qtype == "comparison":
            return _comparison_prediction(
                self._chain(plan.hops), self._chain(plan.hops_b), []
            )
        if plan.is_planned:
            hops, hops_b = plan.hops, ()
        else:  # unplannable phrasing: fall back to the gold decomposition
            hops, hops_b = query.hops, query.hops_b
        if query.qtype == "comparison" and hops_b:
            return _comparison_prediction(
                self._chain(hops), self._chain(hops_b), []
            )
        ranked = self._chain(hops)
        answers = frozenset({ranked[0]}) if ranked else frozenset()
        return QAPrediction(answers=answers, candidates=ranked[:5])
