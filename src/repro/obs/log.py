"""Logging facade — the single sanctioned gateway to stdlib ``logging``.

Library modules must not ``import logging`` directly (lint rule OBS001):
ad-hoc loggers fragment the telemetry story the structured tracer and
metrics registry unify.  Modules that still want freeform diagnostics get
a namespaced logger from :func:`get_logger`; everything flows through the
``repro`` logger hierarchy so applications configure one root.
"""

from __future__ import annotations

import logging

#: root of the library's logger namespace.
ROOT_LOGGER_NAME = "repro"


def get_logger(name: str) -> logging.Logger:
    """A logger namespaced under ``repro`` (idempotent, stdlib-backed).

    ``get_logger("repro.core.pipeline")`` and
    ``get_logger("core.pipeline")`` return the same logger.
    """
    if name == ROOT_LOGGER_NAME:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if not name.startswith(ROOT_LOGGER_NAME + "."):
        name = f"{ROOT_LOGGER_NAME}.{name}"
    return logging.getLogger(name)


def set_level(level: int | str) -> None:
    """Set the level on the library's root logger (CLI convenience)."""
    logging.getLogger(ROOT_LOGGER_NAME).setLevel(level)
