"""``repro.obs`` — tracing, metrics and decision-audit for the pipeline.

A zero-dependency (stdlib-only), determinism-safe observability layer:

* :class:`Tracer` — nested spans per pipeline stage with JSON/JSONL
  export and an injectable clock (wall time never leaks into results);
* :class:`MetricsRegistry` — counters, gauges and fixed-bucket
  histograms whose snapshots are deterministic across seeded runs;
* :class:`AuditLog` — one event per MCC/MKLGP filtering decision, so
  every kept/dropped value is explainable;
* :class:`Observability` — the bundle components receive; :data:`NOOP`
  is the shared disabled bundle and the default everywhere, adding no
  overhead when observability is off.

The only module allowed to ``import logging`` is :mod:`repro.obs.log`
(lint rule OBS001); everything else uses :func:`get_logger`.
"""

from repro.obs.audit import (
    ACTION_DROPPED,
    ACTION_KEPT,
    AUDIT_CODES,
    NOOP_AUDIT,
    AuditEvent,
    AuditLog,
    NoopAuditLog,
)
from repro.obs.context import NOOP, Observability
from repro.obs.diagnose import (
    ALL_STAGES,
    STAGE_FILTER,
    STAGE_RETRIEVAL,
    STAGE_SYNTHESIS,
    VERDICT_ABSTAINED,
    VERDICT_CORRECT,
    VERDICT_WRONG,
    DiagnosisReport,
    HopRecord,
    QueryDiagnosis,
    attribute_query,
    signature_of,
)
from repro.obs.diff import Divergence, StageDelta, TraceDiff, diff_traces
from repro.obs.log import get_logger, set_level
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NOOP_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NoopMetrics,
    format_metrics,
)
from repro.obs.render import (
    render_stage_summary,
    render_top_spans,
    render_waterfall,
)
from repro.obs.trace import (
    NOOP_TRACER,
    WALL_CLOCK_FIELDS,
    NoopTracer,
    Span,
    TickClock,
    Tracer,
    load_trace,
)

__all__ = [
    "ACTION_DROPPED",
    "ACTION_KEPT",
    "ALL_STAGES",
    "AUDIT_CODES",
    "AuditEvent",
    "AuditLog",
    "Counter",
    "DEFAULT_BUCKETS",
    "DiagnosisReport",
    "Divergence",
    "Gauge",
    "Histogram",
    "HopRecord",
    "MetricsRegistry",
    "NOOP",
    "NOOP_AUDIT",
    "NOOP_METRICS",
    "NOOP_TRACER",
    "NoopAuditLog",
    "NoopMetrics",
    "NoopTracer",
    "Observability",
    "QueryDiagnosis",
    "STAGE_FILTER",
    "STAGE_RETRIEVAL",
    "STAGE_SYNTHESIS",
    "Span",
    "StageDelta",
    "TickClock",
    "TraceDiff",
    "Tracer",
    "VERDICT_ABSTAINED",
    "VERDICT_CORRECT",
    "VERDICT_WRONG",
    "WALL_CLOCK_FIELDS",
    "attribute_query",
    "diff_traces",
    "format_metrics",
    "get_logger",
    "load_trace",
    "render_stage_summary",
    "render_top_spans",
    "render_waterfall",
    "set_level",
    "signature_of",
]
