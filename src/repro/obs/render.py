"""Trace rendering for ``python -m repro trace <file>``.

Turns an exported span list back into a human-readable per-stage
waterfall: one row per span, indented by nesting depth, with a bar
positioned on the run's timeline plus duration and token columns, and an
aggregate per-stage summary table underneath.
"""

from __future__ import annotations

from typing import Any, Sequence

#: width of the waterfall bar column, in characters.
BAR_WIDTH = 32

#: attribute keys summed into the token column.
_TOKEN_KEYS = ("prompt_tokens", "completion_tokens")


def _span_tokens(span: dict[str, Any]) -> int:
    attrs = span.get("attrs", {})
    return sum(int(attrs.get(key, 0)) for key in _TOKEN_KEYS)


def _bar(start: float, duration: float, total: float) -> str:
    """A ``[  ▆▆▆   ]`` bar placed proportionally on the run timeline."""
    if total <= 0:
        return " " * BAR_WIDTH
    left = int(round(start / total * BAR_WIDTH))
    width = max(1, int(round(duration / total * BAR_WIDTH)))
    left = min(left, BAR_WIDTH - 1)
    width = min(width, BAR_WIDTH - left)
    return " " * left + "▆" * width + " " * (BAR_WIDTH - left - width)


def _fmt_duration(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f}s "
    return f"{seconds * 1000.0:8.3f}ms"


def render_waterfall(spans: Sequence[dict[str, Any]]) -> str:
    """Render the span tree as an indented timeline waterfall."""
    if not spans:
        return "(empty trace)"
    timed = all("start_s" in s and "duration_s" in s for s in spans)
    if timed:
        origin = min(s["start_s"] for s in spans)
        end = max(s["start_s"] + s["duration_s"] for s in spans)
        total = end - origin
    else:
        origin = 0.0
        total = 0.0

    name_width = max(
        len("  " * s.get("depth", 0) + s["name"]) for s in spans
    )
    name_width = max(name_width, len("span"))

    lines: list[str] = []
    header = f"{'span'.ljust(name_width)}  "
    if timed:
        header += f"{'timeline'.ljust(BAR_WIDTH)}  {'duration':>10}  "
    header += f"{'tokens':>7}  attrs"
    lines.append(header)
    lines.append("-" * len(header))

    for span in spans:
        indent = "  " * span.get("depth", 0)
        row = f"{(indent + span['name']).ljust(name_width)}  "
        if timed:
            row += (
                f"{_bar(span['start_s'] - origin, span['duration_s'], total)}"
                f"  {_fmt_duration(span['duration_s'])}  "
            )
        tokens = _span_tokens(span)
        row += f"{tokens if tokens else '-':>7}  "
        row += _summarize_attrs(span.get("attrs", {}))
        lines.append(row.rstrip())

    lines.append("")
    lines.append(render_stage_summary(spans))
    return "\n".join(lines)


def render_stage_summary(spans: Sequence[dict[str, Any]]) -> str:
    """Aggregate per-stage table: span count, total latency, tokens."""
    by_stage: dict[str, dict[str, float]] = {}
    timed = all("duration_s" in s for s in spans)
    for span in spans:
        stats = by_stage.setdefault(
            span["name"], {"count": 0, "duration_s": 0.0, "tokens": 0}
        )
        stats["count"] += 1
        if timed:
            stats["duration_s"] += span["duration_s"]
        stats["tokens"] += _span_tokens(span)

    width = max(len(name) for name in by_stage) if by_stage else 5
    width = max(width, len("stage"))
    lines = [f"{'stage'.ljust(width)}  {'count':>5}  {'latency':>10}  "
             f"{'tokens':>7}"]
    lines.append("-" * len(lines[0]))
    for name in sorted(by_stage):
        stats = by_stage[name]
        latency = _fmt_duration(stats["duration_s"]) if timed else "-"
        lines.append(
            f"{name.ljust(width)}  {int(stats['count']):>5}  {latency:>10}  "
            f"{int(stats['tokens']) if stats['tokens'] else '-':>7}"
        )
    return "\n".join(lines)


def render_top_spans(spans: Sequence[dict[str, Any]], n: int) -> str:
    """The ``n`` slowest spans, one row each, longest first.

    Requires timed spans (``duration_s``); an untimed export (written
    with ``drop_timing``) has no latency ordering to report.  Ties break
    on span id so the listing is deterministic.
    """
    timed = [s for s in spans if "duration_s" in s]
    if not timed:
        return "(no timed spans — trace was exported without timing)"
    ranked = sorted(
        timed, key=lambda s: (-s["duration_s"], s.get("span_id", 0))
    )[:max(1, n)]
    name_width = max(len(s["name"]) for s in ranked)
    name_width = max(name_width, len("span"))
    lines = [f"{'span'.ljust(name_width)}  {'duration':>10}  "
             f"{'tokens':>7}  attrs"]
    lines.append("-" * len(lines[0]))
    for span in ranked:
        tokens = _span_tokens(span)
        row = (
            f"{span['name'].ljust(name_width)}  "
            f"{_fmt_duration(span['duration_s'])}  "
            f"{tokens if tokens else '-':>7}  "
            f"{_summarize_attrs(span.get('attrs', {}))}"
        )
        lines.append(row.rstrip())
    return "\n".join(lines)


def _summarize_attrs(attrs: dict[str, Any], limit: int = 4) -> str:
    """The first few non-token attributes as ``k=v`` pairs."""
    pairs = []
    for key in sorted(attrs):
        if key in _TOKEN_KEYS:
            continue
        value = attrs[key]
        if isinstance(value, float):
            value = f"{value:.4g}"
        pairs.append(f"{key}={value}")
        if len(pairs) >= limit:
            break
    return " ".join(pairs)
