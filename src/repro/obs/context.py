"""The Observability bundle: tracer + metrics + audit as one handle.

Components receive a single :class:`Observability` object instead of
three separate ones; :data:`NOOP` (the default everywhere) is a shared
bundle of inert singletons, so the disabled path allocates nothing and
adds one attribute read per instrumentation point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.audit import NOOP_AUDIT, AuditLog, NoopAuditLog
from repro.obs.metrics import NOOP_METRICS, MetricsRegistry, NoopMetrics
from repro.obs.trace import NOOP_TRACER, Clock, NoopTracer, Tracer


@dataclass(slots=True)
class Observability:
    """One pipeline run's telemetry sinks."""

    tracer: Tracer | NoopTracer = field(default_factory=lambda: NOOP_TRACER)
    metrics: MetricsRegistry | NoopMetrics = field(
        default_factory=lambda: NOOP_METRICS
    )
    audit: AuditLog | NoopAuditLog = field(default_factory=lambda: NOOP_AUDIT)

    @property
    def enabled(self) -> bool:
        """True when at least one sink records anything."""
        return (
            self.tracer.enabled or self.metrics.enabled or self.audit.enabled
        )

    @classmethod
    def enable(cls, clock: Clock | None = None) -> "Observability":
        """A fully live bundle (fresh tracer, registry and audit log)."""
        return cls(
            tracer=Tracer(clock=clock),
            metrics=MetricsRegistry(),
            audit=AuditLog(),
        )

    @classmethod
    def disabled(cls) -> "Observability":
        """The shared no-op bundle (same object every call)."""
        return NOOP

    def split(self) -> "Observability":
        """A worker-local bundle mirroring which sinks are live here.

        Exec workers must not write into the parent's sinks concurrently
        (the tracer is a stack; counters are read-modify-write), so each
        task records into a bundle from ``split()`` and the engine folds
        it back through :meth:`absorb` in submit order.  Returns
        :data:`NOOP` itself when nothing is enabled, keeping the disabled
        path allocation-free.
        """
        if not self.enabled:
            return NOOP
        return Observability(
            tracer=(
                Tracer(clock=self.tracer.clock)
                if isinstance(self.tracer, Tracer) else NOOP_TRACER
            ),
            metrics=(
                MetricsRegistry()
                if isinstance(self.metrics, MetricsRegistry) else NOOP_METRICS
            ),
            audit=(
                AuditLog()
                if isinstance(self.audit, AuditLog) else NOOP_AUDIT
            ),
        )

    def absorb(self, worker: "Observability") -> None:
        """Merge a worker bundle's records back into this one.

        Called once per task in submit order, so the combined trace,
        metrics snapshot and audit log are identical for every worker
        count.

        Raises:
            StateError: when the worker tracer still has open spans.
            ConfigError: when histograms disagree on bucket boundaries.
        """
        if worker is self or not worker.enabled:
            return
        if isinstance(self.tracer, Tracer) and isinstance(worker.tracer, Tracer):
            self.tracer.adopt(worker.tracer.spans)
        if isinstance(self.metrics, MetricsRegistry) and isinstance(
            worker.metrics, MetricsRegistry
        ):
            self.metrics.merge(worker.metrics)
        if isinstance(self.audit, AuditLog) and isinstance(
            worker.audit, AuditLog
        ):
            self.audit.extend(worker.audit.events)


#: process-wide disabled bundle; the default for every component.
NOOP = Observability()
