"""The Observability bundle: tracer + metrics + audit as one handle.

Components receive a single :class:`Observability` object instead of
three separate ones; :data:`NOOP` (the default everywhere) is a shared
bundle of inert singletons, so the disabled path allocates nothing and
adds one attribute read per instrumentation point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.audit import NOOP_AUDIT, AuditLog, NoopAuditLog
from repro.obs.metrics import NOOP_METRICS, MetricsRegistry, NoopMetrics
from repro.obs.trace import NOOP_TRACER, Clock, NoopTracer, Tracer


@dataclass(slots=True)
class Observability:
    """One pipeline run's telemetry sinks."""

    tracer: Tracer | NoopTracer = field(default_factory=lambda: NOOP_TRACER)
    metrics: MetricsRegistry | NoopMetrics = field(
        default_factory=lambda: NOOP_METRICS
    )
    audit: AuditLog | NoopAuditLog = field(default_factory=lambda: NOOP_AUDIT)

    @property
    def enabled(self) -> bool:
        """True when at least one sink records anything."""
        return (
            self.tracer.enabled or self.metrics.enabled or self.audit.enabled
        )

    @classmethod
    def enable(cls, clock: Clock | None = None) -> "Observability":
        """A fully live bundle (fresh tracer, registry and audit log)."""
        return cls(
            tracer=Tracer(clock=clock),
            metrics=MetricsRegistry(),
            audit=AuditLog(),
        )

    @classmethod
    def disabled(cls) -> "Observability":
        """The shared no-op bundle (same object every call)."""
        return NOOP


#: process-wide disabled bundle; the default for every component.
NOOP = Observability()
