"""Structured tracing: nested spans over the MultiRAG pipeline.

A :class:`Tracer` produces a tree of :class:`Span` objects, one per
pipeline stage (``ingest``, ``adapter:<kind>``, ``linegraph.build``,
``retrieve``, ``mcc.graph``, ``mcc.node``, ``mklgp``, ``generate``).
Spans carry deterministic attributes (chunk counts, candidate counts,
confidence scores, token usage) plus wall-clock timing from an injected
clock, and export to JSON/JSONL for the ``python -m repro trace``
waterfall renderer.

Determinism contract: everything except the fields named in
:data:`WALL_CLOCK_FIELDS` is a pure function of the seeded run — two
identical runs produce byte-identical exports once those fields are
stripped (or exactly identical under a :class:`TickClock`).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.errors import StateError

#: the only export fields whose values depend on the wall clock; strip
#: them (``drop_timing=True``) to compare traces across runs.
WALL_CLOCK_FIELDS: tuple[str, ...] = ("start_s", "duration_s")

#: a clock is any zero-argument callable returning monotonic seconds.
Clock = Callable[[], float]


class TickClock:
    """Deterministic clock for tests: each read advances by ``step``.

    Injecting one makes even the wall-clock fields of a trace replayable,
    so byte-identity tests need no field stripping.
    """

    def __init__(self, step: float = 0.001) -> None:
        self.step = step
        self._ticks = 0

    def __call__(self) -> float:
        self._ticks += 1
        return self._ticks * self.step


@dataclass(slots=True)
class Span:
    """One timed, attributed stage of a pipeline run."""

    name: str
    span_id: int
    parent_id: int | None
    depth: int
    attrs: dict[str, Any] = field(default_factory=dict)
    start_s: float = 0.0
    duration_s: float = 0.0
    #: real spans report True so call sites can gate expensive attribute
    #: computation (``if span.enabled: span.set(...)``).
    enabled: bool = True
    _tracer: "Tracer | None" = None

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes; later calls overwrite earlier keys."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc: object) -> bool:
        if self._tracer is not None:
            self._tracer._finish(self)
        return False

    def to_dict(self, drop_timing: bool = False) -> dict[str, Any]:
        """Export one span as a JSON-ready dict (sorted keys downstream)."""
        data: dict[str, Any] = {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "name": self.name,
            "attrs": dict(sorted(self.attrs.items())),
        }
        if not drop_timing:
            data["start_s"] = round(self.start_s, 9)
            data["duration_s"] = round(self.duration_s, 9)
        return data


class _NoopSpan:
    """Shared, allocation-free stand-in when tracing is disabled."""

    __slots__ = ()

    enabled = False

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Produces nested spans; export as JSON or JSONL.

    The nesting structure comes from enter/exit order (a stack), so the
    context-manager API is the only way spans open and close::

        with tracer.span("ingest") as span:
            with tracer.span("adapter:csv", source_id="s1"):
                ...
            span.set(num_triples=123)
    """

    enabled = True

    def __init__(self, clock: Clock | None = None) -> None:
        self.clock: Clock = clock if clock is not None else time.perf_counter
        self.spans: list[Span] = []
        self._stack: list[Span] = []
        self._next_id = 0

    def span(self, name: str, **attrs: Any) -> Span:
        """Open a child of the currently active span (or a root span)."""
        parent = self._stack[-1] if self._stack else None
        span = Span(
            name=name,
            span_id=self._next_id,
            parent_id=parent.span_id if parent is not None else None,
            depth=len(self._stack),
            attrs=dict(attrs),
            start_s=self.clock(),
            _tracer=self,
        )
        self._next_id += 1  # repro-lint: ignore[CONC001] — never shared: each exec worker records into its own tracer (Observability.split), adopted back single-threaded
        self.spans.append(span)
        self._stack.append(span)
        return span

    def _finish(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise StateError(
                f"span {span.name!r} closed out of order; spans must nest"
            )
        self._stack.pop()
        span.duration_s = self.clock() - span.start_s

    @property
    def active(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def current_attrs(self, **attrs: Any) -> None:
        """Attach attributes to the innermost open span (no-op at root)."""
        if self._stack:
            self._stack[-1].set(**attrs)

    def roots(self) -> list[Span]:
        return [s for s in self.spans if s.parent_id is None]

    def children(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def walk(self) -> Iterator[Span]:
        """Spans in start order (which is also depth-first order)."""
        return iter(self.spans)

    def clear(self) -> None:
        """Drop recorded spans and restart ids from 0.

        Raises:
            StateError: when a span is still open.
        """
        if self._stack:
            raise StateError("cannot clear a tracer with open spans")
        self.spans = []
        self._next_id = 0

    def adopt(self, spans: list[Span]) -> None:
        """Graft spans recorded by another tracer into this one.

        The exec engine merges per-worker traces back into the parent
        tracer in submit order through this method: span ids are remapped
        onto this tracer's counter exactly as if the spans had been
        recorded here sequentially, so a parallel run's trace (after
        ``drop_timing``) is identical to the sequential run's.  Adopted
        root spans become children of the currently active span, or stay
        roots when none is open.

        Raises:
            StateError: when the source tracer still has open spans
                (duration would be meaningless).
        """
        parent = self.active
        base_depth = parent.depth + 1 if parent is not None else 0
        mapping: dict[int, int] = {}
        for span in spans:
            if span._tracer is not None and span in span._tracer._stack:
                raise StateError(
                    f"cannot adopt open span {span.name!r}; close it first"
                )
            new_id = self._next_id
            self._next_id += 1
            mapping[span.span_id] = new_id
            if span.parent_id is not None and span.parent_id in mapping:
                parent_id: int | None = mapping[span.parent_id]
            else:
                parent_id = parent.span_id if parent is not None else None
            self.spans.append(
                Span(
                    name=span.name,
                    span_id=new_id,
                    parent_id=parent_id,
                    depth=span.depth + base_depth,
                    attrs=dict(span.attrs),
                    start_s=span.start_s,
                    duration_s=span.duration_s,
                )
            )

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_dicts(self, drop_timing: bool = False) -> list[dict[str, Any]]:
        return [s.to_dict(drop_timing=drop_timing) for s in self.spans]

    def to_json(self, drop_timing: bool = False) -> str:
        """The whole trace as one JSON array (stable key order)."""
        return json.dumps(
            self.to_dicts(drop_timing=drop_timing), sort_keys=True, indent=2
        )

    def to_jsonl(self, drop_timing: bool = False) -> str:
        """One span per line — the ``--trace`` file format."""
        return "\n".join(
            json.dumps(d, sort_keys=True)
            for d in self.to_dicts(drop_timing=drop_timing)
        ) + ("\n" if self.spans else "")

    def export(self, path: str | Path, drop_timing: bool = False) -> Path:
        """Write the trace as JSONL (``.json`` paths get the array form)."""
        target = Path(path)
        if target.suffix == ".json":
            target.write_text(self.to_json(drop_timing=drop_timing))
        else:
            target.write_text(self.to_jsonl(drop_timing=drop_timing))
        return target


class NoopTracer:
    """Disabled tracer: every call returns the shared no-op span."""

    enabled = False

    def span(self, name: str, **attrs: Any) -> _NoopSpan:
        return NOOP_SPAN

    @property
    def active(self) -> None:
        return None

    def current_attrs(self, **attrs: Any) -> None:
        return None

    def spans_recorded(self) -> int:
        return 0


NOOP_TRACER = NoopTracer()


def load_trace(path: str | Path) -> list[dict[str, Any]]:
    """Read a trace file produced by :meth:`Tracer.export` (JSON or JSONL).

    Raises:
        StateError: when the file is empty, truncated, or not valid
            trace JSON/JSONL (every span must be an object carrying at
            least ``name`` and ``span_id``).
    """
    text = Path(path).read_text()
    stripped = text.lstrip()
    if not stripped:
        raise StateError(f"not a trace file: {path} (file is empty)")
    try:
        if stripped.startswith("["):
            spans = json.loads(text)
        else:
            spans = [
                json.loads(line) for line in text.splitlines() if line.strip()
            ]
    except json.JSONDecodeError as exc:
        raise StateError(f"not a trace file: {path} ({exc})") from None
    if not isinstance(spans, list) or not spans:
        raise StateError(f"not a trace file: {path} (no spans recorded)")
    for span in spans:
        if not isinstance(span, dict):
            raise StateError(
                f"not a trace file: {path} (truncated or non-span line)"
            )
        if "name" not in span or "span_id" not in span:
            raise StateError(f"not a trace file: {path} (missing span keys)")
    return spans
