"""Decision audit trail: why MCC/MKLGP kept or dropped each value.

Hallucination mitigation is only trustworthy if it is explainable: for
every candidate value the pipeline filters, the audit log records *which*
confidence level fired (graph fast-path, node threshold, fallback
promotion, skipped fast-path member), the threshold it was compared
against and the score it got.  The per-query slice is surfaced on
:attr:`repro.core.answer.RetrievalResult.audit` and folded into trace
exports, so "why did MCC drop this value" is answerable without a
debugger.

Events carry only deterministic fields — no wall-clock timestamps — so
audit trails are byte-comparable across seeded runs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Iterable

#: the confidence level that produced a decision.
LEVEL_GRAPH = "graph"
LEVEL_NODE = "node"
LEVEL_FALLBACK = "fallback"
LEVEL_FAST_PATH = "fast_path"

ACTION_KEPT = "kept"
ACTION_DROPPED = "dropped"

#: machine-readable decision codes (:attr:`AuditEvent.code`): *which* MCC
#: test fired, so downstream analysis (``repro.obs.diagnose``) can bucket
#: rejections without parsing the human-readable ``reason`` string.
CODE_GRAPH_FAST_PATH = "GRAPH_FAST_PATH"
CODE_GRAPH_CONFLICT = "GRAPH_CONFLICT"
CODE_NODE_ABOVE_THRESHOLD = "NODE_ABOVE_THRESHOLD"
CODE_NODE_BELOW_THRESHOLD = "NODE_BELOW_THRESHOLD"
CODE_FALLBACK_PROMOTED = "FALLBACK_PROMOTED"
CODE_FAST_PATH_AGREES = "FAST_PATH_AGREES"
CODE_FAST_PATH_DISAGREES = "FAST_PATH_DISAGREES"
CODE_CONSENSUS_KEPT = "CONSENSUS_KEPT"
CODE_FAST_PATH_CAP = "FAST_PATH_CAP"

#: every code an :class:`AuditEvent` may carry ("" means "unenriched").
AUDIT_CODES = frozenset({
    CODE_GRAPH_FAST_PATH,
    CODE_GRAPH_CONFLICT,
    CODE_NODE_ABOVE_THRESHOLD,
    CODE_NODE_BELOW_THRESHOLD,
    CODE_FALLBACK_PROMOTED,
    CODE_FAST_PATH_AGREES,
    CODE_FAST_PATH_DISAGREES,
    CODE_CONSENSUS_KEPT,
    CODE_FAST_PATH_CAP,
})


@dataclass(frozen=True, slots=True)
class AuditEvent:
    """One filtering decision about one candidate value (or group)."""

    #: pipeline stage that decided (``mcc.graph``, ``mcc.node``, ...).
    stage: str
    #: ``kept`` or ``dropped``.
    action: str
    #: the claim key ``entity|attribute`` the decision belongs to.
    key: str
    #: the candidate value decided on ("" for group-level events).
    value: str
    #: source asserting the value ("" for group-level events).
    source_id: str
    #: which confidence level fired (graph / node / fallback / fast_path).
    level: str
    #: threshold the score was compared against (None when not threshold
    #: based, e.g. fast-path skips).
    threshold: float | None
    #: the score that drove the decision (None when none was computed).
    score: float | None
    #: human-readable one-liner for traces and CLI output.
    reason: str = ""
    #: machine-readable decision code (one of :data:`AUDIT_CODES`): the
    #: specific MCC test that fired, stable across reason-string rewording.
    code: str = ""
    #: signed distance from the deciding threshold, ``score - threshold``
    #: rounded to 6 decimals (None when the decision was not threshold
    #: based, e.g. fast-path membership).
    margin: float | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "stage": self.stage,
            "action": self.action,
            "key": self.key,
            "value": self.value,
            "source_id": self.source_id,
            "level": self.level,
            "threshold": self.threshold,
            "score": self.score,
            "reason": self.reason,
            "code": self.code,
            "margin": self.margin,
        }


class AuditLog:
    """Append-only event collector with cheap per-query slicing."""

    enabled = True

    def __init__(self) -> None:
        self.events: list[AuditEvent] = []

    def record(self, event: AuditEvent) -> None:
        self.events.append(event)

    def extend(self, events: Iterable[AuditEvent]) -> None:
        self.events.extend(events)

    def clear(self) -> None:
        """Drop all recorded events (invalidates outstanding marks).

        The eviction seam for long-lived processes: a pipeline that
        serves queries indefinitely must drain the log (``to_jsonl`` +
        ``clear``) between batches or it grows without bound.
        """
        self.events.clear()

    def mark(self) -> int:
        """Position marker; pair with :meth:`since` to slice one query."""
        return len(self.events)

    def since(self, mark: int) -> list[AuditEvent]:
        return self.events[mark:]

    def __len__(self) -> int:
        return len(self.events)

    def dropped(self) -> list[AuditEvent]:
        return [e for e in self.events if e.action == ACTION_DROPPED]

    def kept(self) -> list[AuditEvent]:
        return [e for e in self.events if e.action == ACTION_KEPT]

    def to_jsonl(self) -> str:
        return "\n".join(
            json.dumps(e.to_dict(), sort_keys=True) for e in self.events
        ) + ("\n" if self.events else "")


class NoopAuditLog:
    """Disabled audit log: records nothing, slices to nothing."""

    enabled = False

    events: tuple[AuditEvent, ...] = ()

    def record(self, event: AuditEvent) -> None:
        return None

    def extend(self, events: Iterable[AuditEvent]) -> None:
        return None

    def clear(self) -> None:
        return None

    def mark(self) -> int:
        return 0

    def since(self, mark: int) -> list[AuditEvent]:
        return []

    def __len__(self) -> int:
        return 0

    def dropped(self) -> list[AuditEvent]:
        return []

    def kept(self) -> list[AuditEvent]:
        return []

    def to_jsonl(self) -> str:
        return ""


NOOP_AUDIT = NoopAuditLog()
