"""Run-to-run trace diffing: align two span streams, find divergence.

Two seeded runs of the same corpus should produce *logically* identical
traces — same spans, same order, same deterministic attributes — with
only the wall-clock fields differing.  ``diff_traces`` checks exactly
that: it aligns two exported traces span-by-span on
``(name, depth, attrs)`` (span ids and :data:`WALL_CLOCK_FIELDS` are
ignored), reports the first divergent span, and summarizes per-stage
deltas (span count, latency, tokens, MCC drop rate) so a regression
shows up as "mcc.node drop rate went from 12% to 31%" rather than a
wall of JSON.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.obs.trace import WALL_CLOCK_FIELDS

#: span-dict keys excluded from logical comparison: ids are counter
#: artifacts and timing is wall clock.
_IGNORED_KEYS = ("span_id", "parent_id") + WALL_CLOCK_FIELDS

#: attribute keys summed into per-stage token totals.
_TOKEN_KEYS = ("prompt_tokens", "completion_tokens")


def _logical(span: dict[str, Any]) -> dict[str, Any]:
    return {k: v for k, v in span.items() if k not in _IGNORED_KEYS}


@dataclass(frozen=True, slots=True)
class Divergence:
    """The first point where two traces stop agreeing."""

    index: int
    reason: str
    a: dict[str, Any] | None
    b: dict[str, Any] | None

    def describe(self) -> str:
        def ident(span: dict[str, Any] | None) -> str:
            if span is None:
                return "(trace ended)"
            return f"{span.get('name', '?')} (depth {span.get('depth', '?')})"

        return (
            f"first divergence at span #{self.index}: {self.reason}\n"
            f"  A: {ident(self.a)}\n"
            f"  B: {ident(self.b)}"
        )


@dataclass(slots=True)
class StageDelta:
    """Aggregate differences for one span name across the two traces."""

    name: str
    count_a: int = 0
    count_b: int = 0
    duration_a: float = 0.0
    duration_b: float = 0.0
    tokens_a: int = 0
    tokens_b: int = 0
    accepted_a: int = 0
    accepted_b: int = 0
    rejected_a: int = 0
    rejected_b: int = 0

    def drop_rate(self, side: str) -> float | None:
        accepted = self.accepted_a if side == "a" else self.accepted_b
        rejected = self.rejected_a if side == "a" else self.rejected_b
        total = accepted + rejected
        return rejected / total if total else None


@dataclass(slots=True)
class TraceDiff:
    """Full diff result: first divergence plus per-stage deltas."""

    divergence: Divergence | None
    deltas: list[StageDelta] = field(default_factory=list)

    @property
    def identical(self) -> bool:
        return self.divergence is None

    def format_text(self) -> str:
        lines: list[str] = []
        if self.identical:
            lines.append("traces logically identical "
                         "(timing/ids ignored)")
        else:
            lines.append(self.divergence.describe())
        lines.append("")
        header = (f"{'stage':<18} {'count A/B':>11} {'latency A/B':>21} "
                  f"{'tokens A/B':>13} {'drop-rate A/B':>15}")
        lines.append(header)
        lines.append("-" * len(header))
        for delta in self.deltas:
            drop_a, drop_b = delta.drop_rate("a"), delta.drop_rate("b")
            fmt = lambda r: f"{r:6.1%}" if r is not None else "     -"
            drops = f"{fmt(drop_a)} /{fmt(drop_b)}"
            if drop_a is None and drop_b is None:
                drops = "-"
            lines.append(
                f"{delta.name:<18} "
                f"{delta.count_a:>4} /{delta.count_b:>5} "
                f"{delta.duration_a * 1e3:>9.3f}ms /{delta.duration_b * 1e3:>9.3f}ms "
                f"{delta.tokens_a:>5} /{delta.tokens_b:>6} "
                f"{drops:>15}"
            )
        return "\n".join(lines)


def _first_divergence(
    a: Sequence[dict[str, Any]], b: Sequence[dict[str, Any]]
) -> Divergence | None:
    for index, (sa, sb) in enumerate(zip(a, b)):
        la, lb = _logical(sa), _logical(sb)
        if la == lb:
            continue
        if la.get("name") != lb.get("name"):
            reason = (f"span name differs "
                      f"({la.get('name')!r} vs {lb.get('name')!r})")
        elif la.get("depth") != lb.get("depth"):
            reason = (f"nesting depth differs "
                      f"({la.get('depth')} vs {lb.get('depth')})")
        else:
            attrs_a = la.get("attrs", {})
            attrs_b = lb.get("attrs", {})
            keys = sorted(
                k for k in set(attrs_a) | set(attrs_b)
                if attrs_a.get(k) != attrs_b.get(k)
            )
            reason = (f"attrs differ on {', '.join(keys)}" if keys
                      else "span payloads differ")
        return Divergence(index=index, reason=reason, a=sa, b=sb)
    if len(a) != len(b):
        longer, shorter = ("A", b) if len(a) > len(b) else ("B", a)
        index = len(shorter)
        return Divergence(
            index=index,
            reason=(f"trace {'B' if longer == 'A' else 'A'} ends here; "
                    f"trace {longer} has "
                    f"{abs(len(a) - len(b))} more span(s)"),
            a=a[index] if index < len(a) else None,
            b=b[index] if index < len(b) else None,
        )
    return None


def _span_tokens(span: dict[str, Any]) -> int:
    attrs = span.get("attrs", {})
    return sum(int(attrs.get(key, 0)) for key in _TOKEN_KEYS)


def _accumulate(
    deltas: dict[str, StageDelta], spans: Sequence[dict[str, Any]], side: str
) -> None:
    for span in spans:
        delta = deltas.setdefault(span["name"], StageDelta(name=span["name"]))
        attrs = span.get("attrs", {})
        if side == "a":
            delta.count_a += 1
            delta.duration_a += span.get("duration_s", 0.0)
            delta.tokens_a += _span_tokens(span)
            delta.accepted_a += int(attrs.get("accepted", 0))
            delta.rejected_a += int(attrs.get("rejected", 0))
        else:
            delta.count_b += 1
            delta.duration_b += span.get("duration_s", 0.0)
            delta.tokens_b += _span_tokens(span)
            delta.accepted_b += int(attrs.get("accepted", 0))
            delta.rejected_b += int(attrs.get("rejected", 0))


def diff_traces(
    a: Sequence[dict[str, Any]], b: Sequence[dict[str, Any]]
) -> TraceDiff:
    """Compare two loaded traces (lists of span dicts from ``load_trace``).

    Logical comparison ignores span/parent ids and wall-clock fields;
    stage deltas are computed over *all* spans of both traces regardless
    of where (or whether) they diverge.
    """
    deltas: dict[str, StageDelta] = {}
    _accumulate(deltas, a, "a")
    _accumulate(deltas, b, "b")
    return TraceDiff(
        divergence=_first_divergence(a, b),
        deltas=[deltas[name] for name in sorted(deltas)],
    )
