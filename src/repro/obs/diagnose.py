"""Failure attribution: *where* a multi-hop answer went wrong.

The paper reports aggregate accuracy/hallucination rates; this module
answers the question those aggregates hide.  For every wrong or
abstained answer it consumes the per-hop evidence trail the pipeline
already emits (retrieval stage values, MCC audit events, top answers)
and attributes the failure to exactly one stage:

* ``retrieval_hop`` — the gold evidence was never retrieved at hop *k*
  (no amount of confidence filtering could have saved the answer);
* ``confidence_filter`` — a gold candidate *was* retrieved but MCC
  rejected it (the audit trail names the exact rejection code);
* ``synthesis`` — gold evidence survived filtering yet the final answer
  is still wrong (ranking/generation picked a competitor).

On top of single-stage attribution it labels each hop Correct/Wrong and
folds the labels into *reasoning-path signatures* (``C/C/C`` vs
``C/W/W``) bucketed by question type and hop count — the
difficulty-analysis methodology for comparison questions — so "bridge
questions die at hop 2 to filtering" is a queryable fact, not a hunch.

Everything here is a pure function of plain data (this layer may only
depend on ``repro.errors``/``repro.util``); the pipeline-facing driver
lives in :mod:`repro.eval.diagnose`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.util import normalize_value

#: attribution stages — every non-correct answer maps to exactly one.
STAGE_RETRIEVAL = "retrieval_hop"
STAGE_FILTER = "confidence_filter"
STAGE_SYNTHESIS = "synthesis"

ALL_STAGES = (STAGE_RETRIEVAL, STAGE_FILTER, STAGE_SYNTHESIS)

#: query-level verdicts.
VERDICT_CORRECT = "correct"
VERDICT_WRONG = "wrong"
VERDICT_ABSTAINED = "abstained"

#: per-hop correctness labels composing a reasoning-path signature.
LABEL_CORRECT = "C"
LABEL_WRONG = "W"


@dataclass(frozen=True, slots=True)
class HopRecord:
    """The evidence trail of one hop, reduced to normalized value sets.

    ``retrieved`` is everything the retrieval stage surfaced before any
    confidence filtering (``stage_values["before_subgraph_filtering"]``);
    ``kept`` is what survived MCC.  ``gold`` comes from the dataset's
    gold hop labels.  ``drop_codes`` pairs each dropped value with its
    machine-readable audit code so filter-stage attributions can name
    the exact MCC test that fired.
    """

    index: int
    entity: str
    attribute: str
    gold: frozenset[str]
    retrieved: frozenset[str]
    kept: frozenset[str]
    top: str
    drop_codes: tuple[tuple[str, str], ...] = ()

    def label(self) -> str:
        """``C`` when the hop's top answer is a gold value, else ``W``."""
        return (
            LABEL_CORRECT
            if self.top and normalize_value(self.top) in self.gold
            else LABEL_WRONG
        )


@dataclass(frozen=True, slots=True)
class QueryDiagnosis:
    """One query's verdict, reasoning-path signature and attribution."""

    qid: str
    qtype: str
    hop_count: int
    #: per-hop labels, e.g. ``C/W/W``; comparison questions join their
    #: two chains with ``+`` (``C/C+C/W``).
    signature: str
    verdict: str
    #: one of :data:`ALL_STAGES` ("" when the answer was correct).
    stage: str
    #: index of the hop the failure is attributed to (None when correct).
    hop: int | None
    #: audit codes behind a ``confidence_filter`` attribution.
    codes: tuple[str, ...]
    detail: str
    predicted: str
    expected: tuple[str, ...]

    def to_dict(self) -> dict[str, Any]:
        return {
            "qid": self.qid,
            "qtype": self.qtype,
            "hop_count": self.hop_count,
            "signature": self.signature,
            "verdict": self.verdict,
            "stage": self.stage,
            "hop": self.hop,
            "codes": list(self.codes),
            "detail": self.detail,
            "predicted": self.predicted,
            "expected": list(self.expected),
        }


def signature_of(
    hops: Sequence[HopRecord], hops_b: Sequence[HopRecord] = ()
) -> str:
    """Join per-hop labels into a reasoning-path signature."""
    sig = "/".join(h.label() for h in hops)
    if hops_b:
        sig += "+" + "/".join(h.label() for h in hops_b)
    return sig


def _attribute_hop(rec: HopRecord) -> tuple[str, tuple[str, ...], str]:
    """Stage + codes + detail for one wrong hop."""
    where = f"hop {rec.index} ({rec.entity}|{rec.attribute})"
    if not (rec.gold & rec.retrieved):
        return (
            STAGE_RETRIEVAL, (),
            f"gold evidence never retrieved at {where}",
        )
    if not (rec.gold & rec.kept):
        codes = tuple(sorted({
            code for value, code in rec.drop_codes if value in rec.gold
        }))
        return (
            STAGE_FILTER, codes,
            f"gold candidate retrieved but rejected by MCC at {where}",
        )
    return (
        STAGE_SYNTHESIS, (),
        f"gold evidence survived filtering but was outranked at {where}",
    )


def attribute_query(
    qid: str,
    qtype: str,
    hops: Sequence[HopRecord],
    gold_answers: Iterable[str],
    predicted: str,
    hops_b: Sequence[HopRecord] = (),
) -> QueryDiagnosis:
    """Diagnose one query: verdict, signature, single-stage attribution.

    A wrong/abstained answer is attributed to the *first* wrong hop
    (scanning chain A then chain B for comparison questions): once a hop
    derails, later hops chase the wrong entity and their labels carry no
    signal.  A wrong answer whose every hop is correct — e.g. a
    comparison verdict miscomputed from two correct chains — is a
    synthesis error at the final hop.
    """
    expected = tuple(sorted({normalize_value(a) for a in gold_answers}))
    norm_predicted = normalize_value(predicted) if predicted else ""
    if not norm_predicted:
        verdict = VERDICT_ABSTAINED
    elif norm_predicted in expected:
        verdict = VERDICT_CORRECT
    else:
        verdict = VERDICT_WRONG

    all_hops = list(hops) + list(hops_b)
    diagnosis_base = dict(
        qid=qid, qtype=qtype, hop_count=len(all_hops),
        signature=signature_of(hops, hops_b), verdict=verdict,
        predicted=norm_predicted, expected=expected,
    )
    if verdict == VERDICT_CORRECT:
        return QueryDiagnosis(
            stage="", hop=None, codes=(), detail="", **diagnosis_base
        )
    for rec in all_hops:
        if rec.label() == LABEL_WRONG:
            stage, codes, detail = _attribute_hop(rec)
            return QueryDiagnosis(
                stage=stage, hop=rec.index, codes=codes, detail=detail,
                **diagnosis_base,
            )
    final = all_hops[-1] if all_hops else None
    return QueryDiagnosis(
        stage=STAGE_SYNTHESIS,
        hop=final.index if final is not None else None,
        codes=(),
        detail="every hop correct but the final answer is wrong "
               "(answer synthesis/comparison error)",
        **diagnosis_base,
    )


@dataclass(slots=True)
class DiagnosisReport:
    """Attribution tables for one corpus run, with deterministic export."""

    corpus: str
    queries: list[QueryDiagnosis] = field(default_factory=list)
    #: robustness-probe results keyed by probe name (JSON-ready payloads
    #: supplied by the driver; empty when probes were not run).
    probes: dict[str, Any] = field(default_factory=dict)

    def accuracy(self) -> float:
        if not self.queries:
            return 0.0
        correct = sum(
            1 for q in self.queries if q.verdict == VERDICT_CORRECT
        )
        return round(correct / len(self.queries), 6)

    def attribution_counts(self) -> dict[str, int]:
        counts = {stage: 0 for stage in ALL_STAGES}
        for q in self.queries:
            if q.stage:
                counts[q.stage] += 1
        return counts

    def to_payload(self) -> dict[str, Any]:
        """JSON-ready tables; a pure function of the diagnoses."""
        verdicts = {
            VERDICT_CORRECT: 0, VERDICT_WRONG: 0, VERDICT_ABSTAINED: 0,
        }
        codes: dict[str, int] = {}
        signatures: dict[str, dict[str, int]] = {}
        by_hop_count: dict[str, dict[str, int]] = {}
        for q in self.queries:
            verdicts[q.verdict] += 1
            for code in q.codes:
                codes[code] = codes.get(code, 0) + 1
            sigs = signatures.setdefault(q.qtype, {})
            sigs[q.signature] = sigs.get(q.signature, 0) + 1
            bucket = by_hop_count.setdefault(
                str(q.hop_count), {"total": 0, "correct": 0}
            )
            bucket["total"] += 1
            if q.verdict == VERDICT_CORRECT:
                bucket["correct"] += 1
        return {
            "corpus": self.corpus,
            "summary": {
                "queries": len(self.queries),
                "accuracy": self.accuracy(),
                **verdicts,
            },
            "attribution": self.attribution_counts(),
            "codes": codes,
            "signatures": signatures,
            "by_hop_count": by_hop_count,
            "per_query": [q.to_dict() for q in self.queries],
            "probes": self.probes,
        }

    def to_json(self) -> str:
        """Byte-stable export (sorted keys, trailing newline)."""
        return json.dumps(self.to_payload(), sort_keys=True, indent=2) + "\n"

    def format_text(self) -> str:
        """Human-readable CLI breakdown of the attribution tables."""
        payload = self.to_payload()
        summary = payload["summary"]
        lines = [
            f"diagnosis: {self.corpus}",
            f"  queries {summary['queries']}  accuracy {summary['accuracy']}"
            f"  (correct {summary['correct']} / wrong {summary['wrong']}"
            f" / abstained {summary['abstained']})",
            "",
            "failure attribution",
        ]
        failures = summary["wrong"] + summary["abstained"]
        for stage in ALL_STAGES:
            count = payload["attribution"][stage]
            share = f"{count / failures:6.1%}" if failures else "     -"
            lines.append(f"  {stage:<18} {count:>4}  {share}")
        if payload["codes"]:
            lines.append("")
            lines.append("filter rejection codes")
            for code in sorted(payload["codes"]):
                lines.append(f"  {code:<24} {payload['codes'][code]:>4}")
        lines.append("")
        lines.append("reasoning-path signatures")
        for qtype in sorted(payload["signatures"]):
            sigs = payload["signatures"][qtype]
            for sig in sorted(sigs):
                lines.append(f"  {qtype:<14} {sig:<12} {sigs[sig]:>4}")
        lines.append("")
        lines.append("accuracy by hop count")
        for hops in sorted(payload["by_hop_count"], key=int):
            bucket = payload["by_hop_count"][hops]
            rate = bucket["correct"] / bucket["total"] if bucket["total"] else 0.0
            lines.append(
                f"  {hops} hops: {bucket['correct']}/{bucket['total']}"
                f"  ({rate:.1%})"
            )
        for name in sorted(self.probes):
            lines.append("")
            lines.append(f"probe: {name}")
            probe = self.probes[name]
            for key in sorted(probe):
                lines.append(f"  {key:<24} {probe[key]}")
        return "\n".join(lines)
