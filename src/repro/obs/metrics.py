"""Metrics registry: counters, gauges and fixed-bucket histograms.

Instruments register by name and are shared by reference, so the
pipeline, adapters, retriever, confidence stages and LLM cache all write
into one registry per :class:`~repro.obs.context.Observability` bundle.

Histograms use *fixed* bucket boundaries (no adaptive resizing, no
reservoir sampling) so a snapshot is a deterministic function of the
observed values — two seeded runs produce identical snapshots as long as
only deterministic quantities (token counts, candidate counts, simulated
latency) are recorded.  Wall-clock durations belong in span timing
fields, never in metrics.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.errors import ConfigError

#: default bucket boundaries — generic powers-of-ten-ish scale that fits
#: counts (0–10k) and simulated latencies (fractional seconds) alike.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 5000.0, 10000.0,
)


@dataclass(slots=True)
class Counter:
    """Monotonically increasing count."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative: counters only go up).

        Raises:
            ConfigError: on a negative increment.
        """
        if amount < 0:
            raise ConfigError(f"counter {self.name} cannot decrease")
        self.value += amount


@dataclass(slots=True)
class Gauge:
    """Last-observed value."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


@dataclass(slots=True)
class Histogram:
    """Fixed-boundary histogram with deterministic percentile estimates.

    Percentiles are read from the bucket boundaries (the upper edge of the
    bucket containing the target rank), so ``p50/p95/p99`` are stable
    across runs whenever the recorded values are.
    """

    name: str
    boundaries: tuple[float, ...] = DEFAULT_BUCKETS
    counts: list[int] = field(default_factory=list)
    total: int = 0
    sum: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")

    def __post_init__(self) -> None:
        if list(self.boundaries) != sorted(self.boundaries):
            raise ConfigError(
                f"histogram {self.name}: boundaries must be sorted"
            )
        if not self.counts:
            # one bucket per boundary plus the +Inf overflow bucket.
            self.counts = [0] * (len(self.boundaries) + 1)

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.boundaries, value)] += 1
        self.total += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def percentile(self, q: float) -> float:
        """Bucket-boundary estimate of the ``q``-th percentile.

        Raises:
            ConfigError: when ``q`` is outside [0, 100] or no values were
                observed.
        """
        if not 0.0 <= q <= 100.0:
            raise ConfigError(f"percentile must lie in [0, 100], got {q}")
        if self.total == 0:
            raise ConfigError(f"histogram {self.name} has no observations")
        rank = q / 100.0 * self.total
        seen = 0
        for i, count in enumerate(self.counts):
            seen += count
            if seen >= rank and count:
                if i < len(self.boundaries):
                    return self.boundaries[i]
                return self.max  # overflow bucket: report the true max
        return self.max

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's observations into this one.

        Bucket counts add elementwise, so merging per-worker histograms
        in submit order reproduces the sequential run's snapshot.

        Raises:
            ConfigError: when the bucket boundaries differ.
        """
        if other.boundaries != self.boundaries:
            raise ConfigError(
                f"histogram {self.name}: cannot merge histograms with "
                f"different boundaries"
            )
        for i, count in enumerate(other.counts):
            self.counts[i] += count
        self.total += other.total
        self.sum += other.sum
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max

    def snapshot(self) -> dict[str, float]:  # repro-lint: ignore[EXC001] — percentile() cannot raise here: total > 0 is guarded and q is constant
        if self.total == 0:
            return {"count": 0}
        return {
            "count": self.total,
            "sum": round(self.sum, 9),
            "min": round(self.min, 9),
            "max": round(self.max, 9),
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
            "p99": self.percentile(99.0),
        }


class MetricsRegistry:
    """Named instruments, created on first use and shared thereafter."""

    enabled = True

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def histogram(
        self, name: str, boundaries: Sequence[float] | None = None
    ) -> Histogram:
        """Get-or-create; ``boundaries`` only applies on first creation.

        Raises:
            ConfigError: when re-registering with different boundaries.
        """
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(
                name,
                tuple(boundaries) if boundaries is not None else DEFAULT_BUCKETS,
            )
        elif boundaries is not None and tuple(boundaries) != histogram.boundaries:
            raise ConfigError(
                f"histogram {name} already registered with different "
                f"boundaries"
            )
        return histogram

    def names(self) -> list[str]:
        """Every registered instrument name, sorted."""
        return sorted(
            set(self._counters) | set(self._gauges) | set(self._histograms)
        )

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's instruments into this one.

        This is the worker-boundary propagation path of the exec engine:
        each worker records into a private registry, and the engine
        merges them back in submit order.  Counters add, gauges take the
        incoming value (submit-order last-write-wins), histograms combine
        bucket counts.

        Raises:
            ConfigError: when a histogram exists in both registries with
                different bucket boundaries.
        """
        for name in sorted(other._counters):
            self.counter(name).inc(other._counters[name].value)
        for name in sorted(other._gauges):
            self.gauge(name).set(other._gauges[name].value)
        for name in sorted(other._histograms):
            source = other._histograms[name]
            self.histogram(name, source.boundaries).merge(source)

    def snapshot(self) -> dict[str, Any]:
        """Deterministic JSON-ready export of every instrument."""
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value
                for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].snapshot()
                for name in sorted(self._histograms)
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.snapshot(), sort_keys=True, indent=2)


class _NoopInstrument:
    """Counter/gauge/histogram stand-in that swallows every write."""

    __slots__ = ()

    value = 0.0
    total = 0

    def inc(self, amount: float = 1.0) -> None:
        return None

    def set(self, value: float) -> None:
        return None

    def observe(self, value: float) -> None:
        return None


_NOOP_INSTRUMENT = _NoopInstrument()


class NoopMetrics:
    """Disabled registry: one shared inert instrument for every name."""

    enabled = False

    def counter(self, name: str) -> _NoopInstrument:
        return _NOOP_INSTRUMENT

    def gauge(self, name: str) -> _NoopInstrument:
        return _NOOP_INSTRUMENT

    def histogram(
        self, name: str, boundaries: Sequence[float] | None = None
    ) -> _NoopInstrument:
        return _NOOP_INSTRUMENT

    def names(self) -> list[str]:
        return []

    def snapshot(self) -> dict[str, Any]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def to_json(self) -> str:
        return json.dumps(self.snapshot(), sort_keys=True, indent=2)


NOOP_METRICS = NoopMetrics()


def format_metrics(snapshot: dict[str, Any]) -> str:
    """Render a snapshot as the aligned summary table reports embed."""
    rows: list[tuple[str, str, str]] = []
    for name, value in snapshot.get("counters", {}).items():
        rows.append((name, "counter", _num(value)))
    for name, value in snapshot.get("gauges", {}).items():
        rows.append((name, "gauge", _num(value)))
    for name, stats in snapshot.get("histograms", {}).items():
        if stats.get("count", 0) == 0:
            rows.append((name, "histogram", "count=0"))
            continue
        rows.append((
            name, "histogram",
            f"count={stats['count']} p50={_num(stats['p50'])} "
            f"p95={_num(stats['p95'])} p99={_num(stats['p99'])} "
            f"max={_num(stats['max'])}",
        ))
    if not rows:
        return "(no metrics recorded)"
    rows.sort()
    name_w = max(len(r[0]) for r in rows)
    kind_w = max(len(r[1]) for r in rows)
    return "\n".join(
        f"{name.ljust(name_w)}  {kind.ljust(kind_w)}  {value}"
        for name, kind, value in rows
    )


def _num(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return f"{value:.6g}"
