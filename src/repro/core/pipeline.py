"""The MultiRAG pipeline (paper §III, Fig. 3).

:class:`MultiRAG` wires the three modules together:

1. **Knowledge construction** (:meth:`ingest`): multi-source fusion through
   the format adapters, LLM extraction for unstructured text, and
   construction of the multi-source line graph (MKA).
2. **Retrieval with multi-level confidence** (:meth:`query`): logic-form
   generation, O(1) candidate lookup in the MLG (or an honest linear scan
   of the raw knowledge graph when MKA is ablated), graph-level and
   node-level confidence computing (MCC), and historical-credibility
   updates from consensus feedback.
3. **Trustworthy generation**: surviving evidence is ranked and handed to
   the LLM to synthesize the final grounded answer.

The combination of :meth:`query` steps is exactly the MKLGP algorithm
(Algorithm 2); see :mod:`repro.core.mklgp` for the annotated procedure.
"""

from __future__ import annotations

import json
import time
import warnings
from collections import defaultdict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

import repro.perf as perf
from repro.adapters.base import RawSource
from repro.adapters.fusion import DataFusionEngine, FusionResult
from repro.confidence.calibration import calibrate_history
from repro.confidence.history import HistoryStore
from repro.confidence.mcc import MCCResult, mcc
from repro.confidence.node_level import NodeScorer
from repro.core.answer import RankedValue, RetrievalResult
from repro.core.config import MultiRAGConfig
from repro.core.logic_form import LogicForm, generate_logic_form
from repro.datasets.schema import MultiSourceDataset
from repro.errors import StateError
from repro.exec import ExecutionPlan, Query, as_query, execute
from repro.kg.shard import shard_of
from repro.kg.triple import Provenance, Triple
from repro.lint.contracts import check_mcc_result, check_mlg, check_ranked_answers
from repro.linegraph.homologous import HomologousGroup, HomologousNode
from repro.linegraph.mlg import MultiSourceLineGraph
from repro.llm.base import LLMClient
from repro.llm.gateway import LLMGateway, build_gateway
from repro.llm.generation import EvidenceItem, generate_trustworthy_answer
from repro.llm.simulated import SimulatedLLM
from repro.metrics import f1_score, mean
from repro.obs.context import NOOP, Observability
from repro.obs.log import get_logger
from repro.obs.metrics import format_metrics
from repro.retrieval.chunking import SentenceChunker
from repro.retrieval.retriever import MultiSourceRetriever
from repro.san import RaceSanitizer
from repro.snapshot import (
    SnapshotStore,
    SourceDescriptor,
    describe_source,
    fingerprint_from_descriptors,
)
from repro.util import normalize_value


logger = get_logger(__name__)


@dataclass(slots=True)
class BuildReport:
    """What :meth:`MultiRAG.ingest` built and how long it took."""

    construction_time_s: float
    num_triples: int
    num_entities: int
    num_chunks: int
    extraction_calls: int
    mlg_stats: dict[str, float] = field(default_factory=dict)
    #: True when the state came from a snapshot warm load instead of a
    #: cold build (``extraction_calls`` then reports the *original*
    #: build's extraction count, not work done by this process).
    loaded_from_snapshot: bool = False
    #: fingerprint of the snapshot loaded or saved ("" without a store).
    snapshot_fingerprint: str = ""
    #: delta layers replayed on top of the base during a warm load
    #: (0 for a direct base load or a cold build).
    snapshot_layers: int = 0


@dataclass(slots=True)
class EvaluationReport:
    """Aggregate outcome of :meth:`MultiRAG.evaluate`."""

    per_query: list[tuple[str, float]] = field(default_factory=list)
    mean_f1: float = 0.0
    query_time_s: float = 0.0
    prompt_time_s: float = 0.0
    #: metrics snapshot of the run (empty unless the pipeline's metrics
    #: registry is enabled); see :func:`repro.obs.metrics.format_metrics`.
    metrics: dict[str, Any] = field(default_factory=dict)

    def worst(self, n: int = 5) -> list[tuple[str, float]]:
        """The ``n`` lowest-scoring queries (for error triage).

        Score ties break on query id so the triage list is stable across
        runs regardless of evaluation order.
        """
        return sorted(self.per_query, key=lambda pair: (pair[1], pair[0]))[:n]

    def metrics_table(self) -> str:
        """Aligned text rendering of :attr:`metrics` ("" when empty)."""
        if not self.metrics:
            return ""
        return format_metrics(self.metrics)

    def to_json(self, drop_timing: bool = False) -> str:
        """Canonical JSON form of the report (sorted keys).

        ``drop_timing=True`` strips :attr:`query_time_s` — the report's
        only wall-clock field — so two runs of the same seeded evaluation
        compare byte-identically regardless of worker count (the
        determinism contract of :mod:`repro.exec`).  ``prompt_time_s``
        is simulated and deterministic, so it stays.
        """
        data: dict[str, Any] = {
            "per_query": [[qid, score] for qid, score in self.per_query],
            "mean_f1": self.mean_f1,
            "prompt_time_s": round(self.prompt_time_s, 6),
            "metrics": self.metrics,
        }
        if not drop_timing:
            data["query_time_s"] = self.query_time_s
        return json.dumps(data, sort_keys=True)


class MultiRAG:
    """Knowledge-guided multi-source RAG with hallucination mitigation."""

    def __init__(
        self,
        config: MultiRAGConfig | None = None,
        llm: LLMClient | None = None,
        obs: Observability | None = None,
        snapshot: "SnapshotStore | str | Path | None" = None,
    ) -> None:
        self.config = config or MultiRAGConfig()
        self.obs = obs if obs is not None else NOOP
        self.snapshots = self._as_store(snapshot)
        base_llm = llm or SimulatedLLM(
            seed=self.config.seed,
            extraction_noise=self.config.extraction_noise,
        )
        routing = self.config.routing_policy()
        if routing is not None and not isinstance(base_llm, LLMGateway):
            # Wrap the client in the stage-routing gateway.  Backends are
            # derived *from* the configured client (same seed, noise and
            # knowledge), so routing redirects cost models and failure
            # behavior, never completion text.
            base_llm = build_gateway(base_llm, routing, obs=self.obs)
        self.llm = base_llm
        self.history = HistoryStore(
            init_entities=self.config.history_init_entities
        )
        self.engine = DataFusionEngine(
            llm=self.llm,
            chunker=SentenceChunker(max_tokens=self.config.chunk_max_tokens),
            standardize=True,
            obs=self.obs,
        )
        self.retriever = MultiSourceRetriever(obs=self.obs)
        self.fusion: FusionResult | None = None
        self.mlg: MultiSourceLineGraph | None = None
        self.scorer: NodeScorer | None = None
        self._entity_by_norm: dict[str, str] = {}
        #: descriptors of the ingested corpus, in source order — the
        #: operands of the layer-chain fingerprint algebra
        #: (``add_source`` appends one and re-fingerprints).
        self._source_descriptors: list[SourceDescriptor] = []
        #: fingerprint of the store artifact matching the current state
        #: ("" when no store was involved in the last ingest).
        self._snapshot_fingerprint: str = ""
        #: the store the last ingest resolved (constructor store or the
        #: per-call override) — where ``add_source`` appends delta layers.
        self._active_store: SnapshotStore | None = None
        #: runtime race sanitizer (:mod:`repro.san`); None unless
        #: ``config.sanitize`` — the disabled path costs one check per
        #: worker view.
        self.san: RaceSanitizer | None = (
            RaceSanitizer() if self.config.sanitize else None
        )

    @staticmethod
    def _as_store(
        snapshot: "SnapshotStore | str | Path | None",
    ) -> SnapshotStore | None:
        if snapshot is None or isinstance(snapshot, SnapshotStore):
            return snapshot
        return SnapshotStore(snapshot)

    @classmethod
    def from_config(
        cls,
        config: MultiRAGConfig | None = None,
        *,
        llm: LLMClient | None = None,
        obs: Observability | None = None,
        snapshot: "SnapshotStore | str | Path | None" = None,
    ) -> "MultiRAG":
        """The canonical way to build a pipeline from a config.

        The CLI, the eval harness and the tests all construct pipelines;
        routing them through one classmethod keeps the construction
        recipe (seeded simulated LLM, noise from the config) in a single
        place.  ``llm`` and ``obs`` override the defaults when a caller
        brings its own.  ``snapshot`` (a store or a directory path)
        enables the persistent-snapshot warm path for :meth:`ingest`.
        """
        return cls(config=config, llm=llm, obs=obs, snapshot=snapshot)

    # ------------------------------------------------------------------
    # knowledge construction (MKA)
    # ------------------------------------------------------------------
    def ingest(
        self,
        sources: list[RawSource],
        *,
        snapshot: "SnapshotStore | str | Path | None" = None,
        jobs: int | None = None,
        batch_size: int | None = None,
        plan: ExecutionPlan | None = None,
    ) -> BuildReport:
        """Fuse ``sources`` and build the MLG index (when MKA is enabled).

        With a snapshot store configured (via ``snapshot`` here, or on the
        constructor), the sources/config/LLM fingerprint is checked first:
        on a hit the complete ingested state is warm-loaded from disk —
        no extraction, no index builds — and on a miss the cold build
        runs and its result is saved for the next process.

        ``jobs`` / ``batch_size`` / ``plan`` parallelize the extraction
        phase of a cold build across the graph's shards (``plan`` wins
        when given; otherwise ``jobs`` or the ``REPRO_EXEC_WORKERS`` /
        ``REPRO_EXEC_BATCH_SIZE`` environment overrides).  The result is
        byte-identical to the sequential build — parallelism changes
        wall-clock time, never the fingerprint or any ranking.

        Raises:
            UnknownFormatError: if a source declares a format with no adapter.
            ExtractionError: if LLM extraction fails on an unstructured chunk.
            EntityNotFoundError: if fusion meets a dangling entity id.
            ContractViolation: if ``debug_contracts`` finds a malformed MLG.
            SnapshotError: if a matching snapshot is corrupt, or a fresh
                snapshot cannot be written to the store.
            ConfigError: if ``jobs`` / ``batch_size`` (or their
                environment overrides) are not positive integers.
            GraphError: if the configured shard count is invalid.
        """
        perf.clear_caches()
        if plan is None and (
            jobs is not None or batch_size is not None
            or ExecutionPlan.env_requested()
        ):
            plan = ExecutionPlan.resolve(jobs=jobs, batch_size=batch_size)
        store = self._as_store(snapshot) or self.snapshots
        descriptors = [describe_source(raw) for raw in sources]
        if store is None:
            report = self._ingest_cold(sources, plan=plan)
            self._source_descriptors = descriptors
            self._snapshot_fingerprint = ""
            self._active_store = None
            return report
        fingerprint = fingerprint_from_descriptors(
            self.config, descriptors, self.llm
        )
        if store.has(fingerprint):
            report = self._ingest_warm(
                store, fingerprint, num_sources=len(sources)
            )
            self._source_descriptors = descriptors
            self._snapshot_fingerprint = fingerprint
            self._active_store = store
            return report
        self.obs.metrics.counter("snapshot.misses").inc()
        report = self._ingest_cold(sources, plan=plan)
        assert self.fusion is not None
        llm_cache = (
            self.llm.export_cache()
            if hasattr(self.llm, "export_cache") else None
        )
        with self.obs.tracer.span("snapshot.save", fingerprint=fingerprint):
            store.save(
                fingerprint,
                fusion=self.fusion,
                retriever=self.retriever,
                mlg=self.mlg,
                history=self.history,
                llm_cache=llm_cache,
                sources=descriptors,
            )
        self.obs.metrics.counter("snapshot.saves").inc()
        report.snapshot_fingerprint = fingerprint
        self._source_descriptors = descriptors
        self._snapshot_fingerprint = fingerprint
        self._active_store = store
        return report

    def _ingest_warm(
        self, store: SnapshotStore, fingerprint: str, num_sources: int
    ) -> BuildReport:
        """Restore the full ingested state from a fingerprint-matched
        snapshot — the fast path that skips extraction and index builds.

        Raises:
            SnapshotError: if the artifact is corrupt or incomplete.
            ContractViolation: if ``debug_contracts`` finds a malformed MLG.
        """
        start = time.perf_counter()
        with self.obs.tracer.span(
            "ingest.snapshot_load", fingerprint=fingerprint
        ) as span:
            state = store.load(fingerprint, obs=self.obs)
            self.fusion = state.fusion
            self.retriever = state.retriever
            self.mlg = state.mlg
            self.history = state.history
            if state.llm_cache is not None and hasattr(self.llm, "import_cache"):
                self.llm.import_cache(state.llm_cache)
            graph = self.fusion.graph
            self.scorer = NodeScorer(
                graph=graph,
                llm=self.llm,
                history=self.history,
                alpha=self.config.alpha,
                beta=self.config.beta,
                obs=self.obs,
            )
            self._entity_by_norm = {}
            for triple in graph.triples():
                self._entity_by_norm.setdefault(
                    normalize_value(triple.subject), triple.subject
                )
            if self.config.debug_contracts and self.mlg is not None:
                check_mlg(self.mlg)
            if span.enabled:
                span.set(
                    num_triples=len(graph),
                    num_entities=graph.num_entities(),
                    num_chunks=len(self.fusion.chunks),
                )
        metrics = self.obs.metrics
        metrics.counter("snapshot.loads").inc()
        if state.num_layers:
            metrics.counter("snapshot.layer_loads").inc(state.num_layers)
        metrics.counter("pipeline.ingested_sources").inc(num_sources)
        metrics.gauge("pipeline.triples").set(len(graph))
        metrics.gauge("pipeline.entities").set(graph.num_entities())
        metrics.gauge("pipeline.chunks").set(len(self.fusion.chunks))
        logger.info(
            "ingest warm-loaded snapshot %s: %d triples, %d entities",
            fingerprint[:12], len(graph), graph.num_entities(),
        )
        return BuildReport(
            construction_time_s=time.perf_counter() - start,
            num_triples=len(graph),
            num_entities=graph.num_entities(),
            num_chunks=len(self.fusion.chunks),
            extraction_calls=self.fusion.extraction_calls,
            # the manifest's stats, not self.mlg.stats(): recomputing them
            # would force the restored MLG's lazy line-graph build
            mlg_stats=state.mlg_stats,
            loaded_from_snapshot=True,
            snapshot_fingerprint=fingerprint,
            snapshot_layers=state.num_layers,
        )

    def _ingest_cold(
        self,
        sources: list[RawSource],
        plan: ExecutionPlan | None = None,
    ) -> BuildReport:
        """The full knowledge-construction build (no snapshot involved).

        ``plan`` (when given, with ``workers > 1``) parallelizes the
        extraction phase across the sharded graph's partitions; the fused
        result is byte-identical to the sequential build.

        Raises:
            UnknownFormatError: if a source declares a format with no adapter.
            ExtractionError: if LLM extraction fails on an unstructured chunk.
            EntityNotFoundError: if fusion meets a dangling entity id.
            ContractViolation: if ``debug_contracts`` finds a malformed MLG.
        """
        start = time.perf_counter()
        usage_before = self.llm.meter.checkpoint()
        with self.obs.tracer.span("ingest", num_sources=len(sources)) as span:
            self.fusion = self.engine.fuse(
                sources, plan=plan, n_shards=self.config.n_shards
            )
            graph = self.fusion.graph
            self.retriever = MultiSourceRetriever(obs=self.obs)
            self.retriever.add_chunks(self.fusion.chunks)
            self.retriever.build()
            if self.config.enable_mka:
                with self.obs.tracer.span("linegraph.build") as mlg_span:
                    self.mlg = MultiSourceLineGraph(
                        graph, min_sources=self.config.min_sources
                    )
                    if self.config.update_history:
                        # Construction-time consistency feedback
                        # (Definition 5): every homologous group seeds its
                        # sources' historical credibility before the first
                        # query.
                        calibrate_history(self.mlg.groups, self.history)
                    if mlg_span.enabled:
                        # build_time_s is wall clock — spans carry wall
                        # time only in their timing fields, never attrs.
                        mlg_span.set(**{
                            k: v for k, v in self.mlg.stats().items()
                            if k != "build_time_s"
                        })
            else:
                self.mlg = None
            self.scorer = NodeScorer(
                graph=graph,
                llm=self.llm,
                history=self.history,
                alpha=self.config.alpha,
                beta=self.config.beta,
                obs=self.obs,
            )
            self._entity_by_norm = {}
            for triple in graph.triples():
                self._entity_by_norm.setdefault(normalize_value(triple.subject), triple.subject)
            if self.config.debug_contracts and self.mlg is not None:
                check_mlg(self.mlg)
            if span.enabled:
                span.set(
                    num_triples=len(graph),
                    num_entities=graph.num_entities(),
                    num_chunks=len(self.fusion.chunks),
                    extraction_calls=self.fusion.extraction_calls,
                    **self.llm.meter.delta(usage_before),
                )
        metrics = self.obs.metrics
        metrics.counter("pipeline.ingested_sources").inc(len(sources))
        metrics.gauge("pipeline.triples").set(len(graph))
        metrics.gauge("pipeline.entities").set(graph.num_entities())
        metrics.gauge("pipeline.chunks").set(len(self.fusion.chunks))
        logger.info(
            "ingest complete: %d triples, %d entities, mlg=%s",
            len(graph), graph.num_entities(),
            self.mlg.stats() if self.mlg else "disabled",
        )
        return BuildReport(
            construction_time_s=time.perf_counter() - start,
            num_triples=len(graph),
            num_entities=graph.num_entities(),
            num_chunks=len(self.fusion.chunks),
            extraction_calls=self.fusion.extraction_calls,
            mlg_stats=self.mlg.stats() if self.mlg else {},
        )

    def add_source(self, raw: RawSource) -> dict[str, int]:
        """Incrementally ingest one more source into a built pipeline.

        Parses (and, for text, LLM-extracts) the new source, standardizes
        its mentions, folds the new claims into the knowledge graph and —
        when MKA is enabled — into the MLG via its incremental update,
        seeding the new groups' consistency feedback into the history.
        Returns the MLG update counts (``joined`` / ``promoted`` /
        ``isolated``) plus ``claims_added``.

        When the pipeline is backed by a snapshot store (the preceding
        :meth:`ingest` saved or warm-loaded a fingerprint there), the
        increment is persisted as a *delta layer*: a content-addressed
        child snapshot holding only this source's descriptor, claims and
        chunks, chained to the current fingerprint.  A later
        ``ingest(base_sources + [raw])`` fingerprint-hits the chain and
        warm-loads base + layers instead of re-extracting anything.  The
        work is proportional to the new source, never the whole corpus:
        shard-aware caches are invalidated only for the partitions the
        new claims landed in.

        Raises:
            StateError: if called before :meth:`ingest`.
            UnknownFormatError: if the source declares a format with no
                adapter.
            ExtractionError: if LLM extraction fails on a text chunk.
            SnapshotError: if the delta layer cannot be written to the
                backing store.
            GraphError: never in practice — shard-aware cache
                invalidation re-validates the graph's shard count.
        """
        from repro.adapters.base import get_adapter
        from repro.kg.triple import Entity

        self._require_ingested()
        assert self.fusion is not None
        output = get_adapter(raw.fmt).parse(raw)
        triples = list(output.triples)
        extraction_calls = 0

        new_chunks = []
        for doc_id, text in output.documents:
            chunks = self.engine.chunker.chunk(
                text, source_id=raw.source_id, doc_id=doc_id
            )
            new_chunks.extend(chunks)
            if raw.fmt == "text":
                for chunk in chunks:
                    provenance = Provenance(
                        source_id=raw.source_id, domain=raw.domain,
                        fmt=raw.fmt, chunk_id=chunk.chunk_id,
                    )
                    extraction = self.engine.extractor.extract(
                        chunk.text, provenance
                    )
                    triples.extend(extraction.triples)
                    extraction_calls += 1

        # Standardize the new mentions the same way ingest() did.
        mentions = sorted({m for t in triples for m in (t.subject, t.obj)})
        mapping: dict[str, str] = {}
        for i in range(0, len(mentions), 64):
            mapping.update(self.llm.standardize("", mentions[i:i + 64]))

        graph = self.fusion.graph
        added: list[Triple] = []
        for triple in triples:
            standardized = Triple(
                mapping.get(triple.subject, triple.subject),
                triple.predicate,
                mapping.get(triple.obj, triple.obj),
                triple.provenance,
            )
            if graph.add_triple(standardized):
                added.append(standardized)
                if not graph.has_entity(standardized.subject):
                    graph.add_entity(
                        Entity(eid=standardized.subject, name=standardized.subject)
                    )
                graph.entity(standardized.subject).add_attribute(
                    standardized.predicate, standardized.obj
                )
                self._entity_by_norm.setdefault(
                    normalize_value(standardized.subject), standardized.subject
                )

        self.fusion.records.append(output.record)
        self.fusion.chunks.extend(new_chunks)
        self.fusion.extraction_calls += extraction_calls
        self.retriever.add_chunks(new_chunks)
        self.retriever.build()

        stats = {"claims_added": len(added), "joined": 0, "promoted": 0,
                 "isolated": 0}
        if self.mlg is not None:
            stats.update(self.mlg.add_triples(added))
            if self.config.update_history and added:
                affected_keys = {t.key() for t in added}
                affected_groups = [
                    g for g in self.mlg.groups if g.key in affected_keys
                ]
                calibrate_history(affected_groups, self.history, rounds=1)
        # Degree statistics changed; rebuild the scorer's normalization.
        self.scorer = NodeScorer(
            graph=graph, llm=self.llm, history=self.history,
            alpha=self.config.alpha, beta=self.config.beta, obs=self.obs,
        )
        # Invalidate derived caches last, and only for the partitions the
        # new claims actually landed in (a full clear when unsharded).
        n_shards = getattr(graph, "n_shards", 1)
        if n_shards > 1:
            perf.clear_caches(
                shards={shard_of(t.subject, n_shards) for t in added}
            )
        else:
            perf.clear_caches()

        if self._active_store is not None and self._snapshot_fingerprint:
            descriptor = describe_source(raw)
            chain = self._source_descriptors + [descriptor]
            new_fp = fingerprint_from_descriptors(
                self.config, chain, self.llm
            )
            with self.obs.tracer.span(
                "snapshot.save_layer", fingerprint=new_fp
            ):
                self._active_store.save_layer(
                    new_fp,
                    parent=self._snapshot_fingerprint,
                    descriptor=descriptor,
                    record=output.record,
                    triples=added,
                    chunks=new_chunks,
                    history=self.history,
                    extraction_calls=extraction_calls,
                    mlg_update={
                        k: stats[k]
                        for k in ("joined", "promoted", "isolated")
                    },
                    mlg_stats=self.mlg.stats() if self.mlg else {},
                )
            self._source_descriptors = chain
            self._snapshot_fingerprint = new_fp
            self.obs.metrics.counter("snapshot.layer_saves").inc()
        return stats

    # ------------------------------------------------------------------
    # retrieval (MKLGP)
    # ------------------------------------------------------------------
    def run(self, query: Query) -> RetrievalResult:
        """Answer one :class:`~repro.exec.query.Query`.

        The unified entrypoint behind the historical ``query`` /
        ``query_key`` / ``query_chain`` trio: dispatches on
        ``query.kind`` (``text`` → full MKLGP, ``key`` → structured
        claim-key lookup, ``chain`` → multi-hop with bridge entities).
        ``Query`` is also the unit :meth:`run_batch` schedules.

        Raises:
            StateError: if called before :meth:`ingest`.
            ContractViolation: if ``debug_contracts`` finds an invalid MCC
                result or answer ranking.
        """
        if query.kind == "key":
            return self._run_text(f"{query.entity} | {query.attribute}")
        if query.kind == "chain":
            return self._run_chain(query.hops)
        return self._run_text(query.question)

    def query(self, question: str) -> RetrievalResult:
        """Deprecated shim: use ``run(Query.text(question))``.

        Raises:
            StateError: if called before :meth:`ingest`.
            ContractViolation: if ``debug_contracts`` finds an invalid MCC
                result or answer ranking.
        """
        warnings.warn(
            "MultiRAG.query() is deprecated; use "
            "MultiRAG.run(Query.text(question))",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._run_text(question)

    def _run_text(self, question: str) -> RetrievalResult:
        """Answer ``question`` through the full MKLGP flow.

        Raises:
            StateError: if called before :meth:`ingest`.
            ContractViolation: if ``debug_contracts`` finds an invalid MCC
                result or answer ranking.
        """
        self._require_ingested()
        start = time.perf_counter()
        prompt_before = self.llm.meter.simulated_latency_s
        usage_before = self.llm.meter.checkpoint()
        audit_mark = self.obs.audit.mark()

        with self.obs.tracer.span("mklgp") as span:
            logic_form = generate_logic_form(question)
            result = RetrievalResult(query=question)
            result.trace.append(f"logic_form: {logic_form.intent}")

            if logic_form.is_structured:
                entity = self._resolve_entity(logic_form.entity or "")
                if entity is None:
                    result.trace.append("entity: unresolved")
                    candidates: list[Triple] = []
                else:
                    result.trace.append(f"entity: {entity}")
                    candidates = self._candidates(entity, logic_form.attribute or "")
            else:
                candidates = self._open_candidates(logic_form)

            candidates = self._apply_freshness(candidates)
            result.candidates_considered = len(candidates)
            result.stage_values["before_subgraph_filtering"] = [t.obj for t in candidates]

            if candidates:
                group = self._as_group(candidates)
                mcc_result = self._run_mcc([group])
                result.mcc = mcc_result
                # After subgraph filtering, before node filtering: fast-path
                # groups have been narrowed to their top consensus nodes, while
                # conflicted groups still carry every member into node-level
                # scrutiny — i.e. exactly the nodes MCC assessed.
                result.stage_values["before_node_filtering"] = [
                    a.value
                    for d in mcc_result.decisions
                    for a in (d.accepted + d.rejected)
                ]
                result.answers = self._rank_answers(mcc_result)
                result.stage_values["after_node_filtering"] = [
                    a.value for a in result.answers
                ]
                if self.config.debug_contracts:
                    check_mcc_result(mcc_result)
                    check_ranked_answers(result.answers)
                if self.config.update_history:
                    self._update_history(candidates, result)
            else:
                result.stage_values["before_node_filtering"] = []
                result.stage_values["after_node_filtering"] = []

            with self.obs.tracer.span("generate") as gen_span:
                gen_before = self.llm.meter.checkpoint()
                result.generated_text = self._generate(question, result)
                if gen_span.enabled:
                    gen_span.set(
                        num_answers=len(result.answers),
                        **self.llm.meter.delta(gen_before),
                    )
            if span.enabled:
                span.set(
                    intent=logic_form.intent,
                    num_candidates=result.candidates_considered,
                    num_answers=len(result.answers),
                    **self.llm.meter.delta(usage_before),
                )

        result.audit = self.obs.audit.since(audit_mark)
        metrics = self.obs.metrics
        metrics.counter("pipeline.queries").inc()
        metrics.histogram("pipeline.candidates").observe(
            result.candidates_considered
        )
        metrics.histogram("pipeline.answers").observe(len(result.answers))
        result.prompt_time_s = self.llm.meter.simulated_latency_s - prompt_before
        result.query_time_s = time.perf_counter() - start
        logger.debug(
            "query %r: %d candidates -> %d answers in %.4fs (+%.3fs LLM)",
            question, result.candidates_considered, len(result.answers),
            result.query_time_s, result.prompt_time_s,
        )
        return result

    def query_key(self, entity: str, attribute: str) -> RetrievalResult:
        """Deprecated shim: use ``run(Query.key(entity, attribute))``.

        Raises:
            StateError: if called before :meth:`ingest`.
            ContractViolation: if ``debug_contracts`` finds an invalid MCC
                result or answer ranking.
        """
        warnings.warn(
            "MultiRAG.query_key() is deprecated; use "
            "MultiRAG.run(Query.key(entity, attribute))",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._run_text(f"{entity} | {attribute}")

    def query_chain(self, hops: list[tuple[str | None, str]]) -> RetrievalResult:
        """Deprecated shim: use ``run(Query.chain(hops))``.

        Raises:
            StateError: if called before :meth:`ingest`.
            ContractViolation: if ``debug_contracts`` finds an invalid MCC
                result or answer ranking.
        """
        warnings.warn(
            "MultiRAG.query_chain() is deprecated; use "
            "MultiRAG.run(Query.chain(hops))",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._run_chain(tuple(hops))

    def _run_chain(self, hops: Sequence[tuple[str | None, str]]) -> RetrievalResult:
        """Multi-hop lookup: each hop is ``(entity_or_None, attribute)``.

        ``None`` as a hop's entity means "the top answer of the previous
        hop" — the bridge-entity pattern of HotpotQA/2Wiki questions.
        The returned result carries the final hop's answers; traces of all
        hops are concatenated.

        Raises:
            StateError: if called before :meth:`ingest`.
            ContractViolation: if ``debug_contracts`` finds an invalid MCC
                result or answer ranking.
        """
        self._require_ingested()
        result: RetrievalResult | None = None
        trace: list[str] = []
        total_qt = 0.0
        total_pt = 0.0
        for entity, attribute in hops:  # repro-lint: loop-bound[H] — one retrieval round per query hop
            if entity is None:
                if result is None or not result.answers:
                    empty = RetrievalResult(query=f"? | {attribute}")
                    empty.trace = trace + ["chain broken: no bridge answer"]
                    return empty
                entity = result.answers[0].value
            result = self._run_text(f"{entity} | {attribute}")
            trace.extend(result.trace)
            total_qt += result.query_time_s
            total_pt += result.prompt_time_s
        assert result is not None
        result.trace = trace  # repro-lint: ignore[CONC001] — result is the task-local record _run_text just constructed
        result.query_time_s = total_qt  # repro-lint: ignore[CONC001] — task-local result record (see above)
        result.prompt_time_s = total_pt  # repro-lint: ignore[CONC001] — task-local result record (see above)
        return result

    # ------------------------------------------------------------------
    # concurrent batch execution
    # ------------------------------------------------------------------
    def worker_view(self) -> "MultiRAG":
        """A read-only pipeline view for one exec worker task.

        Shares the immutable substrate — config, fused graph, MLG, entity
        index, history, consensus engine — by reference, but binds a
        fresh observability bundle, a meter-isolated LLM clone and a
        per-view scorer so concurrent tasks never write shared state.
        The parent folds telemetry back with :meth:`absorb_view`.

        Raises:
            StateError: if called before :meth:`ingest`.
        """
        self._require_ingested()
        assert self.fusion is not None and self.scorer is not None
        view = object.__new__(MultiRAG)
        view.config = self.config
        view.snapshots = self.snapshots
        view.fusion = self.fusion
        view.mlg = self.mlg
        view.history = self.history
        view.engine = self.engine
        view._entity_by_norm = self._entity_by_norm
        # Snapshot bookkeeping is read-only on the query path; views
        # mirror it so they answer like the parent (worker views never
        # add_source, so they never write a layer).
        view._source_descriptors = self._source_descriptors
        view._snapshot_fingerprint = self._snapshot_fingerprint
        view._active_store = self._active_store
        view.obs = self.obs.split()
        view.llm = self.llm.split(obs=view.obs)
        view.retriever = self.retriever.with_obs(view.obs)
        view.scorer = NodeScorer(
            self.fusion.graph,
            view.llm,
            self.history,
            alpha=self.config.alpha,
            beta=self.config.beta,
            obs=view.obs,
        )
        view.san = None
        if self.san is not None:
            self._sanitize_view(view)
        return view

    def _sanitize_view(self, view: "MultiRAG") -> None:
        """Arm a worker view with the sanitizer's recording proxies.

        Each shared-by-reference attribute (and the shared graph and
        history handed to the per-view scorer) is wrapped in an
        :class:`~repro.san.proxy.AccessProxy` under a fresh worker id;
        the proxies forward every operation unchanged, so sanitized runs
        stay byte-identical.  Attributes the view protocol failed to
        mirror (e.g. state added by a subclass) are recorded as coverage
        gaps — the runtime twin of the static CONC002 rule.  ``config``
        stays unwrapped: it is a frozen dataclass with slots, so worker
        writes already raise.
        """
        assert self.san is not None
        assert self.fusion is not None
        san = self.san
        worker = san.next_worker()
        view.fusion = san.wrap(self.fusion, worker, "fusion")
        view.mlg = san.wrap(self.mlg, worker, "mlg")
        view.history = san.wrap(self.history, worker, "history")
        view.engine = san.wrap(self.engine, worker, "engine")
        view.snapshots = san.wrap(self.snapshots, worker, "snapshots")
        view._entity_by_norm = san.wrap(
            self._entity_by_norm, worker, "_entity_by_norm"
        )
        view._source_descriptors = san.wrap(
            self._source_descriptors, worker, "_source_descriptors"
        )
        view._active_store = san.wrap(
            self._active_store, worker, "_active_store"
        )
        # _snapshot_fingerprint stays unwrapped: an immutable str, like
        # config — worker rebinds would be local to the view anyway.
        view.scorer = NodeScorer(
            san.wrap(self.fusion.graph, worker, "fusion.graph"),
            view.llm,
            san.wrap(self.history, worker, "history"),
            alpha=self.config.alpha,
            beta=self.config.beta,
            obs=view.obs,
        )
        missing = set(vars(self)) - set(vars(view))
        if missing:
            san.note_coverage_gap(type(self).__name__, missing)

    def absorb_view(self, view: "MultiRAG") -> None:
        """Fold a :meth:`worker_view`'s meter and telemetry back in.

        Routes through :meth:`LLMClient.absorb` so stateful clients (the
        gateway) can also collect worker-side event logs alongside the
        usage merge.

        Raises:
            StateError: if the view's tracer still has an open span.
        """
        self.llm.absorb(view.llm)
        self.obs.absorb(view.obs)

    def run_batch(
        self,
        queries: Sequence[Query],
        *,
        jobs: int | None = None,
        batch_size: int | None = None,
        plan: ExecutionPlan | None = None,
    ) -> list[RetrievalResult]:
        """Run a query batch through the exec engine, in submit order.

        With ``config.update_history`` enabled, queries form a dependency
        chain through the consensus-feedback history, so the batch is
        serialized on this pipeline (identical to a plain ``run`` loop).
        Read-only pipelines fan out over :meth:`worker_view` instances —
        for *every* worker count, so ``jobs=1`` and ``jobs=4`` produce
        byte-identical results and telemetry.

        Raises:
            StateError: if called before :meth:`ingest`.
            ConfigError: if the resolved execution plan is invalid.
            ContractViolation: if ``debug_contracts`` finds an invalid MCC
                result or answer ranking.
        """
        self._require_ingested()
        tasks = list(queries)
        resolved = plan if plan is not None else ExecutionPlan.resolve(
            jobs=jobs, batch_size=batch_size
        )
        if self.config.update_history:
            return execute(
                len(tasks),
                resolved,
                run=lambda _ctx, i: self.run(tasks[i]),
                serialize=True,
            )
        return execute(
            len(tasks),
            resolved,
            context=lambda i: self.worker_view(),
            run=lambda view, i: view.run(tasks[i]),
            merge=lambda view, result, i: self.absorb_view(view),
        )

    def evaluate(
        self,
        queries: "Sequence[Query] | MultiSourceDataset",
        *,
        jobs: int | None = None,
        batch_size: int | None = None,
        plan: ExecutionPlan | None = None,
    ) -> "EvaluationReport":
        """Answer a query batch and score it against gold answers.

        Accepts :class:`~repro.exec.query.Query` objects (or
        QuerySpec-likes, adapted via :func:`~repro.exec.query.as_query`)
        or a whole :class:`~repro.datasets.schema.MultiSourceDataset`.
        Returns per-query F1 plus aggregate statistics.

        Pass ``jobs`` / ``batch_size`` / ``plan`` — or set the
        ``REPRO_EXEC_WORKERS`` environment variable — to dispatch through
        the exec engine; engine runs at any worker count produce
        byte-identical reports (compare with
        ``to_json(drop_timing=True)``).  Without any of those, queries
        run as a plain sequential loop.

        Raises:
            StateError: if called before :meth:`ingest`.
            ConfigError: if a query spec or the execution plan is invalid.
            ContractViolation: if ``debug_contracts`` finds an invalid MCC
                result or answer ranking.
        """
        specs = queries.queries if isinstance(queries, MultiSourceDataset) else queries
        tasks = [as_query(spec) for spec in specs]
        use_engine = (
            jobs is not None
            or batch_size is not None
            or plan is not None
            or ExecutionPlan.env_requested()
        )
        if use_engine:
            results = self.run_batch(
                tasks, jobs=jobs, batch_size=batch_size, plan=plan
            )
        else:
            results = [self.run(task) for task in tasks]
        report = EvaluationReport()
        for task, result in zip(tasks, results):
            predicted = {a.value for a in result.answers}
            score = f1_score(predicted, task.answers or frozenset())
            report.per_query.append((task.qid, score))
            report.query_time_s += result.query_time_s
            report.prompt_time_s += result.prompt_time_s
        report.mean_f1 = 100.0 * mean(s for _, s in report.per_query)
        if self.obs.metrics.enabled:
            report.metrics = self.obs.metrics.snapshot()
        logger.info(
            "evaluated %d queries: mean F1 %.1f%%",
            len(report.per_query), report.mean_f1,
        )
        return report

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _require_ingested(self) -> None:
        if self.fusion is None or self.scorer is None:
            raise StateError("call ingest() before querying")

    def _resolve_entity(self, name: str) -> str | None:
        assert self.fusion is not None
        graph = self.fusion.graph
        if graph.by_subject(name):
            return name
        return self._entity_by_norm.get(normalize_value(name))

    def _candidates(self, entity: str, attribute: str) -> list[Triple]:
        """Candidate claims for a key — O(1) via MLG; without MKA the
        pipeline must fall back to retrieve-and-extract."""
        assert self.fusion is not None
        if self.mlg is not None:
            return self.mlg.candidates(entity, attribute)
        return self._candidates_without_mka(entity, attribute)

    def _candidates_without_mka(self, entity: str, attribute: str) -> list[Triple]:
        """The w/o-MKA ablation path (Table III).

        With no aggregated line graph there is no key index to consult:
        candidates must be recovered the way a plain RAG system recovers
        them — retrieve chunks from every source, read each retrieved
        chunk with the LLM, and keep the statements matching the asked
        key.  This is both expensive (LLM extraction per query — the
        paper's QT blow-up) and lossy (retrieval misses, and per-source
        surface variants are never standardized against each other).
        """
        assert self.fusion is not None
        spoken = attribute.replace("_", " ")
        hits = self.retriever.retrieve_per_source(
            f"{entity} {spoken}", k_per_source=2
        )
        target = normalize_value(entity)
        candidates: list[Triple] = []
        seen: set[tuple[str, str, str, str]] = set()
        for hit in hits:  # repro-lint: loop-bound[2*S] — retrieve_per_source(k_per_source=2) over S sources
            for subject, predicate, obj in self.llm.extract_triples(hit.item.text, []):
                if predicate != attribute or normalize_value(subject) != target:
                    continue
                dedup = (subject, predicate, obj, hit.item.source_id)
                if dedup in seen:
                    continue
                seen.add(dedup)
                candidates.append(
                    Triple(
                        entity, attribute, obj,
                        Provenance(
                            source_id=hit.item.source_id,
                            fmt="chunk",
                            chunk_id=hit.item.chunk_id,
                        ),
                    )
                )
        return candidates

    def _open_candidates(self, logic_form: LogicForm) -> list[Triple]:
        """Fallback for free-form questions: retrieve, then match claims."""
        assert self.fusion is not None
        hits = self.retriever.retrieve(logic_form.raw, k=self.config.top_k)
        query_tokens = set(normalize_value(logic_form.raw).split())
        candidates: list[Triple] = []
        seen: set[tuple[tuple[str, str, str], str]] = set()
        for hit in hits:
            for triple in self.fusion.graph.by_source(hit.item.source_id):
                subject_tokens = set(normalize_value(triple.subject).split())
                predicate_tokens = set(triple.predicate.split("_"))
                if subject_tokens <= query_tokens and (
                    predicate_tokens & query_tokens
                ):
                    dedup = (triple.spo(), triple.source_id())
                    if dedup not in seen:
                        seen.add(dedup)
                        candidates.append(triple)
        return candidates

    def _apply_freshness(self, candidates: list[Triple]) -> list[Triple]:
        """Temporal supersede/staleness filter over the candidate set.

        When claims carry observation timestamps, each source's older
        claims for the key are superseded by its newest observation, and
        sources last heard more than ``config.staleness`` before the
        freshest observation are dropped entirely — a stale "on time" is
        an earlier snapshot, not a conflicting opinion.  Timeless claims
        (no timestamp) pass through untouched.
        """
        if self.config.staleness is None or not candidates:
            return candidates
        timed = [c for c in candidates
                 if c.provenance and c.provenance.observed_at is not None]
        if not timed:
            return candidates
        timeless = [c for c in candidates
                    if not c.provenance or c.provenance.observed_at is None]
        latest_per_source: dict[str, Triple] = {}
        for claim in sorted(timed, key=lambda c: c.provenance.observed_at):
            latest_per_source[claim.source_id()] = claim
        newest = max(
            c.provenance.observed_at for c in latest_per_source.values()
        )
        fresh = [
            c for c in latest_per_source.values()
            if newest - c.provenance.observed_at <= self.config.staleness
        ]
        return timeless + fresh

    def _as_group(self, candidates: list[Triple]) -> HomologousGroup:
        """Wrap the candidate set of one retrieval as a homologous group
        (Definition 3: same candidate set ⇒ homologous)."""
        first = candidates[0]
        snode = HomologousNode(
            name=first.predicate,
            entity=first.subject,
            meta={"domain": first.provenance.domain if first.provenance else ""},
            num=len(candidates),
        )
        group = HomologousGroup(
            key=first.key(), snode=snode, members=list(candidates)
        )
        for member in candidates:
            group.set_weight(member, 1.0)
        return group

    def _run_mcc(self, groups: list[HomologousGroup]) -> MCCResult:
        assert self.scorer is not None
        return mcc(
            groups,
            self.scorer,
            node_threshold=self.config.node_threshold,
            graph_threshold=self.config.graph_threshold,
            enable_graph_level=self.config.enable_graph_level,
            enable_node_level=self.config.enable_node_level,
            fast_path_nodes=self.config.fast_path_nodes,
            hedge_margin=self.config.hedge_margin,
            obs=self.obs,
        )

    def _rank_answers(self, mcc_result: MCCResult) -> list[RankedValue]:
        by_value: dict[str, list] = defaultdict(list)
        display: dict[str, str] = {}
        for assessment in mcc_result.accepted_assessments():
            key = normalize_value(assessment.value)
            by_value[key].append(assessment)
            display.setdefault(key, assessment.value)
        ranked = []
        for key, assessments in by_value.items():
            best = max(a.confidence for a in assessments)
            support = len({a.source_id for a in assessments})
            # Normalize C(v) ∈ [0, 2] to a [0, 1] display confidence and
            # nudge by multi-source support for stable ordering.
            confidence = min(1.0, best / 2.0 + 0.05 * (support - 1))
            ranked.append(
                RankedValue(
                    value=display[key],
                    confidence=round(confidence, 6),
                    sources=tuple(sorted({a.source_id for a in assessments})),
                )
            )
        ranked.sort(key=lambda r: (-r.confidence, r.value))
        return ranked

    def _update_history(
        self, candidates: list[Triple], result: RetrievalResult
    ) -> None:
        """Consensus feedback: sources whose claims made the final answer
        set gain credibility; contradicted sources lose it."""
        answer_set = result.answer_set()
        if not answer_set:
            return
        for triple in candidates:
            accepted = normalize_value(triple.obj) in answer_set
            self.history.update(triple.source_id(), accepted)

    def _generate(self, question: str, result: RetrievalResult) -> str:
        evidence = [
            EvidenceItem(
                entity=assessment.triple.subject,
                attribute=assessment.triple.predicate,
                value=assessment.value,
                confidence=min(1.0, assessment.confidence / 2.0),
                source_id=assessment.source_id,
            )
            for assessment in (result.mcc.accepted_assessments() if result.mcc else [])
        ]
        return generate_trustworthy_answer(self.llm, question, evidence)
