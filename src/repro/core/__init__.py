"""MultiRAG core: configuration, logic forms, pipeline, MKLGP."""

from repro.core.answer import RankedValue, RetrievalResult
from repro.core.config import MultiRAGConfig
from repro.core.logic_form import LogicForm, generate_logic_form
from repro.core.mklgp import MKLGPTrace, mklgp
from repro.core.planner import QuestionPlan, plan_question
from repro.core.pipeline import BuildReport, EvaluationReport, MultiRAG

__all__ = [
    "BuildReport",
    "EvaluationReport",
    "LogicForm",
    "MKLGPTrace",
    "MultiRAG",
    "MultiRAGConfig",
    "QuestionPlan",
    "plan_question",
    "RankedValue",
    "RetrievalResult",
    "generate_logic_form",
    "mklgp",
]
