"""MKLGP — Multi-source Knowledge Line Graph Prompting (Algorithm 2).

This module is the annotated, step-by-step rendition of the paper's
Algorithm 2 on top of :class:`~repro.core.pipeline.MultiRAG`.  The
pipeline's :meth:`~repro.core.pipeline.MultiRAG.run` performs the same
computation in one call; ``mklgp`` exists so each line of the published
pseudocode maps to one visible step and so tests can assert on the
intermediate artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.confidence.mcc import MCCResult
from repro.core.answer import RetrievalResult
from repro.core.logic_form import LogicForm, generate_logic_form
from repro.core.pipeline import MultiRAG
from repro.exec import Query
from repro.kg.triple import Triple
from repro.obs.audit import AuditEvent
from repro.retrieval.chunking import Chunk


@dataclass(slots=True)
class MKLGPTrace:
    """Intermediate artifacts of one MKLGP run, one field per algorithm line."""

    logic_form: LogicForm | None = None
    documents: list[Chunk] = field(default_factory=list)
    candidates: list[Triple] = field(default_factory=list)
    mcc: MCCResult | None = None
    result: RetrievalResult | None = None
    #: line 5's decision trail: one audit event per candidate MCC kept or
    #: dropped (populated when the pipeline runs with an enabled audit log).
    audit: list[AuditEvent] = field(default_factory=list)


def mklgp(pipeline: MultiRAG, question: str) -> tuple[RetrievalResult, MKLGPTrace]:
    """Run Algorithm 2 explicitly and return the answer plus its trace.

    Line-by-line correspondence with the paper:

    * line 2 ``E_q, R_q ← Logic Form Generation(q)`` — parse the question;
    * line 3 ``D_q ← Multi Document Extraction`` — retrieve the chunks that
      ground the answer (per-source quotas so every source is heard);
    * line 4 ``SG' ← Prompt(D_q)`` — the homologous line graph lookup
      (already materialized at ingest time; the lookup selects the
      candidate subgraph);
    * line 5 ``SVs, LVs ← MCC(SG', q, D_q)`` — multi-level confidence;
    * lines 6–7 — confidence-ranked nodes are embedded into the prompt and
      the trustworthy answer is generated.

    Raises:
        StateError: if ``pipeline`` has not ingested any sources.
        ContractViolation: if ``debug_contracts`` finds an invalid MCC
            result or answer ranking.
    """
    trace = MKLGPTrace()
    trace.logic_form = generate_logic_form(question)

    hits = pipeline.retriever.retrieve_per_source(question, k_per_source=1)
    trace.documents = [h.item for h in hits]

    result = pipeline.run(Query.text(question))
    trace.result = result
    trace.mcc = result.mcc
    trace.audit = list(result.audit)
    if result.mcc is not None:
        trace.candidates = [
            m for d in result.mcc.decisions for m in d.group.members
        ]
    return result, trace
