"""Answer containers returned by the MultiRAG pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.confidence.mcc import MCCResult
from repro.obs.audit import AuditEvent
from repro.util import normalize_value


@dataclass(frozen=True, slots=True)
class RankedValue:
    """One answer value with its supporting confidence and sources."""

    value: str
    confidence: float
    sources: tuple[str, ...] = ()


@dataclass(slots=True)
class RetrievalResult:
    """Everything one MultiRAG query produced.

    ``stage_values`` records the candidate value sets at the three points
    the paper measures Recall@K: before subgraph (graph-level) filtering,
    after graph-level but before node-level filtering, and after node-level
    filtering.
    """

    query: str
    answers: list[RankedValue] = field(default_factory=list)
    generated_text: str = ""
    mcc: MCCResult | None = None
    stage_values: dict[str, list[str]] = field(default_factory=dict)
    query_time_s: float = 0.0
    prompt_time_s: float = 0.0
    candidates_considered: int = 0
    trace: list[str] = field(default_factory=list)
    #: this query's slice of the decision-audit trail (empty unless the
    #: pipeline runs with an enabled audit log): one event per candidate
    #: value MCC kept or dropped, plus one group-level event per group.
    audit: list[AuditEvent] = field(default_factory=list)

    def answer_set(self, top_k: int | None = None) -> set[str]:
        """Normalized answer values (optionally the top-``k`` only)."""
        ranked = self.answers if top_k is None else self.answers[:top_k]
        return {normalize_value(a.value) for a in ranked}

    def top(self) -> RankedValue | None:
        return self.answers[0] if self.answers else None
