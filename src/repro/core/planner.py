"""Question planning: natural multi-hop questions → hop chains.

MKLGP's first step extracts "the intent, entities, and relationships" from
the user query.  :func:`plan_question` extends the flat logic-form parser
to *nested* questions — the bridge/compositional shapes of HotpotQA and
2WikiMultiHopQA — by peeling relational noun phrases off the front of the
question until a concrete entity remains:

    "Who is the spouse of the director of The Silent Horizon?"
      → [("The Silent Horizon", "directed_by"), (None, "spouse")]

    "In which country was the director of The Silent Horizon born?"
      → [("The Silent Horizon", "directed_by"), (None, "born_in"),
         (None, "located_in")]

Comparison questions ("Were A and B born in the same city?") produce two
chains plus a comparison marker.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

Hop = tuple[str | None, str]

#: relational noun phrases and the predicate they traverse.
RELATIONAL_NOUNS: dict[str, str] = {
    "director": "directed_by",
    "author": "author",
    "writer": "author",
    "publisher": "publisher",
    "spouse": "spouse",
    "capital": "capital",
    "employer": "works_for",
}

#: trailing verb phrases and the hops they append to the chain.
_TAIL_PATTERNS: list[tuple[re.Pattern[str], list[str]]] = [
    (re.compile(r"^in which country was (?P<inner>.+?) born\??$", re.I),
     ["born_in", "located_in"]),
    (re.compile(r"^where was (?P<inner>.+?) born\??$", re.I), ["born_in"]),
    (re.compile(r"^who is the spouse of (?P<inner>.+?)\??$", re.I), ["spouse"]),
    (re.compile(r"^which organization does (?P<inner>.+?) work for\??$", re.I),
     ["works_for"]),
    (re.compile(r"^who directed (?P<inner>.+?)\??$", re.I), ["directed_by"]),
    (re.compile(r"^who wrote (?P<inner>.+?)\??$", re.I), ["author"]),
    (re.compile(r"^what is the capital of (?P<inner>.+?)\??$", re.I),
     ["capital"]),
]

_COMPARISON_RE = re.compile(
    r"^were (?P<a>.+?) and (?P<b>.+?) born in the same city\??$", re.I
)

_NESTED_RE = re.compile(
    r"^the (?P<noun>[a-z]+) of (?P<rest>.+)$", re.I
)


@dataclass(frozen=True, slots=True)
class QuestionPlan:
    """The planned decomposition of one question."""

    qtype: str  # "chain" | "comparison" | "unplanned"
    hops: tuple[Hop, ...] = ()
    hops_b: tuple[Hop, ...] = ()
    comparator: str = ""
    raw: str = ""

    @property
    def is_planned(self) -> bool:
        return self.qtype != "unplanned"


def _unnest(phrase: str) -> tuple[str, list[str]] | None:
    """Peel relational nouns off ``phrase``.

    ``"the spouse of the director of X"`` → ``("X", ["directed_by",
    "spouse"])`` — inner hops first.  Returns ``None`` when an unknown
    relational noun is hit.
    """
    phrase = phrase.strip()
    match = _NESTED_RE.match(phrase)
    if match is None:
        return phrase, []
    predicate = RELATIONAL_NOUNS.get(match.group("noun").lower())
    if predicate is None:
        return None
    inner = _unnest(match.group("rest"))
    if inner is None:
        return None
    entity, hops = inner
    return entity, hops + [predicate]


def plan_question(question: str) -> QuestionPlan:
    """Plan ``question``; ``qtype == "unplanned"`` when no template fits."""
    text = " ".join(question.strip().split())

    comparison = _COMPARISON_RE.match(text)
    if comparison:
        return QuestionPlan(
            qtype="comparison",
            hops=((comparison.group("a"), "born_in"),),
            hops_b=((comparison.group("b"), "born_in"),),
            comparator="equal",
            raw=question,
        )

    for pattern, tail_hops in _TAIL_PATTERNS:
        match = pattern.match(text)
        if match is None:
            continue
        unnested = _unnest(match.group("inner"))
        if unnested is None:
            continue
        entity, inner_hops = unnested
        predicates = inner_hops + tail_hops
        hops: list[Hop] = [(entity, predicates[0])]
        hops.extend((None, predicate) for predicate in predicates[1:])
        return QuestionPlan(qtype="chain", hops=tuple(hops), raw=question)

    return QuestionPlan(qtype="unplanned", raw=question)
