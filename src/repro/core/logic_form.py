"""Logic-form generation — first step of MKLGP (Algorithm 2, line 2).

The LLM of the paper extracts intent, entities and relationships from the
user query; here a deterministic parser covers the query grammar the
datasets emit, with a lexicon-driven fallback for free-form phrasings.

Understood shapes (case-insensitive):

* ``What is the <attribute> of <entity>?``  — attribute lookup
* ``Who directed <entity>?`` and other lexicon phrasings
* ``<entity> | <attribute>``               — pre-parsed structured form
* anything else → ``open`` intent, handled by retrieval downstream
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.llm.lexicon import RELATIONS

_ATTR_RE = re.compile(
    # The entity part is captured verbatim: titles legitimately start with
    # "The ..." and must not be stripped.
    r"^\s*what\s+(?:is|are|was|were)\s+the\s+(?P<attr>.+?)\s+of\s+"
    r"(?P<entity>.+?)\s*\??\s*$",
    re.IGNORECASE,
)

#: question verb phrasings → canonical predicate, derived from the lexicon.
_VERB_PATTERNS: list[tuple[re.Pattern[str], str]] = [
    (re.compile(r"^\s*who\s+directed\s+(?P<entity>.+?)\s*\??\s*$", re.I), "directed_by"),
    (re.compile(r"^\s*who\s+wrote\s+(?P<entity>.+?)\s*\??\s*$", re.I), "author"),
    (re.compile(r"^\s*who\s+published\s+(?P<entity>.+?)\s*\??\s*$", re.I), "publisher"),
    (re.compile(r"^\s*when\s+did\s+(?P<entity>.+?)\s+depart\s*\??\s*$", re.I),
     "actual_departure"),
    (re.compile(r"^\s*where\s+was\s+(?P<entity>.+?)\s+born\s*\??\s*$", re.I), "born_in"),
]


@dataclass(frozen=True, slots=True)
class LogicForm:
    """Parsed query: intent plus (entity, attribute) when structured."""

    intent: str
    raw: str
    entity: str | None = None
    attribute: str | None = None

    @property
    def is_structured(self) -> bool:
        return self.intent == "attribute_lookup"

    def key(self) -> tuple[str, str]:
        if not self.is_structured or self.entity is None or self.attribute is None:
            raise ValueError(f"logic form for {self.raw!r} is not structured")
        return (self.entity, self.attribute)


def _canonical_attribute(phrase: str) -> str:
    """Map a spoken attribute phrase to its snake_case predicate."""
    candidate = phrase.strip().lower().replace(" ", "_")
    known = {spec.predicate for spec in RELATIONS}
    if candidate in known:
        return candidate
    # Common surface aliases emitted by human-ish phrasings.
    aliases = {
        "director": "directed_by",
        "directors": "directed_by",
        "writer": "author",
        "writers": "author",
        "authors": "author",
        "departure_time": "actual_departure",
        "opening_price": "open_price",
        "closing_price": "close_price",
    }
    return aliases.get(candidate, candidate)


def generate_logic_form(query: str) -> LogicForm:
    """Parse ``query`` into a :class:`LogicForm` (never raises)."""
    if "|" in query:
        parts = [p.strip() for p in query.split("|")]
        if len(parts) == 2 and all(parts):
            return LogicForm(
                intent="attribute_lookup",
                raw=query,
                entity=parts[0],
                attribute=_canonical_attribute(parts[1]),
            )
    match = _ATTR_RE.match(query)
    if match:
        return LogicForm(
            intent="attribute_lookup",
            raw=query,
            entity=match.group("entity").strip(),
            attribute=_canonical_attribute(match.group("attr")),
        )
    for pattern, predicate in _VERB_PATTERNS:
        match = pattern.match(query)
        if match:
            return LogicForm(
                intent="attribute_lookup",
                raw=query,
                entity=match.group("entity").strip(),
                attribute=predicate,
            )
    return LogicForm(intent="open", raw=query)
