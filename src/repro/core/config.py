"""MultiRAG configuration (hyper-parameters of paper §IV-A(c)).

Defaults follow the paper's experimental settings: temperature β = 0.5,
historical-query entity count initialized to 50, graph confidence threshold
0.5, α = 0.5 for the authority blend.  The paper quotes a node confidence
threshold of 0.7 on its (unnormalized) score scale; this implementation's
``C(v) = S_n(v) + A(v)`` lives in [0, 2], and the equivalent operating
point calibrates to 1.0 (see ``benchmarks/test_ablation_thresholds.py``
for the sweep).

The three ``enable_*`` flags drive the Table III ablations:

* ``enable_mka = False``   → "w/o MKA": no multi-source line graph; every
  query scans the raw knowledge graph.
* ``enable_graph_level = False`` → "w/o Graph Level": skip the coarse
  graph-confidence prefilter.
* ``enable_node_level = False``  → "w/o Node Level": skip per-node scoring.
* both confidence stages off → "w/o MCC".
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro.errors import ConfigError

if TYPE_CHECKING:
    from repro.llm.gateway import RoutingPolicy


def _sanitize_default() -> bool:
    """Default for :attr:`MultiRAGConfig.sanitize`: the ``REPRO_SANITIZE``
    environment variable, so CI can run whole suites under the sanitizer
    without touching call sites."""
    return os.environ.get("REPRO_SANITIZE", "").lower() not in (
        "", "0", "false", "no",
    )


def _routing_default() -> dict[str, str]:
    """Default for :attr:`MultiRAGConfig.llm_routing`: the
    ``REPRO_LLM_ROUTING`` environment variable
    (``"ner=sim-small,synthesis=sim-large|sim-small"``), so CI can run
    whole suites through a heterogeneous gateway without touching call
    sites — same pattern as ``REPRO_EXEC_WORKERS``/``REPRO_SANITIZE``."""
    spec = os.environ.get("REPRO_LLM_ROUTING", "").strip()
    if not spec:
        return {}
    from repro.llm.gateway import parse_routing_spec

    return dict(parse_routing_spec(spec))


@dataclass(frozen=True, slots=True)
class MultiRAGConfig:
    """All tunables of the MultiRAG pipeline."""

    alpha: float = 0.5
    beta: float = 0.5
    node_threshold: float = 1.0
    graph_threshold: float = 0.5
    hedge_margin: float = 0.1
    #: freshness window in seconds: when candidates carry observation
    #: timestamps (``Provenance.observed_at``), each source's superseded
    #: claims are dropped and sources last heard more than ``staleness``
    #: before the newest observation are excluded.  ``None`` disables the
    #: temporal filter (timeless data).
    staleness: float | None = None
    history_init_entities: int = 50
    fast_path_nodes: int = 2
    top_k: int = 5
    chunk_max_tokens: int = 64
    min_sources: int = 2
    enable_mka: bool = True
    enable_graph_level: bool = True
    enable_node_level: bool = True
    update_history: bool = True
    #: validate runtime contracts (MLG referential integrity, MCC
    #: disjointness, confidence bounds — see ``repro.lint.contracts``)
    #: at the end of ingest/query.  Off by default: the checks are
    #: O(graph) and meant for tests and debugging, not production runs.
    debug_contracts: bool = False
    seed: int = 0
    extraction_noise: float = 0.05
    #: entity-hash shard count of the knowledge substrate.  Sharding is a
    #: layout/parallelism knob only — query and evaluate output is
    #: byte-identical for any value — but it partitions the snapshot
    #: files and bounds how wide ``ingest(jobs=N)`` can fan extraction
    #: out, so it participates in the snapshot fingerprint.
    n_shards: int = 4
    extra: dict[str, object] = field(default_factory=dict)
    #: wire the runtime race sanitizer (:mod:`repro.san`) into the
    #: pipeline: worker views wrap their shared attributes in recording
    #: proxies and cross-worker conflicts fail loudly.  Off by default
    #: like ``debug_contracts``; defaults from ``REPRO_SANITIZE``.
    sanitize: bool = field(default_factory=_sanitize_default)
    #: per-stage LLM backend routing, ``stage -> "backend[|fallback]"``
    #: with ``"*"`` overriding the default backend.  Non-empty wires an
    #: :class:`~repro.llm.gateway.LLMGateway` in front of the pipeline's
    #: client; empty (the default) keeps the bare client.  Defaults from
    #: ``REPRO_LLM_ROUTING`` (see :func:`_routing_default`).
    llm_routing: dict[str, str] = field(default_factory=_routing_default)
    #: per-stage gateway knobs, ``stage -> {"max_calls", "max_tokens",
    #: "max_attempts", "hedge_after_s"}`` — runtime quotas for the
    #: statically certified call bounds, retry caps and hedge deadlines.
    llm_stage_limits: dict[str, dict[str, float]] = field(
        default_factory=dict
    )
    #: consecutive backend failures before its circuit breaker trips.
    llm_breaker_threshold: int = 3
    #: simulated seconds an open breaker waits before half-opening.
    llm_breaker_cooldown_s: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha <= 1.0:
            raise ConfigError(f"alpha must lie in [0, 1], got {self.alpha}")
        if self.beta <= 0.0:
            raise ConfigError(f"beta must be positive, got {self.beta}")
        if not 0.0 <= self.node_threshold <= 2.0:
            raise ConfigError(
                f"node_threshold must lie in [0, 2] (C(v) = S_n + A), "
                f"got {self.node_threshold}"
            )
        if not 0.0 <= self.graph_threshold <= 1.0:
            raise ConfigError(
                f"graph_threshold must lie in [0, 1], got {self.graph_threshold}"
            )
        if self.history_init_entities < 0:
            raise ConfigError("history_init_entities must be non-negative")
        if self.fast_path_nodes < 1:
            raise ConfigError("fast_path_nodes must be at least 1")
        if self.hedge_margin < 0.0:
            raise ConfigError("hedge_margin must be non-negative")
        if self.staleness is not None and self.staleness < 0.0:
            raise ConfigError("staleness must be non-negative")
        if self.top_k < 1:
            raise ConfigError("top_k must be at least 1")
        if self.min_sources < 2:
            raise ConfigError("min_sources must be at least 2")
        if self.n_shards < 1:
            raise ConfigError(f"n_shards must be >= 1, got {self.n_shards}")
        if self.llm_breaker_threshold < 1:
            raise ConfigError("llm_breaker_threshold must be at least 1")
        if self.llm_breaker_cooldown_s < 0.0:
            raise ConfigError("llm_breaker_cooldown_s must be non-negative")
        if (self.llm_stage_limits and not self.llm_routing):
            raise ConfigError(
                "llm_stage_limits requires llm_routing (the gateway "
                "enforces per-stage limits; set llm_routing={'*': "
                "'default'} for default routing with limits)"
            )

    @property
    def enable_mcc(self) -> bool:
        """True when at least one confidence stage is active."""
        return self.enable_graph_level or self.enable_node_level

    def routing_policy(self) -> "RoutingPolicy | None":
        """The gateway routing policy, or ``None`` when no routing is
        configured (the pipeline then keeps its bare client).

        Raises:
            ConfigError: on unknown stages, backends or limit keys.
        """
        if not self.llm_routing:
            return None
        from repro.llm.gateway import RoutingPolicy

        return RoutingPolicy.from_mappings(
            self.llm_routing,
            self.llm_stage_limits,
            breaker_threshold=self.llm_breaker_threshold,
            breaker_cooldown_s=self.llm_breaker_cooldown_s,
        )

    def without_mka(self) -> "MultiRAGConfig":
        return replace(self, enable_mka=False)

    def without_graph_level(self) -> "MultiRAGConfig":
        return replace(self, enable_graph_level=False)

    def without_node_level(self) -> "MultiRAGConfig":
        return replace(self, enable_node_level=False)

    def without_mcc(self) -> "MultiRAGConfig":
        return replace(self, enable_graph_level=False, enable_node_level=False)

    def with_alpha(self, alpha: float) -> "MultiRAGConfig":
        return replace(self, alpha=alpha)
