"""Evaluation metrics: multi-valued P/R/F1 (Eq. 12) and Recall@K.

A foundation-layer leaf (scoring math over value sets, nothing else) so
that both ``repro.core`` and ``repro.eval`` may depend on it without an
upward edge; :mod:`repro.eval.metrics` re-exports it for compatibility.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

from repro.util import canonical_value


def normalized(values: Iterable[str]) -> set[str]:
    """Canonicalized value set used by every metric.

    Uses the *semantic* canonical form: "Nolan, Christopher" and
    "Christopher Nolan" count as the same answer, whichever source's
    spelling a method surfaced.
    """
    return {canonical_value(v) for v in values if str(v).strip()}


def precision(predicted: Iterable[str], gold: Iterable[str]) -> float:
    """|pred ∩ gold| / |pred|; 1.0 when nothing was predicted and gold is
    empty, 0.0 when something was predicted against empty gold."""
    pred = normalized(predicted)
    truth = normalized(gold)
    if not pred:
        return 1.0 if not truth else 0.0
    return len(pred & truth) / len(pred)


def recall(predicted: Iterable[str], gold: Iterable[str]) -> float:
    """|pred ∩ gold| / |gold|; 1.0 when gold is empty."""
    pred = normalized(predicted)
    truth = normalized(gold)
    if not truth:
        return 1.0
    return len(pred & truth) / len(truth)


def f1_score(predicted: Iterable[str], gold: Iterable[str]) -> float:
    """Harmonic mean of set precision and recall (Eq. 12)."""
    p = precision(predicted, gold)
    r = recall(predicted, gold)
    if p + r == 0.0:
        return 0.0
    return 2.0 * p * r / (p + r)


def exact_match(predicted: Iterable[str], gold: Iterable[str]) -> float:
    """1.0 iff the normalized prediction set equals the gold set exactly."""
    return 1.0 if normalized(predicted) == normalized(gold) else 0.0


def recall_at_k(retrieved: list[str], gold: Iterable[str], k: int = 5) -> float:
    """Fraction of gold items appearing in the first ``k`` retrieved items.

    Items are compared after normalization; duplicates in ``retrieved``
    count once.
    """
    truth = normalized(gold)
    if not truth:
        return 1.0
    top = normalized(retrieved[:k])
    return len(top & truth) / len(truth)


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    xs = list(values)
    return sum(xs) / len(xs) if xs else 0.0


def std(values: Iterable[float]) -> float:
    """Population standard deviation; 0.0 for fewer than two values."""
    xs = list(values)
    if len(xs) < 2:
        return 0.0
    mu = mean(xs)
    return math.sqrt(sum((x - mu) ** 2 for x in xs) / len(xs))
