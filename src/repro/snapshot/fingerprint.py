"""Content-addressed snapshot fingerprints.

A snapshot is only reusable when *everything* that determined the
ingested state is unchanged: the source payloads (and their order — graph
insertion order follows source order), every config field that shapes
construction, the LLM identity (seed, noise, knowledge base — the
extractor's output depends on all of them), and the snapshot format
itself.  :func:`compute_fingerprint` hashes a canonical JSON document of
all four; a single changed byte anywhere yields a different fingerprint
and therefore a cold rebuild, never a silently stale warm load.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import TYPE_CHECKING, Any, Sequence

from repro.adapters.base import RawSource
from repro.llm.base import LLMClient

if TYPE_CHECKING:  # a type-only edge: core imports snapshot, never back
    from repro.core.config import MultiRAGConfig

#: Bump whenever the on-disk layout or any serialized structure changes;
#: old snapshots then fingerprint-miss instead of loading wrongly.
#: v2: shard-partitioned graph/MLG files, delta layers, source
#: descriptors in the manifest (v1 snapshots raise a migration error
#: telling the operator to re-ingest or ``snapshot gc`` the old store).
SNAPSHOT_FORMAT_VERSION = 2


def _jsonable(value: Any) -> Any:
    """A canonical JSON-compatible form of one config/meta value."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = [_jsonable(v) for v in value]
        if isinstance(value, (set, frozenset)):
            items = sorted(items, key=repr)
        return items
    return repr(value)


def _digest_default(value: Any) -> Any:
    """``json.dumps`` fallback for types the C encoder cannot serialize."""
    if isinstance(value, (set, frozenset)):
        return sorted(value, key=repr)
    return repr(value)


def payload_digest(payload: Any) -> str:
    """SHA-256 of one source payload in a canonical encoding.

    Structured payloads are encoded by ``json.dumps`` directly (the C
    encoder, with a ``default`` hook for sets and exotic objects) —
    payload hashing sits on the warm-load path and a pure-Python
    canonicalization pass over every record dominates it.  Payloads with
    non-sortable mixed-type dict keys fall back to :func:`_jsonable`;
    either path is deterministic for a given payload, which is all the
    fingerprint needs.
    """
    if isinstance(payload, bytes):
        raw = payload
    elif isinstance(payload, str):
        raw = payload.encode("utf-8")
    else:
        try:
            raw = json.dumps(
                payload, sort_keys=True, separators=(",", ":"),
                default=_digest_default,
            ).encode("utf-8")
        except (TypeError, ValueError):
            raw = json.dumps(
                _jsonable(payload), sort_keys=True, separators=(",", ":")
            ).encode("utf-8")
    return hashlib.sha256(raw).hexdigest()


def _llm_identity(llm: Any) -> dict[str, Any]:
    """The attributes that make two LLM clients behave identically.

    Wrappers such as :class:`~repro.llm.caching.CachingLLM` carry none of
    the behavioral attributes themselves — seed, noise and knowledge live
    on the wrapped client — so the identity recurses through ``inner``
    chains; otherwise two pipelines wrapping behaviorally different LLMs
    would collide on one fingerprint and warm-load each other's state.
    """
    identity: dict[str, Any] = {"class": type(llm).__qualname__}
    for attr in (
        "seed",
        "extraction_noise",
        "knowledge_accuracy",
        "hallucination_pool",
        "base_latency_s",
        "latency_per_token_s",
        "wall_latency_scale",
    ):
        if hasattr(llm, attr):
            identity[attr] = _jsonable(getattr(llm, attr))
    knowledge = getattr(llm, "knowledge", None)
    if isinstance(knowledge, dict):
        identity["knowledge"] = {
            k: sorted(v) for k, v in sorted(knowledge.items())
        }
    inner = getattr(llm, "inner", None)
    if isinstance(inner, LLMClient):
        identity["inner"] = _llm_identity(inner)
    # A gateway's behavior is the product of its routing policy and every
    # registered backend: the same default client behind a different
    # routing table can spend different simulated latency per stage, so
    # both must enter the fingerprint.
    backends = getattr(llm, "backends", None)
    if isinstance(backends, dict) and backends:
        identity["backends"] = {
            str(name): _llm_identity(client)
            for name, client in sorted(backends.items())
            if isinstance(client, LLMClient)
        }
    policy = getattr(llm, "policy", None)
    if policy is not None and hasattr(policy, "to_jsonable"):
        identity["policy"] = _jsonable(policy.to_jsonable())
    return identity


@dataclasses.dataclass(frozen=True, slots=True)
class SourceDescriptor:
    """The fingerprint-relevant identity of one raw source.

    A descriptor is everything the fingerprint needs to know about a
    source *without holding its payload*: identifiers plus a content
    digest.  Descriptors are the unit of the layer-chain fingerprint
    algebra — a base snapshot records the descriptors it was built from,
    every delta layer adds exactly one, and the chain fingerprint is the
    ordinary :func:`fingerprint_from_descriptors` over the concatenated
    list, so ``ingest(base_sources + [extra])`` on a fresh pipeline
    fingerprint-hits the chain that ``add_source(extra)`` wrote.
    """

    source_id: str
    domain: str
    fmt: str
    name: str
    payload: str
    meta: Any

    def to_doc(self) -> dict[str, Any]:
        """The canonical JSON form hashed into the fingerprint."""
        return {
            "source_id": self.source_id,
            "domain": self.domain,
            "fmt": self.fmt,
            "name": self.name,
            "payload": self.payload,
            "meta": self.meta,
        }

    @classmethod
    def from_doc(cls, doc: dict[str, Any]) -> "SourceDescriptor":
        """Inverse of :meth:`to_doc` (manifest round-trip).

        Raises:
            KeyError: if a required descriptor field is missing.
        """
        return cls(
            source_id=doc["source_id"],
            domain=doc["domain"],
            fmt=doc["fmt"],
            name=doc["name"],
            payload=doc["payload"],
            meta=doc.get("meta"),
        )


def describe_source(raw: RawSource) -> SourceDescriptor:
    """The :class:`SourceDescriptor` of one raw source (digests payload)."""
    return SourceDescriptor(
        source_id=raw.source_id,
        domain=raw.domain,
        fmt=raw.fmt,
        name=raw.name,
        payload=payload_digest(raw.payload),
        meta=_jsonable(raw.meta),
    )


def fingerprint_from_descriptors(
    config: "MultiRAGConfig",
    descriptors: Sequence[SourceDescriptor],
    llm: Any,
) -> str:
    """SHA-256 fingerprint over pre-digested source descriptors.

    The layer-chain algebra lives here: appending one descriptor and
    re-hashing yields the chain fingerprint of the extended corpus,
    without re-reading any earlier payload.
    """
    doc = {
        "format_version": SNAPSHOT_FORMAT_VERSION,
        "config": {
            f.name: _jsonable(getattr(config, f.name))
            for f in dataclasses.fields(config)
        },
        "llm": _llm_identity(llm),
        "sources": [d.to_doc() for d in descriptors],
    }
    canonical = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def compute_fingerprint(
    config: "MultiRAGConfig", sources: Sequence[RawSource], llm: Any
) -> str:
    """SHA-256 fingerprint keying a snapshot of ``ingest(sources)``.

    Covers the snapshot format version, every config field (including
    ``extra``), the ordered source descriptors with content digests, and
    the LLM identity.  Deterministic across processes and platforms.
    """
    return fingerprint_from_descriptors(
        config, [describe_source(raw) for raw in sources], llm
    )
