"""On-disk snapshot store: serialize/restore a fully ingested pipeline.

One snapshot is a directory named by its fingerprint (see
:mod:`repro.snapshot.fingerprint`) holding JSON files for every substrate
component plus ``.npy`` files for the dense index's float arrays:

``manifest.json``
    format version, fingerprint, component counts.
``graph.json``
    the fused knowledge graph — triples in columnar arrays (parallel
    ``subject`` / ``predicate`` / ``obj`` / ``prov_id`` lists plus a
    deduplicated provenance side table) in insertion order (the order
    every secondary index and the MLG group enumeration derive from)
    plus entities.  Columnar beats one JSON-LD object per triple both
    on decode time and on restore time: triples from the same source
    record share one provenance row, and the loader hands the decoded
    list to :meth:`~repro.kg.graph.KnowledgeGraph.bulk_restore`.
``records.json`` / ``chunks.json``
    normalized records and the chunk corpus.
``mlg.json``
    homologous groups and isolated claims in flattened columnar arrays,
    members and weights referenced by index into the serialized triple
    order and sliced per group by offset arrays.
``retriever.json`` + ``vector_matrix.npy`` / ``vector_idf.npy``
    retrieval mode, the BM25 internals (impacts are recomputed on load),
    and the pre-normalized TF-IDF matrix, bit-exact via ``np.save``.
``history.json``
    the calibrated per-source credibility tallies.
``llm_cache.json`` (optional)
    the extraction cache of a :class:`~repro.llm.caching.CachingLLM`.

Writes are atomic at directory granularity: everything lands in a
``.tmp.<fingerprint>`` sibling first and is renamed into place with
``os.replace``, so a crashed save never leaves a half-written snapshot
where :meth:`SnapshotStore.has` would find it.  Overwrites displace the
previous snapshot to ``.old.<fingerprint>`` (another rename) before
installing the new one — a crash in between leaves the old state
recoverable rather than destroyed, and a failed install renames it back.
Dotted work-area names are invisible to :meth:`SnapshotStore.fingerprints`.

Floats survive exactly: JSON numbers round-trip ``float64`` through
``repr``, and numpy arrays travel in binary.  Dict insertion orders are
preserved end to end (JSON objects keep order), which is what makes a
warm-loaded pipeline byte-identical to the cold-built one.
"""

from __future__ import annotations

import contextlib
import json
import os
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.adapters.fusion import FusionResult
from repro.confidence.history import HistoryStore
from repro.errors import GraphError, SnapshotError
from repro.kg.graph import KnowledgeGraph
from repro.kg.storage import NormalizedRecord
from repro.kg.triple import Entity, Provenance, Triple
from repro.linegraph.homologous import HomologousGroup, HomologousNode
from repro.linegraph.mlg import MultiSourceLineGraph
from repro.obs.context import NOOP, Observability
from repro.retrieval.chunking import Chunk
from repro.retrieval.retriever import MultiSourceRetriever
from repro.snapshot.fingerprint import SNAPSHOT_FORMAT_VERSION


@dataclass(slots=True)
class LoadedState:
    """Everything a warm-loaded pipeline needs to resume serving queries.

    ``mlg`` is ``None`` when the snapshot was taken with MKA disabled;
    ``llm_cache`` is ``None`` when the saving pipeline had no caching
    wrapper around its LLM.
    """

    fingerprint: str
    fusion: FusionResult
    retriever: MultiSourceRetriever
    mlg: MultiSourceLineGraph | None
    history: HistoryStore
    llm_cache: dict[str, str] | None = None
    mlg_stats: dict[str, float] = field(default_factory=dict)


class SnapshotStore:
    """Content-addressed directory of pipeline snapshots."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def _dir(self, fingerprint: str) -> Path:
        return self.root / fingerprint

    def has(self, fingerprint: str) -> bool:
        """True when a complete snapshot exists for ``fingerprint``."""
        return (self._dir(fingerprint) / "manifest.json").is_file()

    def fingerprints(self) -> list[str]:
        """Fingerprints of every complete snapshot, sorted.

        Dotted names are the store's work areas (``.tmp.<fp>`` staging
        and ``.old.<fp>`` displaced copies); a crash can leave one behind
        with a manifest inside, so they are never reported as snapshots.
        """
        if not self.root.is_dir():
            return []
        return sorted(
            p.name for p in self.root.iterdir()
            if p.is_dir()
            and not p.name.startswith(".")
            and (p / "manifest.json").is_file()
        )

    # ------------------------------------------------------------------
    # save
    # ------------------------------------------------------------------
    def save(
        self,
        fingerprint: str,
        *,
        fusion: FusionResult,
        retriever: MultiSourceRetriever,
        mlg: MultiSourceLineGraph | None,
        history: HistoryStore,
        llm_cache: dict[str, str] | None = None,
    ) -> Path:
        """Serialize one ingested pipeline state under ``fingerprint``.

        Returns the final snapshot directory.  The write is atomic: a
        temp directory is populated and renamed into place, replacing any
        previous snapshot for the same fingerprint.

        Raises:
            SnapshotError: if the snapshot directory cannot be written.
        """
        graph = fusion.graph
        triples = list(graph.triples())
        triple_index = {t: i for i, t in enumerate(triples)}

        tmp = self.root / f".tmp.{fingerprint}"
        old = self.root / f".old.{fingerprint}"
        final = self._dir(fingerprint)
        try:
            if tmp.exists():
                shutil.rmtree(tmp)
            if old.exists():
                shutil.rmtree(old)
            tmp.mkdir(parents=True)

            self._write_json(tmp / "graph.json", self._graph_doc(graph, triples))
            self._write_json(tmp / "records.json", [
                r.to_dict() for r in fusion.records
            ])
            self._write_json(tmp / "chunks.json", [
                {
                    "chunk_id": c.chunk_id,
                    "source_id": c.source_id,
                    "doc_id": c.doc_id,
                    "seq": c.seq,
                    "text": c.text,
                    "meta": [list(pair) for pair in c.meta],
                }
                for c in fusion.chunks
            ])
            self._write_json(tmp / "mlg.json", self._mlg_doc(mlg, triple_index))

            retriever_state = retriever.export_state()
            _, matrix, idf = retriever._dense.export_state()
            self._write_json(tmp / "retriever.json", retriever_state)
            np.save(tmp / "vector_idf.npy", idf, allow_pickle=False)
            if matrix is not None:
                np.save(tmp / "vector_matrix.npy", matrix, allow_pickle=False)

            self._write_json(tmp / "history.json", history.export_state())
            if llm_cache is not None:
                self._write_json(tmp / "llm_cache.json", llm_cache)

            self._write_json(tmp / "manifest.json", {
                "format_version": SNAPSHOT_FORMAT_VERSION,
                "fingerprint": fingerprint,
                "fusion": {
                    "build_time_s": fusion.build_time_s,
                    "extraction_calls": fusion.extraction_calls,
                },
                "counts": {
                    "triples": len(triples),
                    "entities": graph.num_entities(),
                    "chunks": len(fusion.chunks),
                    "records": len(fusion.records),
                    "groups": len(mlg.groups) if mlg else 0,
                },
                "has_llm_cache": llm_cache is not None,
                "has_matrix": matrix is not None,
                "mlg_stats": mlg.stats() if mlg else {},
            })

            # Overwrite without a window where no valid snapshot exists:
            # displace the previous copy aside (rename, atomic) before
            # installing the new one, then discard it.  A crash between
            # the two renames leaves the old state recoverable under
            # ``.old.<fp>`` instead of destroyed.
            if final.exists():
                os.replace(final, old)
            os.replace(tmp, final)
            if old.exists():
                shutil.rmtree(old)
        except OSError as exc:
            # A failed install must not lose the previous snapshot: put
            # the displaced copy back if the new one never landed.
            if old.exists() and not final.exists():
                with contextlib.suppress(OSError):
                    os.replace(old, final)
            raise SnapshotError(
                f"cannot write snapshot {fingerprint} under {self.root}: {exc}"
            ) from exc
        finally:
            if tmp.exists():
                shutil.rmtree(tmp, ignore_errors=True)
        return final

    @staticmethod
    def _graph_doc(graph: KnowledgeGraph, triples: list[Triple]) -> dict[str, Any]:
        """Columnar triple serialization with a provenance side table.

        All triples extracted from one source record share a single
        :class:`Provenance` value, so the side table is typically an
        order of magnitude smaller than the triple list; ``prov_id`` is
        ``-1`` for provenance-free triples.
        """
        subjects: list[str] = []
        predicates: list[str] = []
        objs: list[str] = []
        prov_ids: list[int] = []
        prov_index: dict[Provenance, int] = {}
        for t in triples:
            subjects.append(t.subject)
            predicates.append(t.predicate)
            objs.append(t.obj)
            prov = t.provenance
            if prov is None:
                prov_ids.append(-1)
            else:
                prov_ids.append(prov_index.setdefault(prov, len(prov_index)))
        return {
            "name": graph.name,
            "triples": {
                "subject": subjects,
                "predicate": predicates,
                "obj": objs,
                "prov_id": prov_ids,
            },
            "prov_table": [
                [p.source_id, p.domain, p.fmt, p.chunk_id, p.record_id,
                 p.observed_at]
                for p in prov_index
            ],
            "entities": [e.to_dict() for e in graph.entities()],
        }

    @staticmethod
    def _mlg_doc(
        mlg: MultiSourceLineGraph | None, triple_index: dict[Triple, int]
    ) -> dict[str, Any]:
        """Columnar homologous-group serialization.

        Per-group lists are flattened into shared arrays sliced by offset
        (``member_off[g] : member_off[g + 1]``), so the decoder sees a
        handful of long arrays instead of one object tree per group; the
        flat order preserves each group's member and weight insertion
        order exactly.
        """
        if mlg is None:
            return {"enabled": False}
        keys: list[list[str]] = []
        snodes: list[list[Any]] = []
        member_idx: list[int] = []
        member_off = [0]
        weight_idx: list[int] = []
        weight_val: list[float] = []
        weight_off = [0]
        for g in mlg.groups:
            keys.append([g.key[0], g.key[1]])
            s = g.snode
            snodes.append([s.name, s.entity, dict(s.meta), s.num, s.confidence])
            member_idx.extend(triple_index[m] for m in g.members)
            member_off.append(len(member_idx))
            for t, w in g.weights.items():
                weight_idx.append(triple_index[t])
                weight_val.append(w)
            weight_off.append(len(weight_idx))
        return {
            "enabled": True,
            "min_sources": mlg._min_sources,
            "keys": keys,
            "snodes": snodes,
            "member_idx": member_idx,
            "member_off": member_off,
            "weight_idx": weight_idx,
            "weight_val": weight_val,
            "weight_off": weight_off,
            "isolated": [triple_index[t] for t in mlg.isolated],
        }

    @staticmethod
    def _write_json(path: Path, payload: Any) -> None:
        path.write_text(json.dumps(payload, ensure_ascii=False))

    # ------------------------------------------------------------------
    # load
    # ------------------------------------------------------------------
    def load(
        self, fingerprint: str, obs: Observability | None = None
    ) -> LoadedState:
        """Restore the complete ingested state saved under ``fingerprint``.

        ``obs`` is bound to the restored retriever (telemetry only; it
        does not affect the restored data).

        Raises:
            SnapshotError: if no snapshot exists for ``fingerprint``, the
                artifact is corrupt or incomplete, or it was written by
                an incompatible snapshot format version.
        """
        snap_dir = self._dir(fingerprint)
        manifest = self._read_json(snap_dir / "manifest.json", fingerprint)
        version = manifest.get("format_version")
        if version != SNAPSHOT_FORMAT_VERSION:
            raise SnapshotError(
                f"snapshot {fingerprint} has format version {version!r}; "
                f"this build reads version {SNAPSHOT_FORMAT_VERSION}"
            )

        graph_doc = self._read_json(snap_dir / "graph.json", fingerprint)
        graph, triples = self._restore_graph(graph_doc, fingerprint)

        records = [
            NormalizedRecord.from_dict(doc)
            for doc in self._read_json(snap_dir / "records.json", fingerprint)
        ]
        chunks = [
            Chunk(
                chunk_id=doc["chunk_id"],
                source_id=doc["source_id"],
                doc_id=doc["doc_id"],
                seq=int(doc["seq"]),
                text=doc["text"],
                meta=tuple(tuple(pair) for pair in doc.get("meta", [])),
            )
            for doc in self._read_json(snap_dir / "chunks.json", fingerprint)
        ]
        fusion = FusionResult(
            graph=graph,
            records=records,
            chunks=chunks,
            build_time_s=float(manifest["fusion"]["build_time_s"]),
            extraction_calls=int(manifest["fusion"]["extraction_calls"]),
        )

        retriever_state = self._read_json(
            snap_dir / "retriever.json", fingerprint
        )
        try:
            idf = np.load(snap_dir / "vector_idf.npy", allow_pickle=False)
            matrix = (
                np.load(snap_dir / "vector_matrix.npy", allow_pickle=False)
                if manifest.get("has_matrix")
                else None
            )
        except (OSError, ValueError) as exc:
            raise SnapshotError(
                f"snapshot {fingerprint}: corrupt dense-index arrays: {exc}"
            ) from exc
        retriever = MultiSourceRetriever(obs=obs if obs is not None else NOOP)
        retriever.restore_state(chunks, retriever_state, matrix, idf)

        mlg, mlg_stats = self._restore_mlg(
            snap_dir, fingerprint, graph, triples, manifest
        )

        history = HistoryStore().restore_state(
            self._read_json(snap_dir / "history.json", fingerprint)
        )

        llm_cache = None
        if manifest.get("has_llm_cache"):
            llm_cache = self._read_json(
                snap_dir / "llm_cache.json", fingerprint
            )

        return LoadedState(
            fingerprint=fingerprint,
            fusion=fusion,
            retriever=retriever,
            mlg=mlg,
            history=history,
            llm_cache=llm_cache,
            mlg_stats=dict(manifest.get("mlg_stats", {})),
        )

    @staticmethod
    def _restore_graph(
        graph_doc: dict[str, Any], fingerprint: str
    ) -> tuple[KnowledgeGraph, list[Triple]]:
        """Decode the columnar triple arrays and bulk-load the graph.

        The serialized order is the saving graph's insertion order, so
        :meth:`KnowledgeGraph.bulk_restore` reproduces every secondary
        index exactly without re-running per-triple deduplication.
        """
        try:
            cols = graph_doc.get("triples") or {
                "subject": [], "predicate": [], "obj": [], "prov_id": [],
            }
            provs = [
                Provenance(
                    source_id=row[0], domain=row[1], fmt=row[2],
                    chunk_id=row[3], record_id=row[4], observed_at=row[5],
                )
                for row in graph_doc.get("prov_table", [])
            ]
            triples = [
                Triple(s, p, o, provs[pid] if pid >= 0 else None)
                for s, p, o, pid in zip(
                    cols["subject"], cols["predicate"], cols["obj"],
                    cols["prov_id"],
                )
            ]
            entities = [
                Entity.from_dict(edoc) for edoc in graph_doc.get("entities", [])
            ]
            graph = KnowledgeGraph(name=graph_doc.get("name", "fused"))
            graph.bulk_restore(triples, entities)
        except (GraphError, IndexError, KeyError, TypeError) as exc:
            raise SnapshotError(
                f"snapshot {fingerprint}: corrupt graph serialization: {exc!r}"
            ) from exc
        return graph, triples

    def _restore_mlg(
        self,
        snap_dir: Path,
        fingerprint: str,
        graph: KnowledgeGraph,
        triples: list[Triple],
        manifest: dict[str, Any],
    ) -> tuple[MultiSourceLineGraph | None, dict[str, float]]:
        doc = self._read_json(snap_dir / "mlg.json", fingerprint)
        if not doc.get("enabled"):
            return None, {}
        try:
            member_idx = doc["member_idx"]
            member_off = doc["member_off"]
            weight_idx = doc["weight_idx"]
            weight_val = doc["weight_val"]
            weight_off = doc["weight_off"]
            groups = []
            for gi, (key, sdoc) in enumerate(zip(doc["keys"], doc["snodes"])):
                snode = HomologousNode(
                    name=sdoc[0],
                    entity=sdoc[1],
                    meta=dict(sdoc[2]),
                    num=int(sdoc[3]),
                    confidence=sdoc[4],
                )
                members = [
                    triples[i]
                    for i in member_idx[member_off[gi]:member_off[gi + 1]]
                ]
                group = HomologousGroup(
                    key=(key[0], key[1]), snode=snode, members=members
                )
                weights = group.weights
                for i, w in zip(
                    weight_idx[weight_off[gi]:weight_off[gi + 1]],
                    weight_val[weight_off[gi]:weight_off[gi + 1]],
                ):
                    weights[triples[i]] = float(w)
                groups.append(group)
            isolated = [triples[i] for i in doc["isolated"]]
        except (IndexError, KeyError, TypeError) as exc:
            raise SnapshotError(
                f"snapshot {fingerprint}: corrupt MLG serialization: {exc!r}"
            ) from exc
        mlg = MultiSourceLineGraph.restore(
            graph,
            min_sources=int(doc.get("min_sources", 2)),
            groups=groups,
            isolated=isolated,
        )
        return mlg, dict(manifest.get("mlg_stats", {}))

    @staticmethod
    def _read_json(path: Path, fingerprint: str) -> Any:
        try:
            return json.loads(path.read_text())
        except FileNotFoundError as exc:
            raise SnapshotError(
                f"snapshot {fingerprint}: missing {path.name} "
                f"(no snapshot, or an incomplete artifact)"
            ) from exc
        except (OSError, json.JSONDecodeError) as exc:
            raise SnapshotError(
                f"snapshot {fingerprint}: corrupt {path.name}: {exc}"
            ) from exc
