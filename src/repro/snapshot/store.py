"""On-disk snapshot store: serialize/restore a fully ingested pipeline.

Format v2 knows two kinds of content-addressed directory, both named by
their fingerprint (see :mod:`repro.snapshot.fingerprint`):

**Base snapshots** hold a complete ingested state, partitioned by the
substrate's entity-hash shards:

``manifest.json``
    format version, ``kind: "base"``, shard count, component counts,
    the source descriptors the state was built from.
``graph-meta.json`` / ``graph-shard-NN.json``
    the fused knowledge graph.  Entities and the graph name live in the
    meta file; triples are partitioned into one columnar file per shard
    (parallel ``idx`` / ``subject`` / ``predicate`` / ``obj`` /
    ``prov_id`` lists plus a per-shard deduplicated provenance table).
    ``idx`` carries each triple's *global insertion index*, so merging
    the shard files by index reproduces the exact order every secondary
    index and the MLG group enumeration derive from; the merged list is
    handed to :meth:`~repro.kg.graph.KnowledgeGraph.bulk_restore`.
``mlg-meta.json`` / ``mlg-shard-NN.json``
    homologous groups partitioned by the *group entity's* shard, in
    flattened columnar arrays (members and weights referenced by global
    triple index, per-group slices by offset arrays); each group carries
    its global position so the loader reassembles ``mlg.groups`` in the
    original order.  Isolated claims stay in the meta file.
``records.json`` / ``chunks.json``
    normalized records and the chunk corpus.
``retriever.json`` + ``vector_matrix.npy`` / ``vector_idf.npy``
    retrieval mode, the BM25 internals (impacts are recomputed on load),
    and the pre-normalized TF-IDF matrix, bit-exact via ``np.save``.
``history.json``
    the calibrated per-source credibility tallies.
``llm_cache.json`` (optional)
    the extraction cache of a :class:`~repro.llm.caching.CachingLLM`.

**Delta layers** record one ``add_source`` increment instead of a full
state.  A layer directory holds a manifest (``kind: "delta"``, the parent
fingerprint, the one source descriptor it adds) and ``layer.json`` (the
standardized triples the source contributed with their shard ids, its
chunks, its normalized record, and the post-update history state).
:meth:`SnapshotStore.load` follows parent pointers back to the base,
validates the *entire* chain up front — a missing or corrupt middle
layer raises :class:`~repro.errors.SnapshotError` naming that layer,
never a partial graph — then restores the base and replays each layer
through the same incremental code paths ``add_source`` used
(``bulk_append`` + ``MultiSourceLineGraph.add_triples``), rebuilding the
retrieval indexes once at the end.  :meth:`SnapshotStore.compact`
squashes a chain back into a base snapshot under the same fingerprint.

Writes are atomic at directory granularity: everything lands in a
``.tmp.<fingerprint>`` sibling first and is renamed into place with
``os.replace``, so a crashed save never leaves a half-written snapshot
where :meth:`SnapshotStore.has` would find it.  Overwrites displace the
previous snapshot to ``.old.<fingerprint>`` (another rename) before
installing the new one — a crash in between leaves the old state
recoverable rather than destroyed, and a failed install renames it back.
Dotted work-area names are invisible to :meth:`SnapshotStore.fingerprints`
and reclaimed by :meth:`SnapshotStore.gc`.

Floats survive exactly: JSON numbers round-trip ``float64`` through
``repr``, and numpy arrays travel in binary.  Dict insertion orders are
preserved end to end (JSON objects keep order), which is what makes a
warm-loaded pipeline byte-identical to the cold-built one.
"""

from __future__ import annotations

import contextlib
import json
import os
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

import numpy as np

from repro.adapters.fusion import FusionResult
from repro.confidence.history import HistoryStore
from repro.errors import GraphError, SnapshotError
from repro.kg.graph import KnowledgeGraph
from repro.kg.shard import ShardedKnowledgeGraph, shard_of
from repro.kg.storage import NormalizedRecord
from repro.kg.triple import Entity, Provenance, Triple
from repro.linegraph.homologous import HomologousGroup, HomologousNode
from repro.linegraph.mlg import MultiSourceLineGraph
from repro.obs.context import NOOP, Observability
from repro.retrieval.chunking import Chunk
from repro.retrieval.retriever import MultiSourceRetriever
from repro.snapshot.fingerprint import (
    SNAPSHOT_FORMAT_VERSION,
    SourceDescriptor,
)

#: hard ceiling on delta-chain length: a chain longer than this is a
#: corrupt store (a parent cycle survives at most this many hops before
#: the walk refuses), not a workload anyone compacts this rarely.
MAX_CHAIN_DEPTH = 4096


@dataclass(slots=True)
class LoadedState:
    """Everything a warm-loaded pipeline needs to resume serving queries.

    ``mlg`` is ``None`` when the snapshot was taken with MKA disabled;
    ``llm_cache`` is ``None`` when the saving pipeline had no caching
    wrapper around its LLM.  ``sources`` are the descriptors of the full
    corpus the state represents (base descriptors plus one per replayed
    layer); ``num_layers`` counts the delta layers replayed on top of
    the base (0 for a direct base load).
    """

    fingerprint: str
    fusion: FusionResult
    retriever: MultiSourceRetriever
    mlg: MultiSourceLineGraph | None
    history: HistoryStore
    llm_cache: dict[str, str] | None = None
    mlg_stats: dict[str, float] = field(default_factory=dict)
    sources: list[SourceDescriptor] = field(default_factory=list)
    num_layers: int = 0


class SnapshotStore:
    """Content-addressed directory of pipeline snapshots."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def _dir(self, fingerprint: str) -> Path:
        return self.root / fingerprint

    def has(self, fingerprint: str) -> bool:
        """True when a snapshot or delta layer exists for ``fingerprint``."""
        return (self._dir(fingerprint) / "manifest.json").is_file()

    def fingerprints(self) -> list[str]:
        """Fingerprints of every complete snapshot or layer, sorted.

        Dotted names are the store's work areas (``.tmp.<fp>`` staging
        and ``.old.<fp>`` displaced copies); a crash can leave one behind
        with a manifest inside, so they are never reported as snapshots.
        """
        if not self.root.is_dir():
            return []
        return sorted(
            p.name for p in self.root.iterdir()
            if p.is_dir()
            and not p.name.startswith(".")
            and (p / "manifest.json").is_file()
        )

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def gc(self) -> list[str]:
        """Prune orphaned work areas left behind by crashed writes.

        Removes every dotted sibling (``.tmp.*`` staging directories and
        ``.old.*`` displaced copies) under the store root.  Complete
        snapshots and layers are never touched.  Returns the names
        removed, sorted.

        Raises:
            SnapshotError: if a work area cannot be removed.
        """
        if not self.root.is_dir():
            return []
        removed: list[str] = []
        for p in sorted(self.root.iterdir()):
            if p.is_dir() and p.name.startswith("."):
                try:
                    shutil.rmtree(p)
                except OSError as exc:
                    raise SnapshotError(
                        f"snapshot gc: cannot remove work area {p.name}: {exc}"
                    ) from exc
                removed.append(p.name)
        return removed

    def size_of(self, fingerprint: str) -> int:
        """Total on-disk bytes of one snapshot/layer directory."""
        snap_dir = self._dir(fingerprint)
        if not snap_dir.is_dir():
            return 0
        return sum(
            f.stat().st_size for f in snap_dir.rglob("*") if f.is_file()
        )

    def manifest(self, fingerprint: str) -> dict[str, Any]:
        """The raw manifest of one snapshot/layer.

        Raises:
            SnapshotError: if the manifest is missing or corrupt.
        """
        return self._read_json(
            self._dir(fingerprint) / "manifest.json", fingerprint
        )

    def chain(self, fingerprint: str) -> list[dict[str, Any]]:
        """Manifests of ``fingerprint``'s layer chain, base first.

        A base snapshot yields a single-element list.  Used by the CLI's
        ``snapshot list``/``inspect`` and by :meth:`load`.

        Raises:
            SnapshotError: if any layer of the chain is missing or
                corrupt, names the broken layer; also on parent cycles.
        """
        manifests: list[dict[str, Any]] = []
        seen: set[str] = set()
        fp = fingerprint
        # repro-lint: loop-bound[MAX_CHAIN_DEPTH] — the walk refuses
        # chains deeper than the compaction-policy ceiling.
        for _depth in range(MAX_CHAIN_DEPTH + 1):
            if fp in seen:
                raise SnapshotError(
                    f"snapshot {fingerprint}: layer chain has a parent "
                    f"cycle at {fp}"
                )
            seen.add(fp)
            try:
                manifest = self.manifest(fp)
            except SnapshotError as exc:
                if fp == fingerprint:
                    raise
                raise SnapshotError(
                    f"snapshot {fingerprint}: layer chain broken at "
                    f"layer {fp}: {exc}"
                ) from exc
            self._check_version(manifest, fp)
            manifests.append(manifest)
            if manifest.get("kind", "base") != "delta":
                return list(reversed(manifests))
            parent = manifest.get("parent")
            if not isinstance(parent, str) or not parent:
                raise SnapshotError(
                    f"snapshot {fingerprint}: delta layer {fp} names no "
                    f"parent"
                )
            fp = parent
        raise SnapshotError(
            f"snapshot {fingerprint}: layer chain exceeds "
            f"{MAX_CHAIN_DEPTH} layers (parent loop or corrupt store)"
        )

    @staticmethod
    def _check_version(manifest: dict[str, Any], fingerprint: str) -> None:
        """
        Raises:
            SnapshotError: on a format-version mismatch, with migration
                guidance for pre-v2 artifacts.
        """
        version = manifest.get("format_version")
        if version == SNAPSHOT_FORMAT_VERSION:
            return
        hint = (
            " (pre-v2 snapshots cannot be migrated in place: re-ingest "
            "to write a fresh snapshot, then remove the old directory)"
            if isinstance(version, int) and version < SNAPSHOT_FORMAT_VERSION
            else ""
        )
        raise SnapshotError(
            f"snapshot {fingerprint} has format version {version!r}; "
            f"this build reads version {SNAPSHOT_FORMAT_VERSION}{hint}"
        )

    # ------------------------------------------------------------------
    # save
    # ------------------------------------------------------------------
    def save(
        self,
        fingerprint: str,
        *,
        fusion: FusionResult,
        retriever: MultiSourceRetriever,
        mlg: MultiSourceLineGraph | None,
        history: HistoryStore,
        llm_cache: dict[str, str] | None = None,
        sources: Sequence[SourceDescriptor] | None = None,
    ) -> Path:
        """Serialize one ingested pipeline state under ``fingerprint``.

        Returns the final snapshot directory.  The write is atomic: a
        temp directory is populated and renamed into place, replacing any
        previous snapshot for the same fingerprint.

        Raises:
            SnapshotError: if the snapshot directory cannot be written.
            GraphError: never in practice — triple sharding re-validates
                the shard count the graph was built with.
        """
        graph = fusion.graph
        triples = list(graph.triples())
        triple_index = {t: i for i, t in enumerate(triples)}
        n_shards = getattr(graph, "n_shards", 1)

        def _populate(tmp: Path) -> None:
            self._write_graph_files(tmp, graph, triples, n_shards)
            self._write_json(tmp / "records.json", [
                r.to_dict() for r in fusion.records
            ])
            self._write_json(tmp / "chunks.json", [
                self._chunk_doc(c) for c in fusion.chunks
            ])
            self._write_mlg_files(tmp, mlg, triples, triple_index, n_shards)

            retriever_state = retriever.export_state()
            _, matrix, idf = retriever._dense.export_state()
            self._write_json(tmp / "retriever.json", retriever_state)
            np.save(tmp / "vector_idf.npy", idf, allow_pickle=False)
            if matrix is not None:
                np.save(tmp / "vector_matrix.npy", matrix, allow_pickle=False)

            self._write_json(tmp / "history.json", history.export_state())
            if llm_cache is not None:
                self._write_json(tmp / "llm_cache.json", llm_cache)

            self._write_json(tmp / "manifest.json", {
                "format_version": SNAPSHOT_FORMAT_VERSION,
                "kind": "base",
                "fingerprint": fingerprint,
                "n_shards": n_shards,
                "fusion": {
                    "build_time_s": fusion.build_time_s,
                    "extraction_calls": fusion.extraction_calls,
                },
                "counts": {
                    "triples": len(triples),
                    "entities": graph.num_entities(),
                    "chunks": len(fusion.chunks),
                    "records": len(fusion.records),
                    "groups": len(mlg.groups) if mlg else 0,
                },
                "has_llm_cache": llm_cache is not None,
                "has_matrix": matrix is not None,
                "mlg_stats": mlg.stats() if mlg else {},
                "sources": [d.to_doc() for d in sources or []],
            })

        return self._install(fingerprint, _populate)

    def save_layer(
        self,
        fingerprint: str,
        *,
        parent: str,
        descriptor: SourceDescriptor,
        record: NormalizedRecord | None,
        triples: list[Triple],
        chunks: list[Chunk],
        history: HistoryStore,
        extraction_calls: int = 0,
        mlg_update: dict[str, int] | None = None,
        mlg_stats: dict[str, float] | None = None,
    ) -> Path:
        """Append one ``add_source`` increment as a content-addressed layer.

        ``triples`` are the standardized claims the source actually added
        (post-deduplication, in graph insertion order), ``chunks`` its
        chunk contribution, ``history`` the *post-update* history state
        (small, so each layer carries it whole — the tip layer's copy
        wins on load).  The layer's cost is proportional to the new
        source, never the corpus.

        Raises:
            SnapshotError: if ``parent`` does not exist in the store, or
                the layer directory cannot be written.
            GraphError: never in practice — triple sharding re-validates
                the base snapshot's shard count.
        """
        if not self.has(parent):
            raise SnapshotError(
                f"cannot write layer {fingerprint}: parent snapshot "
                f"{parent} is not in the store"
            )
        n_shards = self._chain_n_shards(parent)

        def _populate(tmp: Path) -> None:
            self._write_json(tmp / "layer.json", {
                "triples": self._triple_cols(triples, n_shards),
                "chunks": [self._chunk_doc(c) for c in chunks],
                "record": record.to_dict() if record is not None else None,
                "history": history.export_state(),
            })
            self._write_json(tmp / "manifest.json", {
                "format_version": SNAPSHOT_FORMAT_VERSION,
                "kind": "delta",
                "fingerprint": fingerprint,
                "parent": parent,
                "n_shards": n_shards,
                "source": descriptor.to_doc(),
                "counts": {
                    "triples": len(triples),
                    "chunks": len(chunks),
                },
                "extraction_calls": extraction_calls,
                "mlg_update": dict(mlg_update or {}),
                "mlg_stats": dict(mlg_stats or {}),
            })

        return self._install(fingerprint, _populate)

    def compact(self, fingerprint: str) -> Path:
        """Squash ``fingerprint``'s layer chain into a base snapshot.

        Loads the fused state through the layer chain and re-saves it as
        a self-contained base under the *same* fingerprint (atomically
        replacing the tip layer).  Earlier chain members are untouched —
        they remain valid snapshots/chains of their own prefixes.  A
        fingerprint that is already a base is re-saved in place, which is
        a no-op semantically.

        Raises:
            SnapshotError: if the chain is missing/corrupt, or the
                compacted snapshot cannot be written.
            GraphError: never in practice — the re-save re-validates the
                loaded graph's shard count.
        """
        state = self.load(fingerprint)
        return self.save(
            fingerprint,
            fusion=state.fusion,
            retriever=state.retriever,
            mlg=state.mlg,
            history=state.history,
            llm_cache=state.llm_cache,
            sources=state.sources,
        )

    def _chain_n_shards(self, fingerprint: str) -> int:
        """The shard count of ``fingerprint``'s base snapshot.

        Raises:
            SnapshotError: if the chain is missing or corrupt.
        """
        base = self.chain(fingerprint)[0]
        return int(base.get("n_shards", 1))

    def _install(
        self, fingerprint: str, populate: Callable[[Path], None]
    ) -> Path:
        """Atomically install a directory written by ``populate``.

        Raises:
            SnapshotError: if the directory cannot be written or renamed
                into place.
        """
        tmp = self.root / f".tmp.{fingerprint}"
        old = self.root / f".old.{fingerprint}"
        final = self._dir(fingerprint)
        try:
            if tmp.exists():
                shutil.rmtree(tmp)
            if old.exists():
                shutil.rmtree(old)
            tmp.mkdir(parents=True)
            populate(tmp)
            # Overwrite without a window where no valid snapshot exists:
            # displace the previous copy aside (rename, atomic) before
            # installing the new one, then discard it.  A crash between
            # the two renames leaves the old state recoverable under
            # ``.old.<fp>`` instead of destroyed.
            if final.exists():
                os.replace(final, old)
            os.replace(tmp, final)
            if old.exists():
                shutil.rmtree(old)
        except OSError as exc:
            # A failed install must not lose the previous snapshot: put
            # the displaced copy back if the new one never landed.
            if old.exists() and not final.exists():
                with contextlib.suppress(OSError):
                    os.replace(old, final)
            raise SnapshotError(
                f"cannot write snapshot {fingerprint} under {self.root}: {exc}"
            ) from exc
        finally:
            if tmp.exists():
                shutil.rmtree(tmp, ignore_errors=True)
        return final

    # -- columnar serialization helpers --------------------------------
    @staticmethod
    def _chunk_doc(c: Chunk) -> dict[str, Any]:
        return {
            "chunk_id": c.chunk_id,
            "source_id": c.source_id,
            "doc_id": c.doc_id,
            "seq": c.seq,
            "text": c.text,
            "meta": [list(pair) for pair in c.meta],
        }

    @staticmethod
    def _chunk_from_doc(doc: dict[str, Any]) -> Chunk:
        return Chunk(
            chunk_id=doc["chunk_id"],
            source_id=doc["source_id"],
            doc_id=doc["doc_id"],
            seq=int(doc["seq"]),
            text=doc["text"],
            meta=tuple(tuple(pair) for pair in doc.get("meta", [])),
        )

    @staticmethod
    def _triple_cols(
        triples: list[Triple], n_shards: int, indexes: list[int] | None = None
    ) -> dict[str, Any]:
        """Columnar triple arrays with a deduplicated provenance table.

        All triples extracted from one source record share a single
        :class:`Provenance` value, so the side table is typically an
        order of magnitude smaller than the triple list; ``prov_id`` is
        ``-1`` for provenance-free triples.  ``indexes`` (the triples'
        global insertion positions) rides along for shard files.
        """
        subjects: list[str] = []
        predicates: list[str] = []
        objs: list[str] = []
        prov_ids: list[int] = []
        shards: list[int] = []
        prov_index: dict[Provenance, int] = {}
        for t in triples:
            subjects.append(t.subject)
            predicates.append(t.predicate)
            objs.append(t.obj)
            shards.append(shard_of(t.subject, n_shards))
            prov = t.provenance
            if prov is None:
                prov_ids.append(-1)
            else:
                prov_ids.append(prov_index.setdefault(prov, len(prov_index)))
        doc: dict[str, Any] = {
            "subject": subjects,
            "predicate": predicates,
            "obj": objs,
            "prov_id": prov_ids,
            "shard": shards,
            "prov_table": [
                [p.source_id, p.domain, p.fmt, p.chunk_id, p.record_id,
                 p.observed_at]
                for p in prov_index
            ],
        }
        if indexes is not None:
            doc["idx"] = indexes
        return doc

    @staticmethod
    def _triples_from_cols(cols: dict[str, Any]) -> list[Triple]:
        """Inverse of :meth:`_triple_cols` (without global indexes).

        Raises:
            KeyError: if a required column is missing.
            IndexError: if a ``prov_id`` points outside the side table.
        """
        provs = [
            Provenance(
                source_id=row[0], domain=row[1], fmt=row[2],
                chunk_id=row[3], record_id=row[4], observed_at=row[5],
            )
            for row in cols.get("prov_table", [])
        ]
        return [
            Triple(s, p, o, provs[pid] if pid >= 0 else None)
            for s, p, o, pid in zip(
                cols["subject"], cols["predicate"], cols["obj"],
                cols["prov_id"],
            )
        ]

    def _write_graph_files(
        self,
        tmp: Path,
        graph: KnowledgeGraph,
        triples: list[Triple],
        n_shards: int,
    ) -> None:
        """One columnar triple file per shard plus the shared meta file."""
        shard_triples: list[list[Triple]] = [[] for _ in range(n_shards)]
        shard_indexes: list[list[int]] = [[] for _ in range(n_shards)]
        for idx, t in enumerate(triples):
            shard = shard_of(t.subject, n_shards)
            shard_triples[shard].append(t)
            shard_indexes[shard].append(idx)
        for shard in range(n_shards):
            self._write_json(
                tmp / f"graph-shard-{shard:02d}.json",
                self._triple_cols(
                    shard_triples[shard], n_shards, shard_indexes[shard]
                ),
            )
        self._write_json(tmp / "graph-meta.json", {
            "name": graph.name,
            "n_shards": n_shards,
            "num_triples": len(triples),
            "entities": [e.to_dict() for e in graph.entities()],
        })

    def _write_mlg_files(
        self,
        tmp: Path,
        mlg: MultiSourceLineGraph | None,
        triples: list[Triple],
        triple_index: dict[Triple, int],
        n_shards: int,
    ) -> None:
        """Per-shard homologous-group files plus the shared meta file.

        Groups are partitioned by their entity's shard; each shard file
        flattens its groups' members and weights into shared arrays
        sliced by offset (``member_off[g] : member_off[g + 1]``) and
        records every group's global position (``order``), so the loader
        sees a handful of long arrays per shard and reassembles the
        global group list exactly.
        """
        if mlg is None:
            self._write_json(tmp / "mlg-meta.json", {"enabled": False})
            return
        per_shard = mlg.shard_partition(n_shards)
        for shard in range(n_shards):
            keys: list[list[str]] = []
            snodes: list[list[Any]] = []
            order: list[int] = []
            member_idx: list[int] = []
            member_off = [0]
            weight_idx: list[int] = []
            weight_val: list[float] = []
            weight_off = [0]
            for gi in per_shard[shard]:
                g = mlg.groups[gi]
                order.append(gi)
                keys.append([g.key[0], g.key[1]])
                s = g.snode
                snodes.append(
                    [s.name, s.entity, dict(s.meta), s.num, s.confidence]
                )
                member_idx.extend(triple_index[m] for m in g.members)
                member_off.append(len(member_idx))
                for t, w in g.weights.items():
                    weight_idx.append(triple_index[t])
                    weight_val.append(w)
                weight_off.append(len(weight_idx))
            self._write_json(tmp / f"mlg-shard-{shard:02d}.json", {
                "order": order,
                "keys": keys,
                "snodes": snodes,
                "member_idx": member_idx,
                "member_off": member_off,
                "weight_idx": weight_idx,
                "weight_val": weight_val,
                "weight_off": weight_off,
            })
        self._write_json(tmp / "mlg-meta.json", {
            "enabled": True,
            "min_sources": mlg.min_sources,
            "num_groups": len(mlg.groups),
            "isolated": [triple_index[t] for t in mlg.isolated],
        })

    @staticmethod
    def _write_json(path: Path, payload: Any) -> None:
        path.write_text(json.dumps(payload, ensure_ascii=False))

    # ------------------------------------------------------------------
    # load
    # ------------------------------------------------------------------
    def load(
        self, fingerprint: str, obs: Observability | None = None
    ) -> LoadedState:
        """Restore the complete ingested state saved under ``fingerprint``.

        A base snapshot restores directly; a delta layer restores its
        whole chain (base first, then each layer's increment replayed
        through the same incremental paths ``add_source`` used).  ``obs``
        is bound to the restored retriever (telemetry only; it does not
        affect the restored data).

        Raises:
            SnapshotError: if no snapshot exists for ``fingerprint``, any
                layer of its chain is missing or corrupt (the error names
                the broken layer), or it was written by an incompatible
                snapshot format version.
        """
        manifests = self.chain(fingerprint)
        base_manifest = manifests[0]
        layer_manifests = manifests[1:]

        # Validate and decode every layer payload *before* touching any
        # state: a corrupt middle layer must fail the whole load, never
        # yield a partially replayed graph.
        layers: list[dict[str, Any]] = []
        for manifest in layer_manifests:
            fp = str(manifest.get("fingerprint", ""))
            doc = self._read_json(self._dir(fp) / "layer.json", fp)
            try:
                layer_triples = self._triples_from_cols(doc["triples"])
                layer_chunks = [
                    self._chunk_from_doc(c) for c in doc["chunks"]
                ]
                record_doc = doc.get("record")
                record = (
                    NormalizedRecord.from_dict(record_doc)
                    if record_doc is not None else None
                )
                history_doc = doc["history"]
            except (IndexError, KeyError, TypeError) as exc:
                raise SnapshotError(
                    f"snapshot {fingerprint}: corrupt layer {fp}: {exc!r}"
                ) from exc
            layers.append({
                "fingerprint": fp,
                "manifest": manifest,
                "triples": layer_triples,
                "chunks": layer_chunks,
                "record": record,
                "history": history_doc,
            })

        state = self._load_base(base_manifest, obs=obs)
        if not layers:
            return state

        fusion = state.fusion
        graph = fusion.graph
        descriptors = list(state.sources)
        for layer in layers:
            fp = layer["fingerprint"]
            manifest = layer["manifest"]
            layer_triples = layer["triples"]
            try:
                graph.bulk_append(layer_triples)
            except GraphError as exc:
                raise SnapshotError(
                    f"snapshot {fingerprint}: layer {fp} does not extend "
                    f"its base: {exc}"
                ) from exc
            for t in layer_triples:
                if not graph.has_entity(t.subject):
                    graph.add_entity(Entity(eid=t.subject, name=t.subject))
                graph.entity(t.subject).add_attribute(t.predicate, t.obj)
            if layer["record"] is not None:
                fusion.records.append(layer["record"])
            fusion.chunks.extend(layer["chunks"])
            fusion.extraction_calls += int(manifest.get("extraction_calls", 0))
            if state.mlg is not None:
                state.mlg.add_triples(layer_triples)
            source_doc = manifest.get("source")
            if isinstance(source_doc, dict):
                try:
                    descriptors.append(SourceDescriptor.from_doc(source_doc))
                except KeyError as exc:
                    raise SnapshotError(
                        f"snapshot {fingerprint}: layer {fp} has a "
                        f"malformed source descriptor: missing {exc}"
                    ) from exc

        # One index rebuild over the fused corpus — the same final state
        # add_source's per-call rebuilds converge to.
        state.retriever.add_chunks(
            [c for layer in layers for c in layer["chunks"]]
        )
        state.retriever.build()
        state.history = HistoryStore().restore_state(layers[-1]["history"])

        tip_manifest = layers[-1]["manifest"]
        state.fingerprint = fingerprint
        state.mlg_stats = dict(tip_manifest.get("mlg_stats", {}))
        state.sources = descriptors
        state.num_layers = len(layers)
        return state

    def _load_base(
        self, manifest: dict[str, Any], obs: Observability | None = None
    ) -> LoadedState:
        """Restore one base snapshot from its (already read) manifest.

        Raises:
            SnapshotError: if the artifact is corrupt or incomplete.
        """
        fingerprint = str(manifest.get("fingerprint", ""))
        snap_dir = self._dir(fingerprint)
        n_shards = int(manifest.get("n_shards", 1))

        graph, triples = self._restore_graph(snap_dir, fingerprint, n_shards)

        records = [
            NormalizedRecord.from_dict(doc)
            for doc in self._read_json(snap_dir / "records.json", fingerprint)
        ]
        chunks = [
            self._chunk_from_doc(doc)
            for doc in self._read_json(snap_dir / "chunks.json", fingerprint)
        ]
        fusion = FusionResult(
            graph=graph,
            records=records,
            chunks=chunks,
            build_time_s=float(manifest["fusion"]["build_time_s"]),
            extraction_calls=int(manifest["fusion"]["extraction_calls"]),
        )

        retriever_state = self._read_json(
            snap_dir / "retriever.json", fingerprint
        )
        try:
            idf = np.load(snap_dir / "vector_idf.npy", allow_pickle=False)
            matrix = (
                np.load(snap_dir / "vector_matrix.npy", allow_pickle=False)
                if manifest.get("has_matrix")
                else None
            )
        except (OSError, ValueError) as exc:
            raise SnapshotError(
                f"snapshot {fingerprint}: corrupt dense-index arrays: {exc}"
            ) from exc
        retriever = MultiSourceRetriever(obs=obs if obs is not None else NOOP)
        retriever.restore_state(chunks, retriever_state, matrix, idf)

        mlg, mlg_stats = self._restore_mlg(
            snap_dir, fingerprint, graph, triples, manifest, n_shards
        )

        history = HistoryStore().restore_state(
            self._read_json(snap_dir / "history.json", fingerprint)
        )

        llm_cache = None
        if manifest.get("has_llm_cache"):
            llm_cache = self._read_json(
                snap_dir / "llm_cache.json", fingerprint
            )

        sources: list[SourceDescriptor] = []
        for doc in manifest.get("sources", []):
            try:
                sources.append(SourceDescriptor.from_doc(doc))
            except (KeyError, TypeError) as exc:
                raise SnapshotError(
                    f"snapshot {fingerprint}: malformed source descriptor "
                    f"in manifest: {exc!r}"
                ) from exc

        return LoadedState(
            fingerprint=fingerprint,
            fusion=fusion,
            retriever=retriever,
            mlg=mlg,
            history=history,
            llm_cache=llm_cache,
            mlg_stats=dict(manifest.get("mlg_stats", {})),
            sources=sources,
            num_layers=0,
        )

    def _restore_graph(
        self, snap_dir: Path, fingerprint: str, n_shards: int
    ) -> tuple[KnowledgeGraph, list[Triple]]:
        """Merge the per-shard triple files and bulk-load the graph.

        Each shard file carries its triples' global insertion indexes;
        scattering every shard's triples into one list by index restores
        the saving graph's exact insertion order, so
        :meth:`KnowledgeGraph.bulk_restore` reproduces every secondary
        index without re-running per-triple deduplication.

        Raises:
            SnapshotError: if any shard file or the meta file is missing
                or corrupt (the error names the file).
        """
        meta = self._read_json(snap_dir / "graph-meta.json", fingerprint)
        try:
            num_triples = int(meta["num_triples"])
            entities = [
                Entity.from_dict(edoc) for edoc in meta.get("entities", [])
            ]
            merged: list[Triple | None] = [None] * num_triples
            for shard in range(n_shards):
                shard_name = f"graph-shard-{shard:02d}.json"
                cols = self._read_json(snap_dir / shard_name, fingerprint)
                shard_triples = self._triples_from_cols(cols)
                for idx, triple in zip(cols["idx"], shard_triples):
                    merged[idx] = triple
            if any(t is None for t in merged):
                raise SnapshotError(
                    f"snapshot {fingerprint}: graph shard files do not "
                    f"cover all {num_triples} triples"
                )
            triples: list[Triple] = merged  # type: ignore[assignment]
            if n_shards > 1:
                graph: KnowledgeGraph = ShardedKnowledgeGraph(
                    name=meta.get("name", "fused"), n_shards=n_shards
                )
            else:
                graph = KnowledgeGraph(name=meta.get("name", "fused"))
            graph.bulk_restore(triples, entities)
        except (GraphError, IndexError, KeyError, TypeError, ValueError) as exc:
            # SnapshotError (raised by _read_json and the coverage check)
            # is not in this tuple, so it propagates with its own message.
            raise SnapshotError(
                f"snapshot {fingerprint}: corrupt graph serialization: {exc!r}"
            ) from exc
        return graph, triples

    def _restore_mlg(
        self,
        snap_dir: Path,
        fingerprint: str,
        graph: KnowledgeGraph,
        triples: list[Triple],
        manifest: dict[str, Any],
        n_shards: int,
    ) -> tuple[MultiSourceLineGraph | None, dict[str, float]]:
        """Merge the per-shard group files back into global group order.

        Raises:
            SnapshotError: if any shard file or the meta file is missing
                or corrupt.
        """
        meta = self._read_json(snap_dir / "mlg-meta.json", fingerprint)
        if not meta.get("enabled"):
            return None, {}
        try:
            num_groups = int(meta["num_groups"])
            merged: list[HomologousGroup | None] = [None] * num_groups
            for shard in range(n_shards):
                shard_name = f"mlg-shard-{shard:02d}.json"
                doc = self._read_json(snap_dir / shard_name, fingerprint)
                member_idx = doc["member_idx"]
                member_off = doc["member_off"]
                weight_idx = doc["weight_idx"]
                weight_val = doc["weight_val"]
                weight_off = doc["weight_off"]
                for gi, (pos, key, sdoc) in enumerate(zip(
                    doc["order"], doc["keys"], doc["snodes"]
                )):
                    snode = HomologousNode(
                        name=sdoc[0],
                        entity=sdoc[1],
                        meta=dict(sdoc[2]),
                        num=int(sdoc[3]),
                        confidence=sdoc[4],
                    )
                    members = [
                        triples[i]
                        for i in member_idx[member_off[gi]:member_off[gi + 1]]
                    ]
                    group = HomologousGroup(
                        key=(key[0], key[1]), snode=snode, members=members
                    )
                    weights = group.weights
                    for i, w in zip(
                        weight_idx[weight_off[gi]:weight_off[gi + 1]],
                        weight_val[weight_off[gi]:weight_off[gi + 1]],
                    ):
                        weights[triples[i]] = float(w)
                    merged[pos] = group
            if any(g is None for g in merged):
                raise SnapshotError(
                    f"snapshot {fingerprint}: MLG shard files do not "
                    f"cover all {num_groups} groups"
                )
            groups: list[HomologousGroup] = merged  # type: ignore[assignment]
            isolated = [triples[i] for i in meta["isolated"]]
        except (IndexError, KeyError, TypeError, ValueError) as exc:
            raise SnapshotError(
                f"snapshot {fingerprint}: corrupt MLG serialization: {exc!r}"
            ) from exc
        mlg = MultiSourceLineGraph.restore(
            graph,
            min_sources=int(meta.get("min_sources", 2)),
            groups=groups,
            isolated=isolated,
        )
        return mlg, dict(manifest.get("mlg_stats", {}))

    @staticmethod
    def _read_json(path: Path, fingerprint: str) -> Any:
        try:
            return json.loads(path.read_text())
        except FileNotFoundError as exc:
            raise SnapshotError(
                f"snapshot {fingerprint}: missing {path.name} "
                f"(no snapshot, or an incomplete artifact)"
            ) from exc
        except (OSError, json.JSONDecodeError) as exc:
            raise SnapshotError(
                f"snapshot {fingerprint}: corrupt {path.name}: {exc}"
            ) from exc
