"""Persistent pipeline snapshots (ingest once, query fast).

Knowledge construction — LLM extraction, fusion, index builds — is by far
the most expensive phase of the pipeline, yet it is a pure function of
(sources, config, LLM identity).  This package serializes the complete
ingested state into a content-addressed, versioned on-disk artifact so
subsequent processes warm-load it instead of rebuilding:

* :func:`~repro.snapshot.fingerprint.compute_fingerprint` keys a snapshot
  by source-content hashes, config and LLM identity, and the snapshot
  format version;
* :class:`~repro.snapshot.store.SnapshotStore` saves/loads the artifact
  atomically (see :mod:`repro.snapshot.store` for the layout);
* ``MultiRAG.ingest(sources, snapshot=...)`` wires both into the
  pipeline: fingerprint hit → warm load, miss → cold build + save.

Format v2 adds *delta layers*: ``MultiRAG.add_source`` appends a
content-addressed layer (one source descriptor plus the shard-partitioned
increments it produced) instead of invalidating the whole fingerprint.
:meth:`~repro.snapshot.store.SnapshotStore.load` walks the layer chain
back to its base and replays each layer;
:meth:`~repro.snapshot.store.SnapshotStore.compact` squashes a chain back
into a base snapshot offline.

A warm-loaded pipeline is byte-identical to the cold-built one — same
rankings, same ``EvaluationReport.to_json(drop_timing=True)`` — which the
snapshot test suite and ``benchmarks/test_perf_hotpath.py`` pin; the
layered load is pinned to the cold full ingest of the combined corpus the
same way.
"""

from repro.snapshot.fingerprint import (
    SNAPSHOT_FORMAT_VERSION,
    SourceDescriptor,
    compute_fingerprint,
    describe_source,
    fingerprint_from_descriptors,
    payload_digest,
)
from repro.snapshot.store import LoadedState, SnapshotStore

__all__ = [
    "SNAPSHOT_FORMAT_VERSION",
    "LoadedState",
    "SnapshotStore",
    "SourceDescriptor",
    "compute_fingerprint",
    "describe_source",
    "fingerprint_from_descriptors",
    "payload_digest",
]
