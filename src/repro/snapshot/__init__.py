"""Persistent pipeline snapshots (ingest once, query fast).

Knowledge construction — LLM extraction, fusion, index builds — is by far
the most expensive phase of the pipeline, yet it is a pure function of
(sources, config, LLM identity).  This package serializes the complete
ingested state into a content-addressed, versioned on-disk artifact so
subsequent processes warm-load it instead of rebuilding:

* :func:`~repro.snapshot.fingerprint.compute_fingerprint` keys a snapshot
  by source-content hashes, config and LLM identity, and the snapshot
  format version;
* :class:`~repro.snapshot.store.SnapshotStore` saves/loads the artifact
  atomically (see :mod:`repro.snapshot.store` for the layout);
* ``MultiRAG.ingest(sources, snapshot=...)`` wires both into the
  pipeline: fingerprint hit → warm load, miss → cold build + save.

A warm-loaded pipeline is byte-identical to the cold-built one — same
rankings, same ``EvaluationReport.to_json(drop_timing=True)`` — which the
snapshot test suite and ``benchmarks/test_perf_hotpath.py`` pin.
"""

from repro.snapshot.fingerprint import (
    SNAPSHOT_FORMAT_VERSION,
    compute_fingerprint,
    payload_digest,
)
from repro.snapshot.store import LoadedState, SnapshotStore

__all__ = [
    "SNAPSHOT_FORMAT_VERSION",
    "LoadedState",
    "SnapshotStore",
    "compute_fingerprint",
    "payload_digest",
]
