"""Unstructured-text adapter.

Text sources are "stored directly" (paper §III-B); their knowledge is only
recovered later by the LLM entity/relationship extraction over chunks.  The
adapter therefore emits no triples of its own — just the normalized JSON-LD
wrapper and the raw documents for the chunker + extractor downstream.
"""

from __future__ import annotations

from repro.adapters.base import Adapter, AdapterOutput, RawSource, register_adapter
from repro.errors import AdapterError
from repro.kg.storage import NormalizedRecord


class UnstructuredAdapter(Adapter):
    """Plain text (or a list of named text documents)."""

    fmt = "text"

    def parse(self, raw: RawSource) -> AdapterOutput:
        """Wrap raw text payloads as retrievable documents.

        Raises:
            AdapterError: if the payload is neither text nor a mapping of
                named documents.
        """
        payload = raw.payload
        if isinstance(payload, str):
            documents = [(f"{raw.source_id}:{raw.name}", payload)]
        elif isinstance(payload, dict):
            documents = [
                (f"{raw.source_id}:{doc_id}", str(text))
                for doc_id, text in payload.items()
            ]
        else:
            raise AdapterError(
                f"text adapter expects str or dict payload in source "
                f"{raw.source_id!r}, got {type(payload).__name__}"
            )
        record = NormalizedRecord(
            record_id=f"norm:{raw.source_id}:{raw.name}",
            domain=raw.domain,
            name=raw.name,
            jsonld={"@graph": [{"@id": doc_id, "text": text}
                               for doc_id, text in documents]},
            meta=dict(raw.meta),
        )
        return AdapterOutput(record=record, triples=[], documents=documents)

    def span_attributes(
        self, raw: RawSource, output: AdapterOutput
    ) -> dict[str, object]:
        attrs = super().span_attributes(raw, output)
        attrs["num_chars"] = sum(len(text) for _, text in output.documents)
        # Triples arrive only later, from the LLM extractor over chunks.
        attrs["deferred_extraction"] = True
        return attrs


register_adapter(UnstructuredAdapter())
