"""Structured (tabular / CSV) adapter with a Decomposition Storage Model.

Per paper §III-B, structured files are stored in JSON with their attribute
variables managed columnar-style (DSM): the normalized record carries a
``cols_index`` mapping every column to its full value list, enabling O(1)
attribute scans during consistency checks.

CSV conventions understood here (and emitted by the dataset generators):

* first column names the entity, remaining columns are attributes;
* a cell may hold several values separated by ``;`` (multi-valued
  attributes such as a movie's directors);
* empty cells mean "this source says nothing", not "empty value".
"""

from __future__ import annotations

import csv
import io

from repro.adapters.base import Adapter, AdapterOutput, RawSource, register_adapter
from repro.errors import AdapterError
from repro.kg.storage import NormalizedRecord, make_jsonld
from repro.kg.triple import Triple
from repro.llm.lexicon import verbalize


def split_cell(cell: str) -> list[str]:
    """Split a (possibly multi-valued) CSV cell into clean values."""
    return [v.strip() for v in cell.split(";") if v.strip()]


class StructuredAdapter(Adapter):
    """CSV → JSON-LD + DSM column index + triples + verbalized documents."""

    fmt = "csv"

    def parse(self, raw: RawSource) -> AdapterOutput:
        """Normalize a CSV table into DSM columns and triples.

        Raises:
            AdapterError: if the payload is not text, is empty, or lacks an
                entity column.
        """
        if not isinstance(raw.payload, str):
            raise AdapterError(
                f"csv adapter expects text payload, got {type(raw.payload).__name__}"
            )
        reader = csv.reader(io.StringIO(raw.payload))
        try:
            header = next(reader)
        except StopIteration:
            raise AdapterError(f"empty CSV payload in source {raw.source_id!r}") from None
        if len(header) < 2:
            raise AdapterError(
                f"CSV source {raw.source_id!r} needs an entity column plus "
                f"at least one attribute column, got header {header!r}"
            )

        entity_col, *attr_cols = [h.strip() for h in header]
        cols_index: dict[str, list[str]] = {col: [] for col in header}
        triples: list[Triple] = []
        rows_jsonld: list[dict[str, object]] = []
        doc_lines: list[str] = []

        for row_num, row in enumerate(reader):
            if not row or all(not c.strip() for c in row):
                continue
            if len(row) != len(header):
                raise AdapterError(
                    f"CSV source {raw.source_id!r} row {row_num} has "
                    f"{len(row)} cells, expected {len(header)}"
                )
            entity = row[0].strip()
            if not entity:
                continue
            cols_index[entity_col].append(entity)
            props: dict[str, object] = {}
            provenance = raw.provenance(record_id=f"row{row_num}")
            for col, cell in zip(attr_cols, row[1:]):
                values = split_cell(cell)
                cols_index[col].extend(values)
                if values:
                    props[col] = values if len(values) > 1 else values[0]
                for value in values:
                    triples.append(Triple(entity, col, value, provenance))
                    doc_lines.append(verbalize(entity, col, value))
            rows_jsonld.append(make_jsonld(entity, props))

        record = NormalizedRecord(
            record_id=f"norm:{raw.source_id}:{raw.name}",
            domain=raw.domain,
            name=raw.name,
            jsonld={"@context": rows_jsonld[0]["@context"] if rows_jsonld else "",
                    "@graph": rows_jsonld},
            meta=dict(raw.meta),
            cols_index=cols_index,
        )
        documents = [(f"{raw.source_id}:{raw.name}", " ".join(doc_lines))]
        return AdapterOutput(record=record, triples=triples, documents=documents)

    def span_attributes(
        self, raw: RawSource, output: AdapterOutput
    ) -> dict[str, object]:
        attrs = super().span_attributes(raw, output)
        index = output.record.cols_index or {}
        attrs["num_columns"] = len(index)
        attrs["num_rows"] = len(output.record.jsonld.get("@graph", []))
        return attrs


register_adapter(StructuredAdapter())
