"""Native knowledge-graph adapter: payloads that already carry triples."""

from __future__ import annotations

from repro.adapters.base import Adapter, AdapterOutput, RawSource, register_adapter
from repro.errors import AdapterError
from repro.kg.storage import NormalizedRecord, triple_to_jsonld
from repro.kg.triple import Triple
from repro.llm.lexicon import verbalize


class KgAdapter(Adapter):
    """``{"triples": [[s, p, o], ...]}`` payloads (pre-built KG exports)."""

    fmt = "kg"

    def parse(self, raw: RawSource) -> AdapterOutput:
        """Parse a pre-built KG export into triples.

        Raises:
            AdapterError: if the payload is not a triples dict or a triple
                is malformed.
        """
        payload = raw.payload
        if not isinstance(payload, dict) or "triples" not in payload:
            raise AdapterError(
                f"kg adapter expects a dict with a 'triples' key in source "
                f"{raw.source_id!r}"
            )
        triples: list[Triple] = []
        doc_lines: list[str] = []
        for i, spo in enumerate(payload["triples"]):
            if len(spo) != 3:
                raise AdapterError(
                    f"kg source {raw.source_id!r} triple {i} must have "
                    f"exactly 3 elements, got {spo!r}"
                )
            subject, predicate, obj = (str(x).strip() for x in spo)
            if not (subject and predicate and obj):
                continue
            triple = Triple(subject, predicate, obj, raw.provenance(record_id=f"t{i}"))
            triples.append(triple)
            doc_lines.append(verbalize(subject, predicate, obj))
        record = NormalizedRecord(
            record_id=f"norm:{raw.source_id}:{raw.name}",
            domain=raw.domain,
            name=raw.name,
            jsonld={"@graph": [triple_to_jsonld(t) for t in triples]},
            meta=dict(raw.meta),
        )
        documents = [(f"{raw.source_id}:{raw.name}", " ".join(doc_lines))]
        return AdapterOutput(record=record, triples=triples, documents=documents)

    def span_attributes(
        self, raw: RawSource, output: AdapterOutput
    ) -> dict[str, object]:
        attrs = super().span_attributes(raw, output)
        declared = raw.payload.get("triples", []) if isinstance(raw.payload, dict) else []
        attrs["declared_triples"] = len(declared)
        attrs["skipped_triples"] = len(declared) - len(output.triples)
        return attrs


register_adapter(KgAdapter())
