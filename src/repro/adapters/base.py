"""Adapter framework for multi-source data fusion (paper §III-B).

Every distinct storage format gets its own adapter (Definition 1); an
adapter turns one :class:`RawSource` into:

* a :class:`~repro.kg.storage.NormalizedRecord` — the JSON-LD normalized
  form, with a DSM column index for columnar formats;
* deterministic triples, for formats whose structure already carries them
  (CSV / JSON / XML / native KG);
* text documents, for every format — the verbalized view that feeds the
  chunk corpus shared by all retrieval baselines.  Unstructured text has
  *only* this view; its triples are recovered later by the LLM extractor.

Adapters register themselves in :data:`ADAPTER_REGISTRY` keyed by format
name, which is how the fusion engine implements
``D_Fusion = ⋃ A_i(D_i)`` (Eq. 2).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

from repro.errors import UnknownFormatError
from repro.kg.storage import NormalizedRecord
from repro.kg.triple import Provenance, Triple


@dataclass(slots=True)
class RawSource:
    """One raw data file before normalization: ``{d, name, c, meta}``."""

    source_id: str
    domain: str
    fmt: str
    name: str
    payload: Any
    meta: dict[str, Any] = field(default_factory=dict)

    def provenance(self, record_id: str | None = None) -> Provenance:
        observed = self.meta.get("observed_at")
        return Provenance(
            source_id=self.source_id,
            domain=self.domain,
            fmt=self.fmt,
            record_id=record_id,
            observed_at=float(observed) if observed is not None else None,
        )


@dataclass(slots=True)
class AdapterOutput:
    """Everything one adapter produced from one raw source."""

    record: NormalizedRecord
    triples: list[Triple] = field(default_factory=list)
    documents: list[tuple[str, str]] = field(default_factory=list)


class Adapter(ABC):
    """Parse one storage format into the normalized representation."""

    #: format name this adapter handles (``csv``, ``json``, ``xml``, ...).
    fmt: str = ""

    @abstractmethod
    def parse(self, raw: RawSource) -> AdapterOutput:
        """Normalize ``raw``; raise :class:`~repro.errors.AdapterError` on
        malformed payloads."""

    def span_attributes(
        self, raw: RawSource, output: AdapterOutput
    ) -> dict[str, Any]:
        """Deterministic attributes for the ``adapter:<fmt>`` trace span.

        Subclasses extend with format-specific detail (row/record/column
        counts); keys must be deterministic values only — no wall time.
        """
        return {
            "source_id": raw.source_id,
            "fmt": self.fmt,
            "num_triples": len(output.triples),
            "num_documents": len(output.documents),
        }


ADAPTER_REGISTRY: dict[str, Adapter] = {}


def register_adapter(adapter: Adapter) -> Adapter:
    """Register ``adapter`` under its format name (last registration wins)."""
    if not adapter.fmt:
        raise ValueError("adapter must declare a fmt")
    ADAPTER_REGISTRY[adapter.fmt] = adapter
    return adapter


def get_adapter(fmt: str) -> Adapter:
    """Look up the adapter for ``fmt``.

    Raises:
        UnknownFormatError: if no adapter is registered for ``fmt``.
    """
    try:
        return ADAPTER_REGISTRY[fmt]
    except KeyError:
        known = ", ".join(sorted(ADAPTER_REGISTRY))
        raise UnknownFormatError(
            f"no adapter registered for format {fmt!r} (known: {known})"
        ) from None
