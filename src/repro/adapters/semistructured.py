"""Semi-structured adapters: nested JSON and XML.

Per paper §III-B these formats are tree-shaped, carry no column index, and
are searched with DFS.  Both adapters flatten an arbitrarily nested record
into ``(entity, leaf_attribute, value)`` triples: the attribute name of a
leaf is its own key (intermediate container keys only group, they do not
rename), matching how the paper's generators nest ``details`` blocks.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Any

from repro.adapters.base import Adapter, AdapterOutput, RawSource, register_adapter
from repro.errors import AdapterError
from repro.kg.storage import NormalizedRecord, make_jsonld
from repro.kg.triple import Provenance, Triple
from repro.llm.lexicon import verbalize


def dfs_leaves(node: Any, key: str = "") -> list[tuple[str, str]]:
    """Depth-first flatten of a JSON tree into ``(leaf_key, value)`` pairs."""
    if isinstance(node, dict):
        pairs: list[tuple[str, str]] = []
        for child_key, child in node.items():
            pairs.extend(dfs_leaves(child, child_key))
        return pairs
    if isinstance(node, list):
        pairs = []
        for child in node:
            pairs.extend(dfs_leaves(child, key))
        return pairs
    if node is None or node == "":
        return []
    return [(key, str(node))]


def _record_triples(
    entity: str,
    attributes: Any,
    provenance: Provenance,
) -> tuple[list[Triple], list[str]]:
    triples: list[Triple] = []
    lines: list[str] = []
    for attr, value in dfs_leaves(attributes):
        if not attr:
            continue
        triples.append(Triple(entity, attr, value, provenance))
        lines.append(verbalize(entity, attr, value))
    return triples, lines


class SemiStructuredJsonAdapter(Adapter):
    """Nested JSON ``{"records": [{"name", "attributes": {...}}]}``."""

    fmt = "json"

    def parse(self, raw: RawSource) -> AdapterOutput:
        """Flatten nested JSON records into triples.

        Raises:
            AdapterError: if the payload is not a records dict.
        """
        payload = raw.payload
        if not isinstance(payload, dict) or "records" not in payload:
            raise AdapterError(
                f"json adapter expects a dict with a 'records' key in source "
                f"{raw.source_id!r}"
            )
        triples: list[Triple] = []
        doc_lines: list[str] = []
        rows_jsonld: list[dict[str, object]] = []
        for i, rec in enumerate(payload["records"]):
            entity = str(rec.get("name", "")).strip()
            if not entity:
                continue
            provenance = raw.provenance(record_id=f"rec{i}")
            rec_triples, rec_lines = _record_triples(
                entity, rec.get("attributes", {}), provenance
            )
            triples.extend(rec_triples)
            doc_lines.extend(rec_lines)
            rows_jsonld.append(
                make_jsonld(entity, {t.predicate: t.obj for t in rec_triples})
            )
        record = NormalizedRecord(
            record_id=f"norm:{raw.source_id}:{raw.name}",
            domain=raw.domain,
            name=raw.name,
            jsonld={"@graph": rows_jsonld},
            meta=dict(raw.meta),
        )
        documents = [(f"{raw.source_id}:{raw.name}", " ".join(doc_lines))]
        return AdapterOutput(record=record, triples=triples, documents=documents)

    def span_attributes(
        self, raw: RawSource, output: AdapterOutput
    ) -> dict[str, object]:
        attrs = super().span_attributes(raw, output)
        attrs["num_records"] = len(output.record.jsonld.get("@graph", []))
        return attrs


class SemiStructuredXmlAdapter(Adapter):
    """XML ``<source><record name="..."><attr>value</attr>...</record></source>``.

    Repeated child elements express multi-valued attributes; nested elements
    are flattened depth-first like the JSON adapter.
    """

    fmt = "xml"

    def parse(self, raw: RawSource) -> AdapterOutput:
        """Flatten an XML record tree into triples.

        Raises:
            AdapterError: if the payload is not text or is not well-formed
                XML.
        """
        if not isinstance(raw.payload, str):
            raise AdapterError(
                f"xml adapter expects text payload, got {type(raw.payload).__name__}"
            )
        try:
            root = ET.fromstring(raw.payload)
        except ET.ParseError as exc:
            raise AdapterError(
                f"malformed XML in source {raw.source_id!r}: {exc}"
            ) from exc

        triples: list[Triple] = []
        doc_lines: list[str] = []
        rows_jsonld: list[dict[str, object]] = []
        for i, rec in enumerate(root.findall("record")):
            entity = (rec.get("name") or "").strip()
            if not entity:
                continue
            provenance = raw.provenance(record_id=f"rec{i}")
            props: dict[str, object] = {}
            for attr, value in self._element_leaves(rec):
                triples.append(Triple(entity, attr, value, provenance))
                doc_lines.append(verbalize(entity, attr, value))
                props[attr] = value
            rows_jsonld.append(make_jsonld(entity, props))
        record = NormalizedRecord(
            record_id=f"norm:{raw.source_id}:{raw.name}",
            domain=raw.domain,
            name=raw.name,
            jsonld={"@graph": rows_jsonld},
            meta=dict(raw.meta),
        )
        documents = [(f"{raw.source_id}:{raw.name}", " ".join(doc_lines))]
        return AdapterOutput(record=record, triples=triples, documents=documents)

    def span_attributes(
        self, raw: RawSource, output: AdapterOutput
    ) -> dict[str, object]:
        attrs = super().span_attributes(raw, output)
        attrs["num_records"] = len(output.record.jsonld.get("@graph", []))
        return attrs

    def _element_leaves(self, element: ET.Element) -> list[tuple[str, str]]:
        """DFS over an XML subtree yielding ``(leaf_tag, text)`` pairs."""
        leaves: list[tuple[str, str]] = []
        for child in element:
            if len(child):
                leaves.extend(self._element_leaves(child))
            else:
                text = (child.text or "").strip()
                if text:
                    leaves.append((child.tag, text))
        return leaves


register_adapter(SemiStructuredJsonAdapter())
register_adapter(SemiStructuredXmlAdapter())
