"""Multi-source data adapters and the fusion engine (paper §III-B)."""

from repro.adapters.base import (
    ADAPTER_REGISTRY,
    Adapter,
    AdapterOutput,
    RawSource,
    get_adapter,
    register_adapter,
)
from repro.adapters.fusion import DataFusionEngine, FusionResult
from repro.adapters.kgformat import KgAdapter
from repro.adapters.semistructured import (
    SemiStructuredJsonAdapter,
    SemiStructuredXmlAdapter,
    dfs_leaves,
)
from repro.adapters.structured import StructuredAdapter, split_cell
from repro.adapters.unstructured import UnstructuredAdapter

__all__ = [
    "ADAPTER_REGISTRY",
    "Adapter",
    "AdapterOutput",
    "DataFusionEngine",
    "FusionResult",
    "KgAdapter",
    "RawSource",
    "SemiStructuredJsonAdapter",
    "SemiStructuredXmlAdapter",
    "StructuredAdapter",
    "UnstructuredAdapter",
    "dfs_leaves",
    "get_adapter",
    "register_adapter",
    "split_cell",
]
