"""Multi-source data fusion engine (Eq. 2 of the paper).

``D_Fusion = ⋃ A_i(D_i)``: every raw source is routed through its format's
adapter; deterministic triples go straight into the knowledge graph, text
documents are chunked and handed to the LLM extractor, and everything ends
up in one unified, provenance-carrying :class:`KnowledgeGraph` plus a chunk
corpus shared by all retrieval methods.

Fusion can run *sharded and parallel*: with an
:class:`~repro.exec.plan.ExecutionPlan` and ``n_shards > 1`` the LLM
extraction work — by far the dominant ingest cost — fans out over the
exec engine's bounded worker pool, one task per substrate shard.  The
parallel path is byte-identical to the sequential one: extraction is a
pure function of ``(chunk, provenance)``, each worker runs against its
own LLM clone (``llm.split()``), worker meters are absorbed in shard
order at the merge barrier, and the fold into the graph replays the
exact sequential source/chunk order on the coordinating thread.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.adapters.base import AdapterOutput, RawSource, get_adapter
from repro.exec.engine import execute
from repro.exec.plan import ExecutionPlan
from repro.kg.graph import KnowledgeGraph
from repro.kg.shard import ShardedKnowledgeGraph, shard_of
from repro.kg.storage import NormalizedRecord
from repro.kg.triple import Entity, Provenance, Triple
from repro.llm.base import LLMClient
from repro.llm.extraction import ExtractionResult, SchemaFreeExtractor
from repro.llm.simulated import SimulatedLLM
from repro.obs.context import NOOP, Observability
from repro.obs.log import get_logger
from repro.retrieval.chunking import Chunk, SentenceChunker


logger = get_logger(__name__)


@dataclass(slots=True)
class FusionResult:
    """Output of one fusion run over a set of sources."""

    graph: KnowledgeGraph
    records: list[NormalizedRecord] = field(default_factory=list)
    chunks: list[Chunk] = field(default_factory=list)
    build_time_s: float = 0.0
    extraction_calls: int = 0

    def records_by_domain(self, domain: str) -> list[NormalizedRecord]:
        return [r for r in self.records if r.domain == domain]


class DataFusionEngine:
    """Fuse heterogeneous sources into one knowledge graph + chunk corpus."""

    def __init__(
        self,
        llm: LLMClient | None = None,
        chunker: SentenceChunker | None = None,
        standardize: bool = False,
        obs: Observability | None = None,
    ) -> None:
        self.llm = llm or SimulatedLLM()
        self.chunker = chunker or SentenceChunker(max_tokens=64)
        self.extractor = SchemaFreeExtractor(self.llm)
        self.obs = obs if obs is not None else NOOP
        #: run the LLM standardization phase (the ``std`` prompt of paper
        #: §III-B) over every entity and value after fusion, unifying
        #: per-source surface variants ("Nolan, Christopher" →
        #: "Christopher Nolan").  MultiRAG's pipeline enables this;
        #: string-level baselines consume the raw fused graph.
        self.standardize = standardize

    def fuse(
        self,
        sources: list[RawSource],
        graph_name: str = "fused",
        *,
        plan: ExecutionPlan | None = None,
        n_shards: int = 1,
    ) -> FusionResult:
        """Run ``D_Fusion = ⋃ A_i(D_i)`` over ``sources``.

        ``n_shards`` selects the substrate partitioning (a pure layout
        property); a ``plan`` with more than one worker additionally fans
        the per-chunk LLM extraction out over the exec engine, one task
        per shard, with byte-identical results to the sequential path.

        Raises:
            UnknownFormatError: if a source declares a format with no adapter.
            AdapterError: if a source payload does not match its format.
            ExtractionError: if LLM extraction fails on an unstructured chunk.
            EntityNotFoundError: if entity registration meets a dangling id.
            GraphError: if ``n_shards`` is not a positive integer.
            ConfigError: if ``plan`` carries an invalid worker or batch
                configuration.
        """
        start = time.perf_counter()
        if n_shards > 1:
            graph: KnowledgeGraph = ShardedKnowledgeGraph(
                name=graph_name, n_shards=n_shards
            )
        else:
            graph = KnowledgeGraph(name=graph_name)
        result = FusionResult(graph=graph)

        workers = plan.workers if plan is not None else 1
        if workers > 1 and n_shards > 1:
            self._fuse_parallel(sources, graph, result, plan, n_shards)
        else:
            self._fuse_sequential(sources, graph, result)

        if self.standardize:
            result.graph = self._standardize_graph(result.graph)

        result.build_time_s = time.perf_counter() - start
        logger.info(
            "fused %d sources: %d claims, %d chunks, %d extraction calls "
            "in %.3fs",
            len(sources), len(result.graph), len(result.chunks),
            result.extraction_calls, result.build_time_s,
        )
        return result

    def _fuse_sequential(
        self,
        sources: list[RawSource],
        graph: KnowledgeGraph,
        result: FusionResult,
    ) -> None:
        """The reference single-threaded fusion loop.

        Raises:
            UnknownFormatError: if a source declares a format with no adapter.
            AdapterError: if a source payload does not match its format.
            ExtractionError: if LLM extraction fails on an unstructured chunk.
            EntityNotFoundError: if entity registration meets a dangling id.
        """
        metrics = self.obs.metrics
        for raw in sources:
            adapter = get_adapter(raw.fmt)
            with self.obs.tracer.span(f"adapter:{raw.fmt}") as span:
                output = adapter.parse(raw)
                result.records.append(output.record)
                graph.add_triples(output.triples)
                self._register_entities(graph, output.triples)

                chunks_before = len(result.chunks)
                extractions_before = result.extraction_calls
                usage_before = self.llm.meter.checkpoint()
                for doc_id, text in output.documents:
                    chunks = self.chunker.chunk(
                        text, source_id=raw.source_id, doc_id=doc_id
                    )
                    result.chunks.extend(chunks)
                    if raw.fmt == "text":
                        # Unstructured sources carry no parsed triples:
                        # recover them with the three-phase LLM extractor
                        # per chunk.
                        for chunk in chunks:
                            provenance = Provenance(
                                source_id=raw.source_id,
                                domain=raw.domain,
                                fmt=raw.fmt,
                                chunk_id=chunk.chunk_id,
                            )
                            extraction = self.extractor.extract(
                                chunk.text, provenance
                            )
                            graph.add_triples(extraction.triples)
                            for entity in extraction.entities:
                                graph.add_entity(entity)
                            result.extraction_calls += 1
                if span.enabled:
                    span.set(
                        **adapter.span_attributes(raw, output),
                        num_chunks=len(result.chunks) - chunks_before,
                        **self.llm.meter.delta(usage_before),
                    )
            metrics.counter(f"fusion.sources.{raw.fmt}").inc()
            metrics.counter("fusion.triples").inc(len(output.triples))
            metrics.counter("fusion.chunks").inc(
                len(result.chunks) - chunks_before
            )
            metrics.counter("fusion.extraction_calls").inc(
                result.extraction_calls - extractions_before
            )

    def _fuse_parallel(
        self,
        sources: list[RawSource],
        graph: KnowledgeGraph,
        result: FusionResult,
        plan: ExecutionPlan | None,
        n_shards: int,
    ) -> None:
        """Shard-parallel fusion, byte-identical to the sequential loop.

        Three phases.  *Plan* (coordinating thread): parse every adapter
        and chunk every document in source order, building the global
        extraction task list exactly as the sequential loop would visit
        it.  *Extract* (worker pool): tasks are bucketed per shard by the
        stable document hash; each shard task runs the pure per-chunk
        extractor against a private LLM clone, and the merge barrier
        absorbs worker meters back in shard order.  *Fold* (coordinating
        thread): replay the sequential source/chunk order, inserting
        parsed triples and the reassembled extractions into the graph —
        insertion order, entity registration order and all metric totals
        match the sequential path element for element.

        Raises:
            UnknownFormatError: if a source declares a format with no adapter.
            AdapterError: if a source payload does not match its format.
            ExtractionError: if LLM extraction fails on an unstructured
                chunk (the lowest-submit-index failure, per the engine's
                deterministic error contract).
            EntityNotFoundError: if entity registration meets a dangling id.
        """
        metrics = self.obs.metrics

        parsed: list[tuple[RawSource, AdapterOutput, list[list[Chunk]]]] = []
        extract_tasks: list[tuple[Chunk, Provenance]] = []
        for raw in sources:
            adapter = get_adapter(raw.fmt)
            output = adapter.parse(raw)
            per_doc: list[list[Chunk]] = []
            for doc_id, text in output.documents:
                chunks = self.chunker.chunk(
                    text, source_id=raw.source_id, doc_id=doc_id
                )
                per_doc.append(chunks)
                if raw.fmt == "text":
                    for chunk in chunks:
                        extract_tasks.append((chunk, Provenance(
                            source_id=raw.source_id,
                            domain=raw.domain,
                            fmt=raw.fmt,
                            chunk_id=chunk.chunk_id,
                        )))
            parsed.append((raw, output, per_doc))

        # Bucket extraction units per shard by document so chunks of one
        # document stay on one worker; bucket membership is a pure
        # function of ids, never of scheduling.
        buckets: list[list[int]] = [[] for _ in range(n_shards)]
        for task_idx, (chunk, _prov) in enumerate(extract_tasks):
            shard = shard_of(f"{chunk.source_id}/{chunk.doc_id}", n_shards)
            buckets[shard].append(task_idx)
        extractions: list[ExtractionResult | None] = [None] * len(extract_tasks)

        def _context(shard: int) -> tuple[LLMClient, SchemaFreeExtractor]:
            worker = self.llm.split()
            return worker, SchemaFreeExtractor(worker)

        def _run(
            ctx: tuple[LLMClient, SchemaFreeExtractor], shard: int
        ) -> list[tuple[int, ExtractionResult]]:
            # Workers only read the shared task/bucket lists (frozen
            # before submission) and write their private output list.
            _worker, extractor = ctx
            out: list[tuple[int, ExtractionResult]] = []
            for task_idx in buckets[shard]:
                chunk, provenance = extract_tasks[task_idx]
                out.append((task_idx, extractor.extract(chunk.text, provenance)))
            return out

        def _merge(
            ctx: tuple[LLMClient, SchemaFreeExtractor],
            out: list[tuple[int, ExtractionResult]],
            shard: int,
        ) -> None:
            worker, _extractor = ctx
            self.llm.absorb(worker)
            for task_idx, extraction in out:
                extractions[task_idx] = extraction

        with self.obs.tracer.span(
            "fusion.parallel", n_shards=n_shards,
            num_tasks=len(extract_tasks),
        ) as span:
            usage_before = self.llm.meter.checkpoint()
            execute(
                n_shards, plan, run=_run, context=_context, merge=_merge
            )
            if span.enabled:
                span.set(**self.llm.meter.delta(usage_before))

        # Fold phase: identical element order to _fuse_sequential.  Each
        # source still gets its adapter span (the span taxonomy is the
        # same at every worker count); per-source LLM usage lives on the
        # fusion.parallel span above, where the calls actually ran.
        cursor = 0
        for raw, output, per_doc in parsed:
            adapter = get_adapter(raw.fmt)
            with self.obs.tracer.span(f"adapter:{raw.fmt}") as span:
                result.records.append(output.record)
                graph.add_triples(output.triples)
                self._register_entities(graph, output.triples)
                chunks_before = len(result.chunks)
                extractions_before = result.extraction_calls
                for chunks in per_doc:
                    result.chunks.extend(chunks)
                    if raw.fmt == "text":
                        for _chunk in chunks:
                            extraction = extractions[cursor]
                            cursor += 1
                            assert extraction is not None  # merge filled all
                            graph.add_triples(extraction.triples)
                            for entity in extraction.entities:
                                graph.add_entity(entity)
                            result.extraction_calls += 1
                if span.enabled:
                    span.set(
                        **adapter.span_attributes(raw, output),
                        num_chunks=len(result.chunks) - chunks_before,
                    )
            metrics.counter(f"fusion.sources.{raw.fmt}").inc()
            metrics.counter("fusion.triples").inc(len(output.triples))
            metrics.counter("fusion.chunks").inc(
                len(result.chunks) - chunks_before
            )
            metrics.counter("fusion.extraction_calls").inc(
                result.extraction_calls - extractions_before
            )

    def _standardize_graph(self, graph: KnowledgeGraph) -> KnowledgeGraph:
        """Entity standardization over the fused graph (``std`` phase).

        All distinct mentions (subjects and objects) are standardized in
        batches through the LLM; the graph is rebuilt with canonical names
        so homologous matching sees one spelling per real-world entity.
        The rebuild goes through :meth:`KnowledgeGraph.fresh_like`, so a
        sharded graph stays sharded.
        """
        mentions: list[str] = []
        seen: set[str] = set()
        for triple in graph.triples():
            for mention in (triple.subject, triple.obj):
                if mention not in seen:
                    seen.add(mention)
                    mentions.append(mention)
        mapping: dict[str, str] = {}
        batch_size = 64
        for i in range(0, len(mentions), batch_size):
            batch = mentions[i : i + batch_size]
            mapping.update(self.llm.standardize("", batch))

        canonical = graph.fresh_like()
        for triple in graph.triples():
            canonical.add_triple(
                Triple(
                    subject=mapping.get(triple.subject, triple.subject),
                    predicate=triple.predicate,
                    obj=mapping.get(triple.obj, triple.obj),
                    provenance=triple.provenance,
                )
            )
        self._register_entities(canonical, list(canonical.triples()))
        return canonical

    @staticmethod
    def _register_entities(graph: KnowledgeGraph, triples: list[Triple]) -> None:
        """Ensure each triple subject exists as an entity with its attributes."""
        for triple in triples:
            if graph.has_entity(triple.subject):
                entity = graph.entity(triple.subject)
            else:
                entity = graph.add_entity(
                    Entity(eid=triple.subject, name=triple.subject)
                )
            entity.add_attribute(triple.predicate, triple.obj)
