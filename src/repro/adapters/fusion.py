"""Multi-source data fusion engine (Eq. 2 of the paper).

``D_Fusion = ⋃ A_i(D_i)``: every raw source is routed through its format's
adapter; deterministic triples go straight into the knowledge graph, text
documents are chunked and handed to the LLM extractor, and everything ends
up in one unified, provenance-carrying :class:`KnowledgeGraph` plus a chunk
corpus shared by all retrieval methods.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.adapters.base import RawSource, get_adapter
from repro.kg.graph import KnowledgeGraph
from repro.kg.storage import NormalizedRecord
from repro.kg.triple import Entity, Provenance, Triple
from repro.llm.base import LLMClient
from repro.llm.extraction import SchemaFreeExtractor
from repro.llm.simulated import SimulatedLLM
from repro.obs.context import NOOP, Observability
from repro.obs.log import get_logger
from repro.retrieval.chunking import Chunk, SentenceChunker


logger = get_logger(__name__)


@dataclass(slots=True)
class FusionResult:
    """Output of one fusion run over a set of sources."""

    graph: KnowledgeGraph
    records: list[NormalizedRecord] = field(default_factory=list)
    chunks: list[Chunk] = field(default_factory=list)
    build_time_s: float = 0.0
    extraction_calls: int = 0

    def records_by_domain(self, domain: str) -> list[NormalizedRecord]:
        return [r for r in self.records if r.domain == domain]


class DataFusionEngine:
    """Fuse heterogeneous sources into one knowledge graph + chunk corpus."""

    def __init__(
        self,
        llm: LLMClient | None = None,
        chunker: SentenceChunker | None = None,
        standardize: bool = False,
        obs: Observability | None = None,
    ) -> None:
        self.llm = llm or SimulatedLLM()
        self.chunker = chunker or SentenceChunker(max_tokens=64)
        self.extractor = SchemaFreeExtractor(self.llm)
        self.obs = obs if obs is not None else NOOP
        #: run the LLM standardization phase (the ``std`` prompt of paper
        #: §III-B) over every entity and value after fusion, unifying
        #: per-source surface variants ("Nolan, Christopher" →
        #: "Christopher Nolan").  MultiRAG's pipeline enables this;
        #: string-level baselines consume the raw fused graph.
        self.standardize = standardize

    def fuse(self, sources: list[RawSource], graph_name: str = "fused") -> FusionResult:
        """Run ``D_Fusion = ⋃ A_i(D_i)`` over ``sources``.

        Raises:
            UnknownFormatError: if a source declares a format with no adapter.
            AdapterError: if a source payload does not match its format.
            ExtractionError: if LLM extraction fails on an unstructured chunk.
            EntityNotFoundError: if entity registration meets a dangling id.
        """
        start = time.perf_counter()
        graph = KnowledgeGraph(name=graph_name)
        result = FusionResult(graph=graph)
        metrics = self.obs.metrics

        for raw in sources:
            adapter = get_adapter(raw.fmt)
            with self.obs.tracer.span(f"adapter:{raw.fmt}") as span:
                output = adapter.parse(raw)
                result.records.append(output.record)
                graph.add_triples(output.triples)
                self._register_entities(graph, output.triples)

                chunks_before = len(result.chunks)
                extractions_before = result.extraction_calls
                usage_before = self.llm.meter.checkpoint()
                for doc_id, text in output.documents:
                    chunks = self.chunker.chunk(
                        text, source_id=raw.source_id, doc_id=doc_id
                    )
                    result.chunks.extend(chunks)
                    if raw.fmt == "text":
                        # Unstructured sources carry no parsed triples:
                        # recover them with the three-phase LLM extractor
                        # per chunk.
                        for chunk in chunks:
                            provenance = Provenance(
                                source_id=raw.source_id,
                                domain=raw.domain,
                                fmt=raw.fmt,
                                chunk_id=chunk.chunk_id,
                            )
                            extraction = self.extractor.extract(
                                chunk.text, provenance
                            )
                            graph.add_triples(extraction.triples)
                            for entity in extraction.entities:
                                graph.add_entity(entity)
                            result.extraction_calls += 1
                if span.enabled:
                    span.set(
                        **adapter.span_attributes(raw, output),
                        num_chunks=len(result.chunks) - chunks_before,
                        **self.llm.meter.delta(usage_before),
                    )
            metrics.counter(f"fusion.sources.{raw.fmt}").inc()
            metrics.counter("fusion.triples").inc(len(output.triples))
            metrics.counter("fusion.chunks").inc(
                len(result.chunks) - chunks_before
            )
            metrics.counter("fusion.extraction_calls").inc(
                result.extraction_calls - extractions_before
            )

        if self.standardize:
            result.graph = self._standardize_graph(graph)

        result.build_time_s = time.perf_counter() - start
        logger.info(
            "fused %d sources: %d claims, %d chunks, %d extraction calls "
            "in %.3fs",
            len(sources), len(result.graph), len(result.chunks),
            result.extraction_calls, result.build_time_s,
        )
        return result

    def _standardize_graph(self, graph: KnowledgeGraph) -> KnowledgeGraph:
        """Entity standardization over the fused graph (``std`` phase).

        All distinct mentions (subjects and objects) are standardized in
        batches through the LLM; the graph is rebuilt with canonical names
        so homologous matching sees one spelling per real-world entity.
        """
        mentions: list[str] = []
        seen: set[str] = set()
        for triple in graph.triples():
            for mention in (triple.subject, triple.obj):
                if mention not in seen:
                    seen.add(mention)
                    mentions.append(mention)
        mapping: dict[str, str] = {}
        batch_size = 64
        for i in range(0, len(mentions), batch_size):
            batch = mentions[i : i + batch_size]
            mapping.update(self.llm.standardize("", batch))

        canonical = KnowledgeGraph(name=graph.name)
        for triple in graph.triples():
            canonical.add_triple(
                Triple(
                    subject=mapping.get(triple.subject, triple.subject),
                    predicate=triple.predicate,
                    obj=mapping.get(triple.obj, triple.obj),
                    provenance=triple.provenance,
                )
            )
        self._register_entities(canonical, list(canonical.triples()))
        return canonical

    @staticmethod
    def _register_entities(graph: KnowledgeGraph, triples: list[Triple]) -> None:
        """Ensure each triple subject exists as an entity with its attributes."""
        for triple in triples:
            if graph.has_entity(triple.subject):
                entity = graph.entity(triple.subject)
            else:
                entity = graph.add_entity(
                    Entity(eid=triple.subject, name=triple.subject)
                )
            entity.add_attribute(triple.predicate, triple.obj)
