"""Deterministic concurrent batch execution.

:func:`execute` runs ``num_tasks`` independent tasks under an
:class:`~repro.exec.plan.ExecutionPlan` and returns their results in
**submit order**, never completion order.  The determinism contract:

* **Submit-order reassembly** — workers race, results do not.  Each
  batch blocks until every member finished, then results are folded back
  (``merge``) strictly by submit index.
* **Isolated contexts** — ``context(i)`` builds whatever worker-local
  state task ``i`` needs (a pipeline view, a cloned LLM with a fresh
  usage meter).  Tasks must only mutate their own context; shared state
  is touched exclusively inside ``merge``, which the engine serializes.
* **Deterministic errors** — when tasks fail, completed tasks with a
  lower submit index are merged first and then the *lowest-index*
  exception is re-raised, exactly as a sequential loop would have
  behaved.  Results of higher-index tasks in the same batch are
  discarded (their contexts were private, so no shared state leaks).
* **Serialization escape hatch** — ``serialize=True`` forces the
  sequential path regardless of ``plan.workers``, with a merge barrier
  after every task.  Callers use it when tasks form a dependency chain
  (e.g. consensus-feedback history updates) and interleaved semantics
  must be preserved bit-for-bit.

The engine is generic over callables on purpose: it sits below
``repro.core`` in the layering DAG and knows nothing about pipelines.
"""

from __future__ import annotations

from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Callable

from repro.exec.plan import ExecutionPlan

#: builds task ``i``'s worker-local state.
ContextFactory = Callable[[int], Any]
#: runs task ``i`` against its context and returns its result.
TaskRunner = Callable[[Any, int], Any]
#: folds task ``i``'s result back into shared state (submit order).
ResultMerger = Callable[[Any, Any, int], None]


def execute(
    num_tasks: int,
    plan: ExecutionPlan | None = None,
    *,
    run: TaskRunner,
    context: ContextFactory | None = None,
    merge: ResultMerger | None = None,
    serialize: bool = False,
) -> list[Any]:
    """Run ``num_tasks`` tasks under ``plan``; results in submit order.

    Raises:
        ConfigError: when a default plan cannot be built.
        Exception: the lowest-submit-index task failure is re-raised
            verbatim after all earlier tasks were merged.
    """
    resolved = plan if plan is not None else ExecutionPlan()
    workers = 1 if serialize else resolved.workers
    results: list[Any] = []
    if workers <= 1 or num_tasks <= 1:
        for index in range(num_tasks):
            ctx = context(index) if context is not None else None
            result = run(ctx, index)
            if merge is not None:
                merge(ctx, result, index)
            results.append(result)
        return results

    with ThreadPoolExecutor(max_workers=workers) as pool:
        for start in range(0, num_tasks, resolved.batch_size):
            stop = min(start + resolved.batch_size, num_tasks)
            contexts = [
                context(index) if context is not None else None
                for index in range(start, stop)
            ]
            futures: list[Future[Any]] = [
                pool.submit(run, contexts[index - start], index)
                for index in range(start, stop)
            ]
            # Barrier: wait for the whole batch, collecting per-task
            # outcomes without letting completion order leak anywhere.
            outcomes: list[tuple[Any, BaseException | None]] = []
            for future in futures:
                error = future.exception()
                outcomes.append(
                    (None, error) if error is not None
                    else (future.result(), None)
                )
            for offset, (result, error) in enumerate(outcomes):
                if error is not None:
                    raise error
                if merge is not None:
                    merge(contexts[offset], result, start + offset)
                results.append(result)
    return results
