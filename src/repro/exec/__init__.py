"""``repro.exec`` — deterministic concurrent batch execution.

The engine fans independent tasks over a bounded thread pool and folds
results back in submit order, so a parallel run is byte-identical to the
sequential run (see ``docs/execution.md`` for the full contract).
``Query`` is the schedulable unit the ``MultiRAG.run`` API consumes;
``ExecutionPlan`` is the worker/batch knob set, resolvable from the
``REPRO_EXEC_WORKERS`` environment.
"""

from repro.exec.engine import execute
from repro.exec.plan import ENV_BATCH_SIZE, ENV_WORKERS, ExecutionPlan
from repro.exec.query import Hop, Query, as_query

__all__ = [
    "ENV_BATCH_SIZE",
    "ENV_WORKERS",
    "ExecutionPlan",
    "Hop",
    "Query",
    "as_query",
    "execute",
]
