"""Execution plans: how wide and how deep a batch run fans out.

An :class:`ExecutionPlan` is the immutable knob set of the exec engine —
``workers`` bounds the thread pool, ``batch_size`` bounds how many tasks
are in flight between merge barriers.  Plans resolve from explicit
arguments first and the ``REPRO_EXEC_WORKERS`` / ``REPRO_EXEC_BATCH_SIZE``
environment variables second, so a whole test suite can be re-run under
concurrency without touching a single call site.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.errors import ConfigError

#: environment variable naming the default worker count.
ENV_WORKERS = "REPRO_EXEC_WORKERS"
#: environment variable naming the default batch size.
ENV_BATCH_SIZE = "REPRO_EXEC_BATCH_SIZE"

_DEFAULT_BATCH_SIZE = 32


def _env_int(name: str, default: int) -> int:
    """Read a positive integer from the environment.

    Raises:
        ConfigError: when the variable is set but not a positive integer.
    """
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ConfigError(
            f"{name} must be a positive integer, got {raw!r}"
        ) from None
    if value < 1:
        raise ConfigError(f"{name} must be >= 1, got {value}")
    return value


@dataclass(frozen=True, slots=True)
class ExecutionPlan:
    """How a batch of tasks is scheduled.

    ``workers`` is the number of pool threads tasks fan out over;
    ``batch_size`` is how many tasks run between merge barriers (results
    are folded back into shared state in submit order at each barrier).
    ``workers=1`` is the sequential plan — the engine then degenerates to
    a plain loop with a barrier after every task.

    Raises:
        ConfigError: when ``workers`` or ``batch_size`` is < 1.
    """

    workers: int = 1
    batch_size: int = _DEFAULT_BATCH_SIZE

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers}")
        if self.batch_size < 1:
            raise ConfigError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )

    @classmethod
    def resolve(
        cls, jobs: int | None = None, batch_size: int | None = None
    ) -> "ExecutionPlan":
        """Build a plan from explicit arguments, falling back to the
        ``REPRO_EXEC_WORKERS`` / ``REPRO_EXEC_BATCH_SIZE`` environment.

        Raises:
            ConfigError: on non-positive arguments or malformed
                environment values.
        """
        if jobs is None:
            jobs = _env_int(ENV_WORKERS, 1)
        if batch_size is None:
            batch_size = _env_int(ENV_BATCH_SIZE, _DEFAULT_BATCH_SIZE)
        return cls(workers=jobs, batch_size=batch_size)

    @classmethod
    def env_requested(cls) -> bool:
        """Whether the environment asks for engine scheduling at all."""
        return bool(os.environ.get(ENV_WORKERS, "").strip())
