"""The :class:`Query` value object — the unit the exec engine schedules.

One frozen dataclass replaces the three historical pipeline entrypoints
(``query`` / ``query_key`` / ``query_chain``): a query is *data*, so it
can be built ahead of time, carried across worker boundaries, paired with
its gold answers for evaluation, and dispatched by ``MultiRAG.run``
without the caller choosing among three methods.

Construct queries through the classmethods::

    Query.text("Who wrote A Crimson Archive?")
    Query.key("A Crimson Archive", "author")
    Query.chain([("A Crimson Archive", "author"), (None, "birth_year")])
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, ClassVar, Iterable, Sequence

from repro.errors import ConfigError

#: one step of a multi-hop chain: ``(entity_or_None, attribute)`` where
#: ``None`` means "the top answer of the previous hop".
Hop = tuple[str | None, str]

_KINDS = ("text", "key", "chain")


@dataclass(frozen=True, slots=True)
class Query:
    """One schedulable retrieval request.

    ``kind`` selects the dispatch path: free-text MKLGP (``text``), a
    structured claim-key lookup (``key``) or a multi-hop chain
    (``chain``).  ``qid`` and ``answers`` are optional evaluation
    metadata — ``MultiRAG.evaluate`` scores predictions against
    ``answers`` and reports per ``qid``.

    Raises:
        ConfigError: for an unknown ``kind`` or a kind whose payload
            fields are empty.
    """

    KINDS: ClassVar[tuple[str, ...]] = _KINDS

    kind: str
    question: str = ""
    entity: str = ""
    attribute: str = ""
    hops: tuple[Hop, ...] = ()
    qid: str = ""
    answers: frozenset[str] | None = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ConfigError(
                f"unknown query kind {self.kind!r}; expected one of {_KINDS}"
            )
        if self.kind == "text" and not self.question:
            raise ConfigError("a text query needs a non-empty question")
        if self.kind == "key" and not (self.entity and self.attribute):
            raise ConfigError("a key query needs an entity and an attribute")
        if self.kind == "chain" and not self.hops:
            raise ConfigError("a chain query needs at least one hop")

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def text(
        cls,
        question: str,
        *,
        qid: str = "",
        answers: Iterable[str] | None = None,
    ) -> "Query":
        """A free-text question for the full MKLGP flow."""
        return cls(
            kind="text", question=question, qid=qid,
            answers=frozenset(answers) if answers is not None else None,
        )

    @classmethod
    def key(
        cls,
        entity: str,
        attribute: str,
        *,
        qid: str = "",
        answers: Iterable[str] | None = None,
    ) -> "Query":
        """A structured claim-key lookup for ``(entity, attribute)``."""
        return cls(
            kind="key", entity=entity, attribute=attribute, qid=qid,
            answers=frozenset(answers) if answers is not None else None,
        )

    @classmethod
    def chain(
        cls,
        hops: Sequence[Hop],
        *,
        qid: str = "",
        answers: Iterable[str] | None = None,
    ) -> "Query":
        """A multi-hop lookup (``None`` entities bridge from the previous
        hop's top answer)."""
        return cls(
            kind="chain", hops=tuple(hops), qid=qid,
            answers=frozenset(answers) if answers is not None else None,
        )


def as_query(spec: Any) -> Query:
    """Adapt a :class:`Query` or QuerySpec-like object to a :class:`Query`.

    Anything exposing ``entity`` / ``attribute`` (plus optional ``qid``
    and ``answers``) — notably :class:`repro.datasets.schema.QuerySpec` —
    maps to a key query, which keeps every historical ``evaluate`` call
    site working unchanged.

    Raises:
        ConfigError: when ``spec`` has neither form.
    """
    if isinstance(spec, Query):
        return spec
    entity = getattr(spec, "entity", None)
    attribute = getattr(spec, "attribute", None)
    if not entity or not attribute:
        raise ConfigError(
            f"cannot adapt {type(spec).__name__!r} to a Query: "
            f"need entity and attribute attributes"
        )
    answers = getattr(spec, "answers", None)
    return Query.key(
        entity, attribute,
        qid=getattr(spec, "qid", ""),
        answers=frozenset(answers) if answers is not None else None,
    )
