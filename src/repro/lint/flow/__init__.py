"""Whole-program flow analysis for the lint gate.

The per-file rules check what a single module can prove about itself;
this subpackage builds the project-wide view — symbol table, import and
call graphs — and runs the three flow-rule families over it:

* ``exceptions`` (EXC) — which ReproError subclasses escape where, and
  whether public docstrings declare them;
* ``reachability`` (DC) — code no entry point can reach;
* ``taint`` (TNT) — unvetted adapter/retrieval text reaching an LLM
  sink without passing the MCC gate.

Everything is stdlib ``ast``; the code under analysis is never imported.
The rule modules self-register on import via ``repro.lint.rules`` —
importing this package alone stays side-effect free.
"""

from repro.lint.flow.callgraph import CallGraph, FunctionFlow, build_call_graph
from repro.lint.flow.program import REPRO_ERROR_QUAL, Program, build_program
from repro.lint.flow.symbols import (
    ClassInfo,
    FunctionInfo,
    ModuleSymbols,
    SymbolTable,
    build_symbol_table,
    module_name_of,
)

__all__ = [
    "CallGraph",
    "ClassInfo",
    "FunctionFlow",
    "FunctionInfo",
    "ModuleSymbols",
    "Program",
    "REPRO_ERROR_QUAL",
    "SymbolTable",
    "build_call_graph",
    "build_program",
    "build_symbol_table",
    "module_name_of",
]
