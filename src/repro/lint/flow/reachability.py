"""Reachability rules (DC) — code no entry point can reach.

Roots are the program's real entry points: package ``__init__`` modules
and their ``__all__`` exports (the public API), ``repro.cli`` and
``repro.__main__`` (the command line), and every ``ReproError`` subclass
(catchable API even when never raised by the library itself).  Symbols
whose decorator resolves to an in-program function are also rooted — the
decorator registries (rules, fusion strategies, adapters) call them even
though no explicit call edge exists.

From the roots a worklist follows both tiers of the call graph: precise
edges, plus *name-match candidates* — an ``obj.method(...)`` call on an
object the resolver cannot type keeps every same-named function alive.
That asymmetry is deliberate: a dead-code report must survive the
weakest link in resolution, so reachability over-approximates liveness
and DC findings stay conservative.

* DC001 — a function or method no root can reach.
* DC002 — a class no root can reach (one finding; its methods are not
  also flagged, to avoid a cascade).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.findings import Finding, Severity
from repro.lint.flow.program import Program
from repro.lint.flow.symbols import ClassInfo, ModuleSymbols
from repro.lint.registry import FlowRule, register_rule
from repro.lint.rules.common import dotted_name

#: module basenames always treated as entry points when present.
_ENTRY_MODULES = ("repro.cli", "repro.__main__")


def _root_modules(program: Program) -> list[str]:
    roots = [
        name for name in sorted(program.modules)
        if program.modules[name].is_package
    ]
    roots.extend(
        name for name in _ENTRY_MODULES if name in program.modules
    )
    return roots


class _Reachability:
    """Worklist state for one liveness computation."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.table = program.symtab
        self.reachable: set[str] = set()
        self.reachable_modules: set[str] = set()
        self._pending: list[str] = []
        # bare name → function/class qualnames, for name-match liveness.
        self._by_name: dict[str, list[str]] = {}
        for qual in sorted(self.table.functions):
            func = self.table.functions[qual]
            self._by_name.setdefault(func.name, []).append(qual)
        for qual in sorted(self.table.classes):
            cls = self.table.classes[qual]
            self._by_name.setdefault(cls.name, []).append(qual)

    # ------------------------------------------------------------------
    # marking
    # ------------------------------------------------------------------
    def mark(self, qual: str) -> None:
        if qual in self.reachable:
            return
        self.reachable.add(qual)
        self._pending.append(qual)

    def mark_module(self, name: str) -> None:
        if name in self.reachable_modules:
            return
        self.reachable_modules.add(name)
        # Importing a module runs its top-level statements ...
        self.mark(f"{name}.<module>")
        # ... and transitively imports its dependencies.
        for target in sorted(
            self.program.callgraph.module_edges.get(name, ())
        ):
            self.mark_module(target)

    def mark_class(self, qual: str) -> None:
        if qual in self.reachable:
            return
        self.mark(qual)
        cls = self.table.classes.get(qual)
        if cls is None:
            return
        # Dunders run implicitly (construction, context managers,
        # comparisons, dataclass __post_init__ ...).
        for name in sorted(cls.methods):
            if name.startswith("__") and name.endswith("__"):
                self.mark(cls.methods[name])
        # Subclassing references the bases; the class statement itself is
        # not part of any analysed body, so mark them here.
        for ancestor in sorted(self.table.ancestors(qual)):
            self.mark_class(ancestor)
        # A class with an external base (ast.NodeVisitor, Enum, ...) hands
        # its methods to a framework that dispatches by its own protocol;
        # the analysis cannot see those calls, so keep the methods alive.
        if self._has_external_base(cls):
            for name in sorted(cls.methods):
                self.mark_function(cls.methods[name])
        # Class-level attribute defaults (dataclass fields and the like)
        # evaluate at class-creation time.
        for stmt in cls.node.body:
            if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                self._mark_expression_refs(cls.module, stmt)

    def mark_function(self, qual: str) -> None:
        self.mark(qual)
        func = self.table.functions.get(qual)
        if func is None or func.cls is None:
            return
        # A call that statically binds to Base.m may dispatch to any
        # override at runtime; keep them alive.
        base_qual = f"{func.module}.{func.cls}"
        for cls_qual in sorted(self.table.classes):
            if cls_qual == base_qual:
                continue
            if not self.table.is_subclass(cls_qual, base_qual):
                continue
            override = self.table.classes[cls_qual].methods.get(func.name)
            if override is not None:
                self.mark(override)

    def mark_symbol(self, kind: str, qual: str) -> None:
        if kind == "function":
            self.mark_function(qual)
        elif kind == "class":
            self.mark_class(qual)
        elif kind == "module":
            self.mark_module(qual)

    def mark_class_api(self, qual: str) -> None:
        """Root a class *as public API*: exporting a class publishes its
        public methods, not just its constructor."""
        self.mark_class(qual)
        cls = self.table.classes.get(qual)
        if cls is None:
            return
        for name in sorted(cls.methods):
            if not name.startswith("_"):
                self.mark_function(cls.methods[name])

    def mark_name_matches(self, name: str) -> None:
        for qual in self._by_name.get(name, ()):
            if qual in self.table.functions:
                self.mark_function(qual)
            else:
                self.mark_class(qual)

    def _has_external_base(self, cls: "ClassInfo") -> bool:
        for base in cls.bases:
            if base == "object":
                continue
            resolved = self.table.resolve(cls.module, base)
            if resolved is None or resolved[0] != "class":
                return True
        return False

    def _mark_expression_refs(self, module_name: str, node: ast.AST) -> None:
        """Mark anything a loose expression tree resolvably references."""
        for sub in ast.walk(node):
            dotted = dotted_name(sub) if isinstance(
                sub, (ast.Name, ast.Attribute)
            ) else None
            if dotted is None:
                continue
            resolved = self.table.resolve(module_name, dotted)
            if resolved is not None:
                self.mark_symbol(*resolved)

    def _mark_signature(self, qual: str) -> None:
        """Annotations and default values evaluate at def time and keep
        the classes/functions they name alive."""
        func = self.table.functions.get(qual)
        if func is None:
            return
        args = func.node.args
        for node in [
            *args.defaults,
            *[d for d in args.kw_defaults if d is not None],
            *[a.annotation for a in (
                *args.posonlyargs, *args.args, *args.kwonlyargs
            ) if a.annotation is not None],
            *([func.node.returns] if func.node.returns is not None else []),
        ]:
            self._mark_expression_refs(func.module, node)

    # ------------------------------------------------------------------
    # worklist
    # ------------------------------------------------------------------
    def run(self) -> None:
        self._seed()
        while self._pending:
            qual = self._pending.pop()
            self._process(qual)

    def _seed(self) -> None:
        program = self.program
        for mod_name in _root_modules(program):
            module = program.modules[mod_name]
            self.mark_module(mod_name)
            for export in module.exports:
                resolved = self.table.resolve(mod_name, export)
                if resolved is None:
                    resolved = self.table.resolve_qualified(
                        f"{mod_name}.{export}"
                    )
                if resolved is None:
                    continue
                if resolved[0] == "class":
                    self.mark_class_api(resolved[1])
                else:
                    self.mark_symbol(*resolved)
            if mod_name in _ENTRY_MODULES:
                # Everything defined at the top level of an entry module
                # is invocable from the command line.
                for qual in sorted(module.functions):
                    self.mark_function(qual)
                for qual in sorted(module.classes):
                    self.mark_class_api(qual)
        # The exception contract is public API: callers catch these even
        # if no in-program code raises them yet.
        for qual in sorted(program.repro_errors):
            self.mark_class_api(qual)
        # Decorator registries: @register_x(f) calls f later.
        self._seed_decorated()

    def _seed_decorated(self) -> None:
        for mod_name in sorted(self.program.modules):
            module = self.program.modules[mod_name]
            for qual in sorted(module.functions):
                func = module.functions[qual]
                if self._has_program_decorator(module, func.decorators):
                    self.mark_function(qual)
            for qual in sorted(module.classes):
                cls = module.classes[qual]
                if self._has_program_decorator(module, cls.decorators):
                    self.mark_class(qual)

    def _has_program_decorator(
        self, module: ModuleSymbols, decorators: tuple[str, ...]
    ) -> bool:
        for dec in decorators:
            if dec in {"property", "staticmethod", "classmethod"}:
                continue
            resolved = self.table.resolve(module.name, dec)
            if resolved is not None and resolved[0] == "function":
                self.mark_function(resolved[1])
                return True
        return False

    def _process(self, qual: str) -> None:
        self._mark_signature(qual)
        flow = self.program.callgraph.flows.get(qual)
        if flow is None:
            return
        module = self.program.modules.get(flow.info.module)
        if module is None:
            return
        for site in flow.calls:
            if site.target is not None and site.kind is not None:
                self.mark_symbol(site.kind, site.target)
            elif site.attr is not None:
                self.mark_name_matches(site.attr)
        for ref in sorted(flow.refs):
            resolved = self.table.resolve(module.name, ref)
            if resolved is not None:
                self.mark_symbol(*resolved)
        for attr in sorted(flow.attr_refs):
            self.mark_name_matches(attr)


def compute_reachable(program: Program) -> tuple[set[str], set[str]]:
    """Liveness over the whole program.

    Returns ``(reachable_symbols, reachable_modules)`` where symbols are
    function/class qualnames (plus ``<module>`` pseudo-functions).  The
    result is memoised on ``program`` — DC001 and DC002 share it.
    """
    cached = program.analysis_cache.get("reachable")
    if cached is not None:
        return cached  # type: ignore[return-value]
    state = _Reachability(program)
    state.run()
    result = (state.reachable, state.reachable_modules)
    program.analysis_cache["reachable"] = result
    return result


def _has_roots(program: Program) -> bool:
    """Whether the file set contains any entry point at all.

    Linting a single loose module gives the analysis no roots; flagging
    everything dead would be noise, so the DC rules stand down.
    """
    return bool(_root_modules(program))


@register_rule
class DeadFunctionRule(FlowRule):
    """DC001 — functions no entry point can reach."""

    rule_id = "DC001"
    family = "reachability"
    severity = Severity.WARNING
    program_keyed = True
    description = (
        "no entry point (CLI, package exports, registries, error "
        "contract) reaches this function, even through conservative "
        "name-matching; delete it or export it"
    )

    def check_program(self, program: Program) -> Iterable[Finding]:
        if not _has_roots(program):
            return
        reachable, _ = compute_reachable(program)
        for mod_name in sorted(program.modules):
            module = program.modules[mod_name]
            for qual in sorted(module.functions):
                func = module.functions[qual]
                if qual in reachable or func.is_dunder:
                    continue
                if func.cls is not None:
                    cls_qual = f"{mod_name}.{func.cls}"
                    if cls_qual not in reachable:
                        continue  # DC002 reports the whole class once
                kind = "method" if func.cls is not None else "function"
                yield self.program_finding(
                    module.module.display_path, func.lineno,
                    f"{kind} {func.name}() is unreachable from every "
                    f"entry point",
                )


@register_rule
class DeadClassRule(FlowRule):
    """DC002 — classes no entry point can reach."""

    rule_id = "DC002"
    family = "reachability"
    severity = Severity.WARNING
    program_keyed = True
    description = (
        "no entry point reaches this class (never instantiated, "
        "subclassed, exported, or referenced); delete it or export it"
    )

    def check_program(self, program: Program) -> Iterable[Finding]:
        if not _has_roots(program):
            return
        reachable, _ = compute_reachable(program)
        for mod_name in sorted(program.modules):
            module = program.modules[mod_name]
            for qual in sorted(module.classes):
                if qual in reachable:
                    continue
                cls = module.classes[qual]
                yield self.program_finding(
                    module.module.display_path, cls.lineno,
                    f"class {cls.name} is unreachable from every entry "
                    f"point",
                )
