"""Exception-flow rules (EXC) — which ``ReproError`` subclasses escape.

The repo's error contract says every library failure derives from
:class:`repro.errors.ReproError`; the per-file ERR rules keep raise and
except sites honest about *types*.  These whole-program rules close the
remaining gap: **propagation**.  ``compute_exception_escapes`` runs a
fixpoint over the precise call graph — direct raises, minus what
enclosing ``try``/``except`` blocks catch, plus whatever escapes each
resolved callee — so the lint gate knows, for every function, exactly
which ReproError subclasses a caller must be prepared for.

Three rules consume that result:

* EXC001 — a public function lets a ReproError subclass escape that its
  docstring's ``Raises:`` section does not declare.
* EXC002 — a handler for a ReproError subclass that no statically-known
  raise in the guarded block can ever produce (dead handler).
* EXC003 — a handler that catches a ReproError subclass and silently
  discards it (body is only ``pass``/``...``/``continue``).

Only precisely-resolved call edges feed the propagation, so an escape
reported here is real as far as the AST can see; unresolved calls mean
the analysis under-approximates (documents too little, never wrongly).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.lint.findings import Finding, Severity
from repro.lint.flow.callgraph import FunctionFlow
from repro.lint.flow.program import Program
from repro.lint.flow.symbols import FunctionInfo, ModuleSymbols
from repro.lint.registry import FlowRule, register_rule
from repro.lint.rules.common import dotted_name


@dataclass(slots=True)
class _Frame:
    """One enclosing ``try`` block's handler set, as seen from a site."""

    try_id: int
    caught: frozenset[str]
    catch_all: bool

    def catches(self, program: Program, exc: str) -> bool:
        if self.catch_all:
            return True
        return any(program.catches(h, exc) for h in sorted(self.caught))


@dataclass(slots=True)
class _Site:
    """A raise or call site together with its try-nesting context."""

    node: ast.AST
    frames: tuple[_Frame, ...]


@dataclass(slots=True)
class _FunctionContext:
    """Raise/call sites of one function, with catch context attached."""

    raises: list[tuple[_Site, str]] = field(default_factory=list)
    reraises: list[tuple[_Site, frozenset[str]]] = field(default_factory=list)
    calls: list[_Site] = field(default_factory=list)


def _handler_frame(
    program: Program, module: ModuleSymbols, node: ast.Try
) -> _Frame:
    caught: set[str] = set()
    catch_all = False
    for handler in node.handlers:
        if handler.type is None:
            catch_all = True
            continue
        types = (
            handler.type.elts if isinstance(handler.type, ast.Tuple)
            else [handler.type]
        )
        for type_node in types:
            qual = _resolve_exception(program, module, type_node)
            if qual is None:
                # Unknown or builtin type: assume it may catch anything.
                catch_all = True
            else:
                caught.add(qual)
    return _Frame(try_id=id(node), caught=frozenset(caught), catch_all=catch_all)


def _resolve_exception(
    program: Program, module: ModuleSymbols, node: ast.expr
) -> str | None:
    """Qualified name of an exception expression, if it is a ReproError."""
    dotted = dotted_name(node)
    if dotted is None:
        return None
    resolved = program.symtab.resolve(module.name, dotted)
    if resolved is None or resolved[0] != "class":
        # An imported-but-unindexed repro.errors name still counts when
        # the errors module is in the program under a different path.
        resolved_q = program.symtab.resolve_qualified(
            f"repro.errors.{dotted.rsplit('.', 1)[-1]}"
        )
        if resolved_q is None or resolved_q[0] != "class":
            return None
        resolved = resolved_q
    qual = resolved[1]
    return qual if program.is_repro_error(qual) else None


def _walk_function(
    program: Program,
    module: ModuleSymbols,
    body: list[ast.stmt],
) -> _FunctionContext:
    ctx = _FunctionContext()

    def walk(
        stmts: Iterable[ast.stmt],
        frames: tuple[_Frame, ...],
        handler_caught: frozenset[str],
    ) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.Try):
                frame = _handler_frame(program, module, stmt)
                walk(stmt.body, frames + (frame,), handler_caught)
                for handler in stmt.handlers:
                    caught = frame.caught if not frame.catch_all else frozenset()
                    walk(handler.body, frames, caught)
                walk(stmt.orelse, frames, handler_caught)
                walk(stmt.finalbody, frames, handler_caught)
                continue
            if isinstance(stmt, ast.Raise):
                site = _Site(node=stmt, frames=frames)
                if stmt.exc is None:
                    if handler_caught:
                        ctx.reraises.append((site, handler_caught))
                else:
                    exc_node = stmt.exc
                    if isinstance(exc_node, ast.Call):
                        exc_node = exc_node.func
                    qual = _resolve_exception(program, module, exc_node)
                    if qual is not None:
                        ctx.raises.append((site, qual))
            for node in _iter_expressions(stmt):
                if isinstance(node, ast.Call):
                    ctx.calls.append(_Site(node=node, frames=frames))
            for block in _nested_blocks(stmt):
                walk(block, frames, handler_caught)
    walk(body, (), frozenset())
    return ctx


def _iter_expressions(stmt: ast.stmt) -> Iterator[ast.AST]:
    """Every expression node directly under ``stmt`` (not nested stmts)."""
    stack: list[ast.AST] = [
        child for child in ast.iter_child_nodes(stmt)
        if not isinstance(child, ast.stmt)
    ]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(
            child for child in ast.iter_child_nodes(node)
            if not isinstance(child, ast.stmt)
        )


def _nested_blocks(stmt: ast.stmt) -> Iterator[list[ast.stmt]]:
    """Statement blocks nested under ``stmt`` (loop/if/with bodies...).

    Nested ``def`` bodies are folded into the enclosing function, matching
    the call-graph visitor: a closure runs, at the latest, when its parent
    does, so folding over-approximates — the safe direction here.
    """
    for name in ("body", "orelse", "finalbody"):
        block = getattr(stmt, name, None)
        if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
            if not isinstance(stmt, ast.Try):
                yield block
    for case in getattr(stmt, "cases", []) or []:
        yield case.body


def _escapes_frames(
    program: Program, exc: str, frames: tuple[_Frame, ...]
) -> bool:
    return not any(frame.catches(program, exc) for frame in frames)


def _call_targets_by_id(
    program: Program, flow: FunctionFlow
) -> dict[int, list[str] | None]:
    """Map call-node ids to resolved callee qualnames.

    The value is ``None`` for an unresolved call (unknown callee — may
    raise anything) and a (possibly empty) list for resolved ones.  A
    ``ClassName(...)`` instantiation resolves to whichever of
    ``__init__``/``__post_init__`` the program defines; a dataclass with
    neither resolves to the empty list (its synthesised ``__init__``
    raises nothing the analysis tracks).
    """
    by_id: dict[int, list[str] | None] = {}
    for call_site in flow.calls:
        if call_site.target is None:
            by_id[id(call_site.node)] = None
        elif call_site.kind == "class":
            targets = []
            for method in ("__init__", "__post_init__"):
                found = program.symtab.find_method(call_site.target, method)
                if found is not None:
                    targets.append(found)
            by_id[id(call_site.node)] = targets
        else:
            by_id[id(call_site.node)] = [call_site.target]
    return by_id


def compute_exception_escapes(
    program: Program,
) -> tuple[dict[str, frozenset[str]], dict[str, dict[str, str]]]:
    """Fixpoint escape analysis over the precise call graph.

    Returns ``(escapes, origins)``: ``escapes[qualname]`` is the set of
    ReproError subclass qualnames that can propagate out of the function;
    ``origins[qualname][exc]`` names the raise site or callee the
    exception reaches the function through (for findings and docs).

    The result is memoised on ``program`` — EXC001 and EXC002 share it.
    """
    cached = program.analysis_cache.get("exception_escapes")
    if cached is not None:
        return cached  # type: ignore[return-value]
    contexts: dict[str, _FunctionContext] = {}
    for mod_name in sorted(program.modules):
        module = program.modules[mod_name]
        for qual in sorted(module.functions):
            func = module.functions[qual]
            contexts[qual] = _walk_function(
                program, module, list(func.node.body)
            )

    flows = program.callgraph.flows
    escapes: dict[str, set[str]] = {qual: set() for qual in contexts}
    origins: dict[str, dict[str, str]] = {qual: {} for qual in contexts}

    # Seed with direct raises and re-raises.
    for qual in sorted(contexts):
        ctx = contexts[qual]
        for site, exc in ctx.raises:
            if _escapes_frames(program, exc, site.frames):
                escapes[qual].add(exc)
                origins[qual].setdefault(exc, "raised directly")
        for site, caught in ctx.reraises:
            for exc in sorted(caught):
                if _escapes_frames(program, exc, site.frames):
                    escapes[qual].add(exc)
                    origins[qual].setdefault(exc, "re-raised from a handler")

    # Map each function's call sites to resolved callees once.
    resolved_calls: dict[str, list[tuple[str, tuple[_Frame, ...]]]] = {}
    for qual in sorted(contexts):
        flow = flows.get(qual)
        if flow is None:
            resolved_calls[qual] = []
            continue
        by_id = _call_targets_by_id(program, flow)
        entries = []
        for site in contexts[qual].calls:
            for target in by_id.get(id(site.node)) or ():
                if target in contexts:
                    entries.append((target, site.frames))
        resolved_calls[qual] = entries

    # Reverse edges for the worklist.
    callers: dict[str, set[str]] = {qual: set() for qual in contexts}
    for qual in sorted(resolved_calls):
        for target, _ in resolved_calls[qual]:
            callers.setdefault(target, set()).add(qual)

    pending = sorted(contexts)
    pending_set = set(pending)
    while pending:
        qual = pending.pop()
        pending_set.discard(qual)
        changed = False
        for target, frames in resolved_calls[qual]:
            for exc in sorted(escapes.get(target, ())):
                if exc in escapes[qual]:
                    continue
                if _escapes_frames(program, exc, frames):
                    escapes[qual].add(exc)
                    origins[qual].setdefault(exc, f"via {target}()")
                    changed = True
        if changed:
            for caller in sorted(callers.get(qual, ())):
                if caller not in pending_set:
                    pending.append(caller)
                    pending_set.add(caller)

    result = (
        {qual: frozenset(excs) for qual, excs in escapes.items()},
        origins,
    )
    program.analysis_cache["exception_escapes"] = result
    return result


# ----------------------------------------------------------------------
# docstring Raises: parsing
# ----------------------------------------------------------------------
_SECTION_HEADERS = re.compile(
    r"^\s*(Args|Arguments|Returns|Return|Yields|Yield|Attributes|Note|Notes|"
    r"Example|Examples|See Also|Warns|Warning|Warnings)\s*:?\s*$"
)
_RAISES_HEADER = re.compile(r"^\s*Raises\s*:?\s*$")
_RAISES_ENTRY = re.compile(r"^\s*([A-Za-z_][A-Za-z0-9_.]*)\s*:")
_SPHINX_RAISES = re.compile(r":raises?\s+([A-Za-z_][A-Za-z0-9_.]*)\s*:")


def documented_raises(docstring: str | None) -> frozenset[str]:
    """Bare exception class names declared in a docstring.

    Understands the Google-style ``Raises:`` section used throughout the
    repo and Sphinx-style ``:raises X:`` fields.
    """
    if not docstring:
        return frozenset()
    names = {m.group(1).rsplit(".", 1)[-1]
             for m in _SPHINX_RAISES.finditer(docstring)}
    in_section = False
    for line in docstring.splitlines():
        if _RAISES_HEADER.match(line):
            in_section = True
            continue
        if in_section:
            if not line.strip() or _SECTION_HEADERS.match(line):
                in_section = False
                continue
            match = _RAISES_ENTRY.match(line)
            if match:
                names.add(match.group(1).rsplit(".", 1)[-1])
    return frozenset(names)


def _documented_covers(
    program: Program, documented: frozenset[str], exc: str
) -> bool:
    """A declared name covers ``exc`` itself or any of its ancestors
    (documenting ``ReproError`` covers every subclass)."""
    bare = exc.rsplit(".", 1)[-1]
    if bare in documented:
        return True
    return any(
        ancestor.rsplit(".", 1)[-1] in documented
        for ancestor in sorted(program.symtab.ancestors(exc))
    )


def _should_document(func: FunctionInfo, module: ModuleSymbols) -> bool:
    """EXC001 scope: public named functions/methods of public modules."""
    if not module.is_public:
        return False
    if not func.is_public or func.is_dunder:
        return False
    if func.cls is not None and func.cls.startswith("_"):
        return False
    return True


@register_rule
class UndocumentedEscapeRule(FlowRule):
    """EXC001 — escaping ReproErrors must appear in the docstring."""

    rule_id = "EXC001"
    family = "exceptions"
    severity = Severity.WARNING
    description = (
        "a ReproError subclass can escape this public function but its "
        "docstring Raises: section does not declare it; document the "
        "exception (or an ancestor) so callers know what to catch"
    )

    def check_program(self, program: Program) -> Iterable[Finding]:
        escapes, origins = compute_exception_escapes(program)
        for mod_name in sorted(program.modules):
            module = program.modules[mod_name]
            for qual in sorted(module.functions):
                func = module.functions[qual]
                escaping = escapes.get(qual, frozenset())
                if not escaping or not _should_document(func, module):
                    continue
                documented = documented_raises(func.docstring())
                for exc in sorted(escaping):
                    if _documented_covers(program, documented, exc):
                        continue
                    bare = exc.rsplit(".", 1)[-1]
                    origin = origins.get(qual, {}).get(exc, "")
                    detail = f" ({origin})" if origin else ""
                    yield self.program_finding(
                        module.module.display_path, func.lineno,
                        f"{bare} can escape {func.name}(){detail} but is "
                        f"not documented in its Raises: section",
                    )


@register_rule
class DeadHandlerRule(FlowRule):
    """EXC002 — handlers that no statically-known raise can reach."""

    rule_id = "EXC002"
    family = "exceptions"
    severity = Severity.WARNING
    description = (
        "this except handler names a ReproError subclass that nothing in "
        "the guarded block can raise (per whole-program propagation); "
        "the handler is dead code or the block lost the raising call"
    )

    def check_program(self, program: Program) -> Iterable[Finding]:
        escapes, _ = compute_exception_escapes(program)
        for mod_name in sorted(program.modules):
            module = program.modules[mod_name]
            for qual in sorted(module.functions):
                func = module.functions[qual]
                yield from self._check_function(
                    program, module, qual, func, escapes
                )

    def _check_function(
        self,
        program: Program,
        module: ModuleSymbols,
        qual: str,
        func: FunctionInfo,
        escapes: dict[str, frozenset[str]],
    ) -> Iterable[Finding]:
        ctx = _walk_function(program, module, list(func.node.body))
        flow = program.callgraph.flows.get(qual)
        targets_by_id: dict[int, list[str] | None] = {}
        if flow is not None:
            targets_by_id = _call_targets_by_id(program, flow)
        for try_node in [
            n for n in ast.walk(func.node) if isinstance(n, ast.Try)
        ]:
            possible = self._possible_in_body(
                program, try_node, ctx, targets_by_id, escapes
            )
            if possible is None:
                continue  # unresolved calls: anything may be raised
            for handler in try_node.handlers:
                if handler.type is None:
                    continue
                types = (
                    handler.type.elts
                    if isinstance(handler.type, ast.Tuple)
                    else [handler.type]
                )
                for type_node in types:
                    caught = _resolve_exception(program, module, type_node)
                    if caught is None:
                        continue
                    if not any(
                        program.catches(caught, exc)
                        for exc in sorted(possible)
                    ):
                        bare = caught.rsplit(".", 1)[-1]
                        yield self.program_finding(
                            module.module.display_path, handler.lineno,
                            f"except {bare}: can never fire — nothing in "
                            f"the try block raises it (statically)",
                        )

    def _possible_in_body(
        self,
        program: Program,
        try_node: ast.Try,
        ctx: _FunctionContext,
        targets_by_id: dict[int, list[str] | None],
        escapes: dict[str, frozenset[str]],
    ) -> frozenset[str] | None:
        """ReproErrors that can surface from ``try_node``'s body, or None
        when an unresolved call makes the set unknowable."""
        possible: set[str] = set()
        try_id = id(try_node)

        def inner_frames(frames: tuple[_Frame, ...]) -> tuple[_Frame, ...]:
            for i, frame in enumerate(frames):
                if frame.try_id == try_id:
                    return frames[i + 1:]
            return frames  # pragma: no cover — site filter guards this

        def in_body(frames: tuple[_Frame, ...]) -> bool:
            return any(frame.try_id == try_id for frame in frames)

        for site, exc in ctx.raises:
            if in_body(site.frames) and _escapes_frames(
                program, exc, inner_frames(site.frames)
            ):
                possible.add(exc)
        for site, caught in ctx.reraises:
            if in_body(site.frames):
                for exc in sorted(caught):
                    if _escapes_frames(program, exc, inner_frames(site.frames)):
                        possible.add(exc)
        for site in ctx.calls:
            if not in_body(site.frames):
                continue
            targets = targets_by_id.get(id(site.node))
            if targets is None:
                return None
            for target in targets:
                if target not in escapes:
                    return None
                for exc in sorted(escapes[target]):
                    if _escapes_frames(program, exc, inner_frames(site.frames)):
                        possible.add(exc)
        return frozenset(possible)


@register_rule
class SwallowedErrorRule(FlowRule):
    """EXC003 — ReproErrors caught and silently discarded."""

    rule_id = "EXC003"
    family = "exceptions"
    severity = Severity.WARNING
    description = (
        "this handler catches a ReproError subclass and does nothing "
        "with it (body is only pass/.../continue); handle it, log it, "
        "or let it propagate"
    )

    def check_program(self, program: Program) -> Iterable[Finding]:
        for mod_name in sorted(program.modules):
            module = program.modules[mod_name]
            for node in ast.walk(module.module.tree):
                if not isinstance(node, ast.ExceptHandler) or node.type is None:
                    continue
                types = (
                    node.type.elts if isinstance(node.type, ast.Tuple)
                    else [node.type]
                )
                caught = [
                    qual for qual in (
                        _resolve_exception(program, module, t) for t in types
                    )
                    if qual is not None
                ]
                if not caught:
                    continue
                if all(self._is_noop(stmt) for stmt in node.body):
                    bare = ", ".join(
                        sorted(q.rsplit(".", 1)[-1] for q in caught)
                    )
                    yield self.program_finding(
                        module.module.display_path, node.lineno,
                        f"{bare} caught and silently swallowed; handle, "
                        f"log, or re-raise it",
                    )

    @staticmethod
    def _is_noop(stmt: ast.stmt) -> bool:
        if isinstance(stmt, (ast.Pass, ast.Continue)):
            return True
        return (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
        )
