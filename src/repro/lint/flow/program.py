"""The whole-program view handed to every :class:`FlowRule`.

A :class:`Program` bundles the symbol table and call graph built over one
lint run's file set, plus the pieces the three analysis families share:
the ``ReproError`` class hierarchy (recovered statically from the linted
``repro/errors.py``, never imported) and helpers for mapping findings
back to the module they anchor in.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lint.flow.callgraph import CallGraph, build_call_graph
from repro.lint.flow.symbols import (
    ModuleSymbols,
    SymbolTable,
    build_symbol_table,
)
from repro.lint.registry import ModuleUnderLint

#: the root of the library's exception contract.
REPRO_ERROR_QUAL = "repro.errors.ReproError"


@dataclass(slots=True)
class Program:
    """One lint run's whole-program analysis context."""

    symtab: SymbolTable
    callgraph: CallGraph
    #: qualnames of every class deriving (transitively) from ReproError.
    repro_errors: frozenset[str] = field(default_factory=frozenset)
    #: memo shared by the analyses — several rules consume one fixpoint
    #: (e.g. EXC001 and EXC002 both need the escape sets), and rules run
    #: as independent instances, so the result lives on the program.
    analysis_cache: dict[str, object] = field(default_factory=dict)

    @property
    def modules(self) -> dict[str, ModuleSymbols]:
        return self.symtab.modules

    def module_for_path(self, display_path: str) -> ModuleSymbols | None:
        for name in sorted(self.modules):
            if self.modules[name].module.display_path == display_path:
                return self.modules[name]
        return None

    def is_repro_error(self, cls_qual: str) -> bool:
        return cls_qual in self.repro_errors

    def catches(self, handler_qual: str, raised_qual: str) -> bool:
        """Does ``except handler_qual`` catch a raised ``raised_qual``?"""
        return handler_qual == raised_qual or self.symtab.is_subclass(
            raised_qual, handler_qual
        )


def _collect_repro_errors(symtab: SymbolTable) -> frozenset[str]:
    if REPRO_ERROR_QUAL not in symtab.classes:
        return frozenset()
    out = {REPRO_ERROR_QUAL}
    for qual in sorted(symtab.classes):
        if REPRO_ERROR_QUAL in symtab.ancestors(qual):
            out.add(qual)
    return frozenset(out)


def build_program(modules: list[ModuleUnderLint]) -> Program:
    """Build the whole-program context over ``modules``.

    Files outside a ``repro`` package tree contribute nothing (the flow
    rules cannot place them in the import DAG), mirroring how the
    layering rules skip them.
    """
    symtab = build_symbol_table(modules)
    callgraph = build_call_graph(symtab)
    return Program(
        symtab=symtab,
        callgraph=callgraph,
        repro_errors=_collect_repro_errors(symtab),
    )
