"""Resource-bound analysis: LLM call paths, loop bounds, call budgets.

Every pipeline stage and every baseline spends LLM calls through the one
sanctioned seam — :meth:`repro.llm.base.LLMClient.complete` /
``complete_many``, which route through ``_account`` and the
``UsageMeter``.  This module recovers, statically, where those calls can
fire and how many can fire *per query*:

* :func:`compute_entry_points` — ``MultiRAG.run`` / ``add_source`` plus
  the ``query``/``answer``/``setup`` methods of every class registered
  via ``register_fusion`` / ``register_qa``;
* :func:`compute_summaries` — per-function LLM call sites with their
  enclosing loop structure, plus outgoing call edges annotated with the
  loops they sit under;
* :func:`compute_entry_budgets` — interprocedural composition: every
  call path from an entry point to an LLM call site, each with a
  symbolic multiplier (a :class:`Bound` polynomial over the corpus
  symbols ``S``/``H``/``C``), summed into a certified per-query bound;
* :func:`compute_raw_transport_sites` (RES001),
  :func:`compute_retry_sites` (RES003) and
  :func:`compute_growth_sites` (RES004) — the fact streams the RES rule
  family consumes (see :mod:`repro.lint.rules.resources`);
* :func:`llm_call_report` / :func:`llm_bounds_payload` — the
  ``repro lint --graph llm`` / ``--graph llm-bounds`` JSON payloads; the
  latter is committed to ``results/llm_call_bounds.json`` and enforced
  dynamically against observed ``UsageMeter`` counts in CI.

Loop bounds resolve from ``range()`` constants, constant-sized literal
iterables, constant slices, ``self.attr`` integer defaults (maximised
over every subclass, so the bound survives dynamic dispatch), or an
explicit annotation on the loop's line::

    for hit in hits:  # repro-lint: loop-bound[2*S]

where the bracketed expression is a ``*``-product of integer literals,
corpus symbols (:data:`BOUND_SYMBOLS`) and ``self.attr`` references.
Anything else is *unbounded* and — on a query path — a RES002 finding.

Virtual dispatch is resolved to the static receiver type: an override
that widens its base method's LLM usage must keep the base bound (the
runtime budget gate is the dynamic twin that catches violations).
Everything is memoised on ``program.analysis_cache``.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Iterator

from repro.lint.flow.callgraph import FunctionFlow
from repro.lint.flow.program import Program
from repro.lint.flow.symbols import FunctionInfo, SymbolTable
from repro.lint.rules.common import dotted_name

#: the pipeline root and the LLM client seam, by qualified name.
ROOT_CLASS = "repro.core.pipeline.MultiRAG"
LLM_BASE_CLASS = "repro.llm.base.LLMClient"
LLM_BASE_MODULE = "repro.llm.base"

#: decorators that register baseline algorithm classes.
_FUSION_DECORATORS = frozenset({"register_fusion", "base.register_fusion"})
_QA_DECORATORS = frozenset({"register_qa", "base.register_qa"})

#: public LLM client API → the :class:`repro.llm.stage.Stage` value it
#: serves.  ``complete`` / ``complete_many`` attribute their stage from
#: the ``stage=`` tag (a ``Stage.<NAME>`` attribute or string constant)
#: or, legacy, a constant ``task=`` keyword mapped like the runtime
#: (``Stage.from_task``); fully untagged calls fold to ``"other"``,
#: mirroring the runtime default — and are RES005 findings.
LLM_API_STAGES: dict[str, str] = {
    "extract_entities": "ner",
    "extract_triples": "triple",
    "standardize": "std",
    "relevance": "relevance",
    "authority": "authority",
    "generate_answer": "synthesis",
    "parametric_answer": "parametric",
    "complete": "other",
    "complete_many": "other",
}

#: transport methods below the UsageMeter seam; calling them from
#: pipeline code bypasses accounting entirely (RES001).  ``transport`` /
#: ``transport_many`` are the (text, latency) seam the gateway and the
#: cache layer route through — metered exactly once by the wrapper that
#: owns the call, so any use *above* the client stack is a bypass too.
RAW_TRANSPORT = frozenset({
    "_generate", "_generate_many", "transport", "transport_many",
})

#: symbolic corpus parameters the certified bounds range over.  The
#: runtime budget gate measures each one on the ingested corpus and
#: evaluates the polynomial numerically.
BOUND_SYMBOLS: dict[str, str] = {
    "S": "number of ingested sources",
    "H": "maximum hops per chain query (1 for key/text queries)",
    "C": "maximum candidate claims per (entity, attribute) key",
}

#: receiver components that identify an LLM client for name-match calls
#: (``self.llm.extract_triples`` resolves imprecisely when the attribute
#: was bound via ``llm or SimulatedLLM(...)`` or a factory call).
_LLM_RECEIVER_RE = re.compile(r"(^|_)llm$")

_LOOP_BOUND_RE = re.compile(r"#\s*repro-lint:\s*loop-bound\[(?P<expr>[^\]]+)\]")
_SYMBOL_RE = re.compile(r"^[A-Z][A-Z0-9_]*$")

#: in-place container methods that grow their receiver (RES004).
_GROWTH_METHODS = frozenset({
    "add", "append", "appendleft", "extend", "extendleft", "insert",
    "setdefault", "update",
})

#: in-place container methods that shrink their receiver — any of these
#: on the same attribute anywhere in the class is an eviction seam.
_EVICTION_METHODS = frozenset({
    "clear", "discard", "pop", "popitem", "remove",
})

#: calls that block on external resources (RES003 retry detection).
_BLOCKING_ATTRS = frozenset({
    "sleep", "urlopen", "create_connection", "read_text", "write_text",
    "read_bytes", "write_bytes",
})


# ----------------------------------------------------------------------
# symbolic bounds
# ----------------------------------------------------------------------
_Monomial = tuple[str, ...]
_Terms = tuple[tuple[_Monomial, int], ...]


@dataclass(frozen=True, slots=True)
class Bound:
    """A symbolic call-count upper bound.

    Either *unbounded* (``terms is None``) or a polynomial with
    non-negative integer coefficients over :data:`BOUND_SYMBOLS`,
    stored as canonically sorted ``(monomial, coefficient)`` pairs where
    a monomial is a sorted tuple of symbol names (``()`` = the constant
    term).  Addition models sequencing/branching (branch bounds are
    summed — a sound over-approximation), multiplication models loop
    nesting.
    """

    terms: _Terms | None

    @staticmethod
    def const(value: int) -> "Bound":
        return Bound(terms=(((), value),) if value else ())

    @staticmethod
    def symbol(name: str) -> "Bound":
        return Bound(terms=(((name,), 1),))

    @staticmethod
    def unbounded() -> "Bound":
        return Bound(terms=None)

    @property
    def is_unbounded(self) -> bool:
        return self.terms is None

    def add(self, other: "Bound") -> "Bound":
        if self.terms is None or other.terms is None:
            return Bound.unbounded()
        merged: dict[_Monomial, int] = dict(self.terms)
        for mono, coeff in other.terms:
            merged[mono] = merged.get(mono, 0) + coeff
        return Bound(terms=_canonical(merged))

    def mul(self, other: "Bound") -> "Bound":
        if self.terms is None or other.terms is None:
            return Bound.unbounded()
        product: dict[_Monomial, int] = {}
        for mono_a, coeff_a in self.terms:
            for mono_b, coeff_b in other.terms:
                mono = tuple(sorted(mono_a + mono_b))
                product[mono] = product.get(mono, 0) + coeff_a * coeff_b
        return Bound(terms=_canonical(product))

    def evaluate(self, env: dict[str, int]) -> int | None:
        """Numeric value under ``env``; None when unbounded.

        Raises:
            KeyError: when a symbol is missing from ``env``.
        """
        if self.terms is None:
            return None
        total = 0
        for mono, coeff in self.terms:
            value = coeff
            for sym in mono:
                value *= env[sym]
            total += value
        return total

    def expr(self) -> str:
        """Deterministic human/machine-readable form (``2*S + C + 1``)."""
        if self.terms is None:
            return "unbounded"
        if not self.terms:
            return "0"
        parts: list[str] = []
        ordered = sorted(self.terms, key=lambda t: (-len(t[0]), t[0]))
        for mono, coeff in ordered:
            factors = [str(coeff)] if coeff != 1 or not mono else []
            factors.extend(mono)
            parts.append("*".join(factors))
        return " + ".join(parts)

    def to_jsonable(self) -> list[list[object]] | None:
        """``[[monomial..., coefficient], ...]`` rows, or None."""
        if self.terms is None:
            return None
        return [[list(mono), coeff] for mono, coeff in self.terms]


def _canonical(terms: dict[_Monomial, int]) -> _Terms:
    return tuple(sorted(
        (mono, coeff) for mono, coeff in terms.items() if coeff
    ))


def bound_from_jsonable(rows: list[list[object]] | None) -> Bound:  # repro-lint: ignore[DC001] — consumed by the runtime call-budget gate (tests/resources)
    """Inverse of :meth:`Bound.to_jsonable` (for the runtime gate)."""
    if rows is None:
        return Bound.unbounded()
    terms: dict[_Monomial, int] = {}
    for row in rows:
        symbols, coeff = row
        if not isinstance(symbols, (list, tuple)):
            raise ValueError(f"malformed bound row: {row!r}")
        mono = tuple(sorted(str(part) for part in symbols))
        terms[mono] = terms.get(mono, 0) + int(coeff)  # type: ignore[call-overload]
    return Bound(terms=_canonical(terms))


# ----------------------------------------------------------------------
# loop structure
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class LoopFrame:
    """One loop enclosing a call site, with its resolved trip bound."""

    path: str
    lineno: int
    kind: str  # "for" | "while" | "comp"
    bound: Bound
    #: "constant" | "attribute" | "annotation" | "unresolved"
    origin: str


def _walk_with_loops(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    frame_of: "_FrameFactory",
) -> Iterator[tuple[ast.AST, tuple[LoopFrame, ...]]]:
    """Yield every node of the function body with its loop context.

    Nested ``def``/``class``/``lambda`` bodies are skipped — they are
    separate functions with their own summaries.  Comprehensions count
    as loops: their element expressions run once per generated item.
    """
    stack: list[tuple[ast.AST, tuple[LoopFrame, ...]]] = [
        (child, ()) for child in reversed(node.body)
    ]
    while stack:
        current, frames = stack.pop()
        yield current, frames
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.ClassDef, ast.Lambda)):
            continue
        if isinstance(current, (ast.For, ast.AsyncFor)):
            inner = frames + (frame_of(current),)
            stack.extend((child, frames) for child in (
                current.target, current.iter,
            ))
            for child in (*reversed(current.orelse), *reversed(current.body)):
                stack.append((child, inner))
            continue
        if isinstance(current, ast.While):
            inner = frames + (frame_of(current),)
            stack.append((current.test, frames))
            for child in (*reversed(current.orelse), *reversed(current.body)):
                stack.append((child, inner))
            continue
        if isinstance(current, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                                ast.DictComp)):
            inner = frames
            for index, gen in enumerate(current.generators):
                stack.append((gen.iter, inner))
                inner = inner + (
                    frame_of.comp(current, gen.iter, first=index == 0),
                )
                stack.extend((cond, inner) for cond in gen.ifs)
            if isinstance(current, ast.DictComp):
                stack.append((current.key, inner))
                stack.append((current.value, inner))
            else:
                stack.append((current.elt, inner))
            continue
        stack.extend(
            (child, frames) for child in ast.iter_child_nodes(current)
        )


class _FrameFactory:
    """Builds :class:`LoopFrame`\\ s for one function, resolving bounds
    against the module source (annotations) and the symbol table
    (``self.attr`` defaults)."""

    def __init__(
        self, program: Program, func: FunctionInfo, path: str,
        lines: list[str],
    ) -> None:
        self._table = program.symtab
        self._func = func
        self._path = path
        self._lines = lines

    def __call__(self, node: ast.AST) -> LoopFrame:
        lineno = getattr(node, "lineno", 1)
        kind = "for" if isinstance(node, (ast.For, ast.AsyncFor)) else "while"
        annotated = self._annotation(lineno)
        if annotated is not None:
            return LoopFrame(self._path, lineno, kind, annotated, "annotation")
        if isinstance(node, (ast.For, ast.AsyncFor)):
            resolved = self._iter_bound(node.iter)
            if resolved is not None:
                bound, origin = resolved
                return LoopFrame(self._path, lineno, kind, bound, origin)
        return LoopFrame(
            self._path, lineno, kind, Bound.unbounded(), "unresolved"
        )

    def comp(
        self, node: ast.AST, iter_expr: ast.expr, first: bool
    ) -> LoopFrame:
        """Frame for one comprehension generator.

        A ``loop-bound[...]`` annotation on the comprehension's line
        bounds the *first* generator; later generators resolve their own
        iterables (or stay unbounded) so the product is never silently
        collapsed to the annotation alone.
        """
        lineno = getattr(node, "lineno", 1)
        if first:
            annotated = self._annotation(lineno)
            if annotated is not None:
                return LoopFrame(
                    self._path, lineno, "comp", annotated, "annotation"
                )
        resolved = self._iter_bound(iter_expr)
        if resolved is not None:
            bound, origin = resolved
            return LoopFrame(self._path, lineno, "comp", bound, origin)
        return LoopFrame(
            self._path, lineno, "comp", Bound.unbounded(), "unresolved"
        )

    def _annotation(self, lineno: int) -> Bound | None:
        if not 1 <= lineno <= len(self._lines):
            return None
        match = _LOOP_BOUND_RE.search(self._lines[lineno - 1])
        if match is None:
            return None
        return parse_bound_expr(
            match.group("expr"), self._table, self._enclosing_class()
        )

    def _enclosing_class(self) -> str | None:
        if self._func.cls is None:
            return None
        return f"{self._func.module}.{self._func.cls}"

    def _iter_bound(self, iter_node: ast.expr) -> tuple[Bound, str] | None:
        """Resolve a ``for`` iterable to a trip-count bound, if possible."""
        if isinstance(iter_node, (ast.List, ast.Tuple, ast.Set)):
            return Bound.const(len(iter_node.elts)), "constant"
        if (
            isinstance(iter_node, ast.Call)
            and isinstance(iter_node.func, ast.Name)
            and iter_node.func.id == "range"
        ):
            return self._range_bound(iter_node)
        if isinstance(iter_node, ast.Subscript) and isinstance(
            iter_node.slice, ast.Slice
        ):
            upper = iter_node.slice.upper
            lower = iter_node.slice.lower
            lower_ok = lower is None or (
                isinstance(lower, ast.Constant) and lower.value == 0
            )
            if (
                lower_ok
                and isinstance(upper, ast.Constant)
                and isinstance(upper.value, int)
                and upper.value >= 0
                and iter_node.slice.step is None
            ):
                return Bound.const(upper.value), "constant"
        return None

    def _range_bound(self, call: ast.Call) -> tuple[Bound, str] | None:
        args = call.args
        if call.keywords or not 1 <= len(args) <= 3:
            return None
        values: list[int] = []
        origin = "constant"
        for arg in args:
            if isinstance(arg, ast.Constant) and isinstance(arg.value, int):
                values.append(arg.value)
                continue
            attr_value = self._self_attr_value(arg)
            if attr_value is not None and len(args) == 1:
                values.append(attr_value)
                origin = "attribute"
                continue
            return None
        if len(values) == 1:
            return Bound.const(max(values[0], 0)), origin
        step = values[2] if len(values) == 3 else 1
        if step == 0:
            return None
        span = values[1] - values[0]
        count = -(-span // step) if step > 0 else -(span // -step)
        return Bound.const(max(0, count)), "constant"

    def _self_attr_value(self, node: ast.expr) -> int | None:
        """``self.attr`` → its maximal integer default over subclasses."""
        if not (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id in {"self", "cls"}
        ):
            return None
        cls_qual = self._enclosing_class()
        if cls_qual is None:
            return None
        return attr_int_bound(self._table, cls_qual, node.attr)


def parse_bound_expr(
    expr: str, table: SymbolTable, cls_qual: str | None
) -> Bound | None:
    """Parse a ``loop-bound[...]`` expression.

    The grammar is a ``*``-product of factors: a non-negative integer
    literal, an UPPERCASE corpus symbol from :data:`BOUND_SYMBOLS`, or a
    ``self.attr`` reference resolved (maximised over subclasses) to an
    integer default.  Returns None for anything else — an unparsable
    annotation must not silently certify a bound.
    """
    result = Bound.const(1)
    for raw in expr.split("*"):
        factor = raw.strip()
        if not factor:
            return None
        if factor.isdigit():
            result = result.mul(Bound.const(int(factor)))
            continue
        if _SYMBOL_RE.match(factor):
            if factor not in BOUND_SYMBOLS:
                return None
            result = result.mul(Bound.symbol(factor))
            continue
        if factor.startswith("self.") and cls_qual is not None:
            value = attr_int_bound(table, cls_qual, factor[len("self."):])
            if value is None:
                return None
            result = result.mul(Bound.const(value))
            continue
        return None
    return result


def attr_int_bound(
    table: SymbolTable, cls_qual: str, attr: str
) -> int | None:
    """Maximal integer default of ``attr`` over ``cls_qual`` and every
    subclass in the program.

    A statically bound ``self.attr`` may dispatch against any subclass
    instance, so the certified bound takes the worst case.  Returns None
    when any candidate class fails to resolve the attribute to an
    integer constant (class-level assignment or ``__init__`` keyword
    default, searched through the MRO).
    """
    candidates = [cls_qual] + sorted(
        qual for qual in table.classes
        if qual != cls_qual and table.is_subclass(qual, cls_qual)
    )
    best: int | None = None
    for candidate in candidates:
        value = _resolve_attr_default(table, candidate, attr)
        if value is None:
            return None
        best = value if best is None else max(best, value)
    return best


def _resolve_attr_default(
    table: SymbolTable, cls_qual: str, attr: str
) -> int | None:
    for current in [cls_qual, *sorted(table.ancestors(cls_qual))]:
        cls = table.classes.get(current)
        if cls is None:
            continue
        for stmt in cls.node.body:
            value = _class_level_int(stmt, attr)
            if value is not None:
                return value
        init_qual = cls.methods.get("__init__")
        init = table.functions.get(init_qual) if init_qual else None
        if init is not None:
            value = _init_default_int(init.node, attr)
            if value is not None:
                return value
    return None


def _class_level_int(stmt: ast.stmt, attr: str) -> int | None:
    value: ast.expr | None = None
    if isinstance(stmt, ast.Assign) and any(
        isinstance(t, ast.Name) and t.id == attr for t in stmt.targets
    ):
        value = stmt.value
    elif (
        isinstance(stmt, ast.AnnAssign)
        and isinstance(stmt.target, ast.Name)
        and stmt.target.id == attr
    ):
        value = stmt.value
    if isinstance(value, ast.Constant) and isinstance(value.value, int):
        return value.value
    return None


def _init_default_int(
    node: ast.FunctionDef | ast.AsyncFunctionDef, attr: str
) -> int | None:
    args = node.args
    positional = [*args.posonlyargs, *args.args]
    defaults: list[ast.expr | None] = [None] * (
        len(positional) - len(args.defaults)
    ) + list(args.defaults)
    for param, default in zip(positional, defaults):
        if param.arg == attr and isinstance(default, ast.Constant) and \
                isinstance(default.value, int):
            return default.value
    for param, kw_default in zip(args.kwonlyargs, args.kw_defaults):
        if param.arg == attr and isinstance(kw_default, ast.Constant) and \
                isinstance(kw_default.value, int):
            return kw_default.value
    return None


# ----------------------------------------------------------------------
# LLM client classes and call-site detection
# ----------------------------------------------------------------------
def llm_client_classes(program: Program) -> frozenset[str]:
    """Qualified names of ``LLMClient`` and every subclass in the set."""
    cached = program.analysis_cache.get("res_llm_classes")
    if cached is not None:
        return cached  # type: ignore[return-value]
    table = program.symtab
    out = {
        qual for qual in table.classes
        if qual == LLM_BASE_CLASS or table.is_subclass(qual, LLM_BASE_CLASS)
    }
    result = frozenset(out)
    program.analysis_cache["res_llm_classes"] = result
    return result


def _is_exempt(func: FunctionInfo, llm_classes: frozenset[str]) -> bool:
    """LLM client internals are below the seam, not pipeline code."""
    if func.module == LLM_BASE_MODULE:
        return True
    if func.cls is None:
        return False
    return f"{func.module}.{func.cls}" in llm_classes


def _llm_receiver(node: ast.Call) -> str | None:
    """Dotted receiver of an attribute call (``self.llm`` for
    ``self.llm.complete(...)``), else None."""
    if not isinstance(node.func, ast.Attribute):
        return None
    return dotted_name(node.func.value)


def _receiver_is_llm(receiver: str | None) -> bool:
    if receiver is None:
        return False
    return bool(_LLM_RECEIVER_RE.search(receiver.rsplit(".", 1)[-1]))


def _stage_expr_value(node: ast.expr) -> str | None:
    """The stage value of a ``stage=`` argument, when statically known.

    Recognizes ``Stage.<NAME>`` attribute references (resolved through
    the runtime enum, so the analysis can never drift from the tag
    vocabulary) and string constants coerced the same way the runtime
    coerces them.
    """
    from repro.llm.stage import Stage

    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "Stage"
    ):
        member = getattr(Stage, node.attr, None)
        if isinstance(member, Stage):
            return member.value
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return Stage.coerce(node.value).value
    return None


def call_stage_tag(api: str, node: ast.Call) -> str | None:
    """The statically resolved stage tag of a ``complete``/
    ``complete_many`` call, or None when the call is untagged *and* has
    no stage argument at all (the RES005 shape).

    A positional or keyword ``stage`` argument whose value cannot be
    resolved statically (a variable, a parameter being threaded through)
    still counts as *tagged* — the wrapper pattern
    ``super().complete(prompt, stage)`` must not be flagged."""
    from repro.llm.stage import Stage

    if len(node.args) >= 2:
        resolved = _stage_expr_value(node.args[1])
        return resolved if resolved is not None else LLM_API_STAGES[api]
    for keyword in node.keywords:
        if keyword.arg == "stage":
            resolved = _stage_expr_value(keyword.value)
            return resolved if resolved is not None else LLM_API_STAGES[api]
        if keyword.arg == "task":
            if isinstance(keyword.value, ast.Constant) and isinstance(
                keyword.value.value, str
            ):
                return Stage.from_task(keyword.value.value).value
            return LLM_API_STAGES[api]
        if keyword.arg is None:
            # **kwargs forwarding: assume tagged through the mapping.
            return LLM_API_STAGES[api]
    return None


def _call_stage(api: str, node: ast.Call) -> str:
    if api in {"complete", "complete_many"}:
        tag = call_stage_tag(api, node)
        if tag is not None:
            return tag
    return LLM_API_STAGES[api]


def _calls_per_hit(api: str, node: ast.Call) -> Bound:
    """Metered calls one execution of the site costs.

    Every convenience wrapper and ``complete`` itself meter exactly one
    call; ``complete_many`` meters one per prompt, resolvable only for
    literal prompt lists.
    """
    if api != "complete_many":
        return Bound.const(1)
    if node.args and isinstance(node.args[0], (ast.List, ast.Tuple)):
        return Bound.const(len(node.args[0].elts))
    return Bound.unbounded()


# ----------------------------------------------------------------------
# per-function summaries
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class LLMSite:
    """One syntactic call into the LLM client API."""

    path: str
    line: int
    col: int
    api: str
    stage: str
    receiver: str
    precise: bool
    calls_per_hit: Bound


@dataclass(frozen=True, slots=True)
class _Callout:
    target: str
    line: int
    loops: tuple[LoopFrame, ...]


@dataclass(frozen=True, slots=True)
class FuncSummary:
    """LLM sites and outgoing edges of one function, loop-annotated."""

    qualname: str
    sites: tuple[tuple[LLMSite, tuple[LoopFrame, ...]], ...]
    callouts: tuple[_Callout, ...]


def compute_summaries(program: Program) -> dict[str, FuncSummary]:
    """Loop-annotated LLM-site/call-edge summaries for every function
    outside the LLM client stack.  Memoised on ``program``."""
    cached = program.analysis_cache.get("res_summaries")
    if cached is not None:
        return cached  # type: ignore[return-value]
    table = program.symtab
    llm_classes = llm_client_classes(program)
    summaries: dict[str, FuncSummary] = {}
    for qual in sorted(table.functions):
        func = table.functions[qual]
        if _is_exempt(func, llm_classes):
            continue
        flow = program.callgraph.flows.get(qual)
        summaries[qual] = _summarise(program, func, flow, llm_classes)
    program.analysis_cache["res_summaries"] = summaries
    return summaries


def _summarise(
    program: Program,
    func: FunctionInfo,
    flow: FunctionFlow | None,
    llm_classes: frozenset[str],
) -> FuncSummary:
    table = program.symtab
    symbols = table.modules.get(func.module)
    path = symbols.module.display_path if symbols is not None else func.module
    lines = symbols.module.lines if symbols is not None else []
    frame_of = _FrameFactory(program, func, path, lines)
    site_by_node: dict[int, tuple[str | None, str]] = {}
    if flow is not None:
        for call in flow.calls:
            site_by_node[id(call.node)] = (call.target, call.kind)
    sites: list[tuple[LLMSite, tuple[LoopFrame, ...]]] = []
    callouts: list[_Callout] = []
    for node, frames in _walk_with_loops(func.node, frame_of):
        if not isinstance(node, ast.Call):
            continue
        target, kind = site_by_node.get(id(node), (None, ""))
        resolved = table.functions.get(target) if target else None
        if resolved is not None and kind == "function":
            if resolved.cls is not None and \
                    f"{resolved.module}.{resolved.cls}" in llm_classes:
                # A precisely resolved client-API call is a terminal LLM
                # site — never followed as an ordinary edge (the client
                # internals are below the meter seam).
                if resolved.name in LLM_API_STAGES:
                    sites.append((
                        _make_site(node, path, resolved.name, precise=True),
                        frames,
                    ))
                continue
            callouts.append(_Callout(resolved.qualname, node.lineno, frames))
            continue
        if kind == "class" and target is not None:
            if target in llm_classes:
                continue
            init = table.find_method(target, "__init__")
            if init is not None:
                callouts.append(_Callout(init, node.lineno, frames))
            continue
        if isinstance(node.func, ast.Attribute):
            api = node.func.attr
            if api in LLM_API_STAGES and \
                    _receiver_is_llm(_llm_receiver(node)):
                sites.append((
                    _make_site(node, path, api, precise=False), frames,
                ))
    return FuncSummary(
        qualname=func.qualname,
        sites=tuple(sites),
        callouts=tuple(callouts),
    )


def _make_site(
    node: ast.Call, path: str, api: str, precise: bool
) -> LLMSite:
    return LLMSite(
        path=path,
        line=node.lineno,
        col=node.col_offset + 1,
        api=api,
        stage=_call_stage(api, node),
        receiver=_llm_receiver(node) or "",
        precise=precise,
        calls_per_hit=_calls_per_hit(api, node),
    )


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class EntryPoint:
    """One externally driven function the budgets are certified for."""

    qualname: str
    algorithm: str
    kind: str  # "pipeline" | "fusion" | "qa"
    phase: str  # "query" | "ingest" | "setup"


def compute_entry_points(program: Program) -> tuple[EntryPoint, ...]:
    """``MultiRAG`` plus every registered baseline, memoised."""
    cached = program.analysis_cache.get("res_entry_points")
    if cached is not None:
        return cached  # type: ignore[return-value]
    table = program.symtab
    entries: list[EntryPoint] = []
    for method, phase in (
        ("run", "query"), ("add_source", "ingest"), ("ingest", "ingest"),
    ):
        qual = table.find_method(ROOT_CLASS, method)
        if qual is not None:
            entries.append(EntryPoint(qual, "multirag", "pipeline", phase))
    for cls_qual in sorted(table.classes):
        cls = table.classes[cls_qual]
        decorators = set(cls.decorators)
        if decorators & _FUSION_DECORATORS:
            kind = "fusion"
        elif decorators & _QA_DECORATORS:
            kind = "qa"
        else:
            continue
        algorithm = _registered_name(cls.node) or cls.name.lower()
        query_method = "query" if kind == "fusion" else "answer"
        for method, phase in ((query_method, "query"), ("setup", "setup")):
            qual = table.find_method(cls_qual, method)
            if qual is not None:
                entries.append(EntryPoint(qual, algorithm, kind, phase))
    result = tuple(entries)
    program.analysis_cache["res_entry_points"] = result
    return result


def _registered_name(node: ast.ClassDef) -> str | None:
    for stmt in node.body:
        value = _class_level_str(stmt, "name")
        if value is not None:
            return value
    return None


def _class_level_str(stmt: ast.stmt, attr: str) -> str | None:
    value: ast.expr | None = None
    if isinstance(stmt, ast.Assign) and any(
        isinstance(t, ast.Name) and t.id == attr for t in stmt.targets
    ):
        value = stmt.value
    elif (
        isinstance(stmt, ast.AnnAssign)
        and isinstance(stmt.target, ast.Name)
        and stmt.target.id == attr
    ):
        value = stmt.value
    if isinstance(value, ast.Constant) and isinstance(value.value, str):
        return value.value
    return None


def compute_entry_reachable(program: Program) -> set[str]:
    """Function qualnames reachable from any entry point over precise
    call edges, including subclass overrides of reached methods."""
    cached = program.analysis_cache.get("res_entry_reachable")
    if cached is not None:
        return cached  # type: ignore[return-value]
    reachable = _reachable_from(
        program, [entry.qualname for entry in compute_entry_points(program)]
    )
    program.analysis_cache["res_entry_reachable"] = reachable
    return reachable


def compute_query_reachable(program: Program) -> set[str]:
    """Like :func:`compute_entry_reachable`, query-phase entries only."""
    cached = program.analysis_cache.get("res_query_reachable")
    if cached is not None:
        return cached  # type: ignore[return-value]
    reachable = _reachable_from(program, [
        entry.qualname for entry in compute_entry_points(program)
        if entry.phase == "query"
    ])
    program.analysis_cache["res_query_reachable"] = reachable
    return reachable


def _reachable_from(program: Program, roots: list[str]) -> set[str]:
    table = program.symtab
    reachable: set[str] = set()
    pending = list(roots)
    while pending:
        qual = pending.pop()
        if qual in reachable:
            continue
        reachable.add(qual)
        func = table.functions.get(qual)
        if func is not None and func.cls is not None:
            base_qual = f"{func.module}.{func.cls}"
            for cls_qual in sorted(table.classes):
                if cls_qual == base_qual:
                    continue
                if not table.is_subclass(cls_qual, base_qual):
                    continue
                override = table.classes[cls_qual].methods.get(func.name)
                if override is not None and override not in reachable:
                    pending.append(override)
        flow = program.callgraph.flows.get(qual)
        if flow is None:
            continue
        for site in flow.calls:
            if (
                site.kind == "function"
                and site.target is not None
                and site.target not in reachable
            ):
                pending.append(site.target)
    return reachable


# ----------------------------------------------------------------------
# interprocedural budgets
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class PathSite:
    """One LLM site as seen from an entry point: the site, the product
    of every enclosing loop bound down the call path, and the path."""

    site: LLMSite
    multiplier: Bound
    call_path: tuple[str, ...]
    loops: tuple[tuple[str, LoopFrame], ...]

    @property
    def cost(self) -> Bound:
        return self.multiplier.mul(self.site.calls_per_hit)


@dataclass(frozen=True, slots=True)
class EntryBudget:
    """The certified per-invocation budget of one entry point."""

    entry: EntryPoint
    sites: tuple[PathSite, ...]
    bound: Bound


def compute_entry_budgets(program: Program) -> tuple[EntryBudget, ...]:
    """Compose function summaries into per-entry budgets, memoised.

    Branches are summed (sound over-approximation); recursion through an
    LLM-relevant cycle yields an unbounded synthetic site anchored at
    the back edge.
    """
    cached = program.analysis_cache.get("res_entry_budgets")
    if cached is not None:
        return cached  # type: ignore[return-value]
    summaries = compute_summaries(program)
    relevant = _llm_relevant(summaries)
    memo: dict[str, tuple[PathSite, ...]] = {}
    budgets: list[EntryBudget] = []
    for entry in compute_entry_points(program):
        sites = _contributions(
            entry.qualname, summaries, relevant, memo, frozenset()
        )
        bound = Bound.const(0)
        for path_site in sites:
            bound = bound.add(path_site.cost)
        budgets.append(EntryBudget(entry=entry, sites=sites, bound=bound))
    result = tuple(budgets)
    program.analysis_cache["res_entry_budgets"] = result
    return result


def _llm_relevant(summaries: dict[str, FuncSummary]) -> frozenset[str]:
    """Functions that can transitively reach an LLM call site."""
    relevant = {
        qual for qual, summary in summaries.items() if summary.sites
    }
    changed = True
    while changed:
        changed = False
        for qual, summary in summaries.items():
            if qual in relevant:
                continue
            if any(c.target in relevant for c in summary.callouts):
                relevant.add(qual)
                changed = True
    return frozenset(relevant)


def _contributions(
    qual: str,
    summaries: dict[str, FuncSummary],
    relevant: frozenset[str],
    memo: dict[str, tuple[PathSite, ...]],
    in_progress: frozenset[str],
) -> tuple[PathSite, ...]:
    if qual in memo:
        return memo[qual]
    summary = summaries.get(qual)
    if summary is None or qual not in relevant:
        memo[qual] = ()
        return ()
    collected: list[PathSite] = []
    for site, frames in summary.sites:
        multiplier = Bound.const(1)
        for frame in frames:
            multiplier = multiplier.mul(frame.bound)
        collected.append(PathSite(
            site=site,
            multiplier=multiplier,
            call_path=(qual,),
            loops=tuple((qual, frame) for frame in frames),
        ))
    active = in_progress | {qual}
    for callout in summary.callouts:
        if callout.target not in relevant:
            continue
        if callout.target in active:
            # An LLM-relevant cycle: no static trip count exists, so the
            # whole path is unbounded (anchored at the back edge).
            collected.append(PathSite(
                site=LLMSite(
                    path=_site_path(summaries, qual),
                    line=callout.line,
                    col=1,
                    api="<recursion>",
                    stage="-",
                    receiver=callout.target,
                    precise=True,
                    calls_per_hit=Bound.unbounded(),
                ),
                multiplier=Bound.unbounded(),
                call_path=(qual, callout.target),
                loops=tuple((qual, frame) for frame in callout.loops),
            ))
            continue
        outer = Bound.const(1)
        for frame in callout.loops:
            outer = outer.mul(frame.bound)
        for inner in _contributions(
            callout.target, summaries, relevant, memo, active
        ):
            collected.append(PathSite(
                site=inner.site,
                multiplier=outer.mul(inner.multiplier),
                call_path=(qual,) + inner.call_path,
                loops=tuple(
                    (qual, frame) for frame in callout.loops
                ) + inner.loops,
            ))
    result = tuple(collected)
    if all(ps.site.api != "<recursion>" for ps in result):
        # Recursion markers depend on which ancestors were on the path;
        # only recursion-free results are safe to reuse from any caller.
        memo[qual] = result
    return result


def _site_path(summaries: dict[str, FuncSummary], qual: str) -> str:
    summary = summaries.get(qual)
    if summary is not None:
        for site, _ in summary.sites:
            return site.path
    return qual


# ----------------------------------------------------------------------
# RES001 / RES003 / RES004 fact streams
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class RawTransportSite:
    """A ``._generate``/``._generate_many`` call above the meter seam."""

    path: str
    line: int
    col: int
    attr: str
    function: str


def compute_raw_transport_sites(
    program: Program,
) -> tuple[RawTransportSite, ...]:
    """RES001 facts: raw transport calls in entry-reachable pipeline
    code (the client stack itself is exempt — it *is* the seam)."""
    cached = program.analysis_cache.get("res_raw_sites")
    if cached is not None:
        return cached  # type: ignore[return-value]
    table = program.symtab
    llm_classes = llm_client_classes(program)
    out: list[RawTransportSite] = []
    for qual in sorted(compute_entry_reachable(program)):
        func = table.functions.get(qual)
        if func is None or _is_exempt(func, llm_classes):
            continue
        symbols = table.modules.get(func.module)
        path = symbols.module.display_path if symbols else func.module
        flow = program.callgraph.flows.get(qual)
        resolved_cls: dict[int, str | None] = {}
        if flow is not None:
            for call in flow.calls:
                target = table.functions.get(call.target) if call.target \
                    else None
                resolved_cls[id(call.node)] = (
                    f"{target.module}.{target.cls}"
                    if target is not None and target.cls is not None
                    else None
                )
        for node in _own_nodes(func.node):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in RAW_TRANSPORT
            ):
                continue
            # Only an LLM client's transport counts: a precise target on
            # a non-client class (e.g. a pipeline method that happens to
            # be named ``_generate``) is unrelated, and an unresolved
            # receiver must at least look like an LLM binding.
            target_cls = resolved_cls.get(id(node))
            if target_cls is not None and target_cls not in llm_classes:
                continue
            if target_cls is None and not _receiver_is_llm(
                _llm_receiver(node)
            ):
                continue
            out.append(RawTransportSite(
                path=path,
                line=node.lineno,
                col=node.col_offset + 1,
                attr=node.func.attr,
                function=qual,
            ))
    result = tuple(out)
    program.analysis_cache["res_raw_sites"] = result
    return result


@dataclass(frozen=True, slots=True)
class UntaggedCallSite:
    """A ``complete``/``complete_many`` call with no stage tag (RES005)."""

    path: str
    line: int
    col: int
    api: str
    function: str


def compute_untagged_sites(program: Program) -> tuple[UntaggedCallSite, ...]:
    """RES005 facts: entry-reachable ``complete``/``complete_many``
    calls carrying neither a ``stage`` argument nor a legacy ``task=``
    keyword.  Untagged calls fold to ``Stage.OTHER`` at runtime (with a
    DeprecationWarning), which defeats per-stage routing, budgets and
    attribution — every pipeline call site must name its stage.  The
    client stack itself is exempt: wrappers thread the caller's tag."""
    cached = program.analysis_cache.get("res_untagged_sites")
    if cached is not None:
        return cached  # type: ignore[return-value]
    table = program.symtab
    llm_classes = llm_client_classes(program)
    out: list[UntaggedCallSite] = []
    for qual in sorted(compute_entry_reachable(program)):
        func = table.functions.get(qual)
        if func is None or _is_exempt(func, llm_classes):
            continue
        symbols = table.modules.get(func.module)
        path = symbols.module.display_path if symbols else func.module
        flow = program.callgraph.flows.get(qual)
        resolved_cls: dict[int, str | None] = {}
        if flow is not None:
            for call in flow.calls:
                target = table.functions.get(call.target) if call.target \
                    else None
                resolved_cls[id(call.node)] = (
                    f"{target.module}.{target.cls}"
                    if target is not None and target.cls is not None
                    else None
                )
        for node in _own_nodes(func.node):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in {"complete", "complete_many"}
            ):
                continue
            target_cls = resolved_cls.get(id(node))
            if target_cls is not None and target_cls not in llm_classes:
                continue
            if target_cls is None and not _receiver_is_llm(
                _llm_receiver(node)
            ):
                continue
            if call_stage_tag(node.func.attr, node) is not None:
                continue
            out.append(UntaggedCallSite(
                path=path,
                line=node.lineno,
                col=node.col_offset + 1,
                api=node.func.attr,
                function=qual,
            ))
    result = tuple(out)
    program.analysis_cache["res_untagged_sites"] = result
    return result


@dataclass(frozen=True, slots=True)
class RetrySite:
    """An unbounded retry loop around LLM or blocking I/O (RES003)."""

    path: str
    line: int
    function: str
    reason: str


def compute_retry_sites(program: Program) -> tuple[RetrySite, ...]:
    """RES003 facts: in entry-reachable code, a loop with no resolvable
    trip bound that (a) wraps an LLM/blocking call in ``try`` — the
    retry-forever shape — or (b) contains a ``sleep`` with a
    non-constant duration — uncapped backoff."""
    cached = program.analysis_cache.get("res_retry_sites")
    if cached is not None:
        return cached  # type: ignore[return-value]
    table = program.symtab
    llm_classes = llm_client_classes(program)
    out: list[RetrySite] = []
    for qual in sorted(compute_entry_reachable(program)):
        func = table.functions.get(qual)
        if func is None or _is_exempt(func, llm_classes):
            continue
        symbols = table.modules.get(func.module)
        path = symbols.module.display_path if symbols else func.module
        lines = symbols.module.lines if symbols else []
        frame_of = _FrameFactory(program, func, path, lines)
        seen: set[int] = set()
        for node, frames in _walk_with_loops(func.node, frame_of):
            if not frames or not frames[-1].bound.is_unbounded:
                continue
            frame = frames[-1]
            if frame.lineno in seen:
                continue
            reason: str | None = None
            if isinstance(node, ast.Try) and _has_external_call(node):
                reason = (
                    "retry loop has no resolvable attempt cap around an "
                    "LLM/blocking call"
                )
            elif _is_uncapped_sleep(node):
                reason = "unbounded loop sleeps for a non-constant duration"
            if reason is not None:
                seen.add(frame.lineno)
                out.append(RetrySite(
                    path=path, line=frame.lineno, function=qual,
                    reason=reason,
                ))
    result = tuple(out)
    program.analysis_cache["res_retry_sites"] = result
    return result


def _own_nodes(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.AST]:
    pending: list[ast.AST] = list(node.body)
    while pending:
        current = pending.pop()
        yield current
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.ClassDef)):
            continue
        pending.extend(ast.iter_child_nodes(current))


def _has_external_call(node: ast.Try) -> bool:
    for stmt in node.body:
        for sub in ast.walk(stmt):
            if not isinstance(sub, ast.Call):
                continue
            if isinstance(sub.func, ast.Attribute):
                attr = sub.func.attr
                if attr in LLM_API_STAGES or attr in RAW_TRANSPORT or \
                        attr in _BLOCKING_ATTRS:
                    return True
    return False


def _is_uncapped_sleep(node: ast.AST) -> bool:
    if not (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "sleep"
    ):
        return False
    if not node.args:
        return False
    return not isinstance(node.args[0], ast.Constant)


@dataclass(frozen=True, slots=True)
class GrowthSite:
    """Unbounded growth of a long-lived instance collection (RES004)."""

    path: str
    line: int
    col: int
    cls_qual: str
    attr: str
    via: str
    function: str


def compute_growth_sites(program: Program) -> tuple[GrowthSite, ...]:
    """RES004 facts: on the query path, a ``self``-rooted container that
    only ever grows — no ``pop``/``clear``/``remove``/reassignment seam
    anywhere in the owning class or its ancestors.

    Attributes whose static type resolves to a program class are skipped
    at the owner level: the growth (and its seam) lives inside that
    class and is analysed there.  Constant-key subscript stores are
    bounded by construction and ignored.
    """
    cached = program.analysis_cache.get("res_growth_sites")
    if cached is not None:
        return cached  # type: ignore[return-value]
    table = program.symtab
    out: list[GrowthSite] = []
    seam_memo: dict[tuple[str, str], bool] = {}
    for qual in sorted(compute_query_reachable(program)):
        func = table.functions.get(qual)
        if func is None or func.cls is None or func.name == "__init__":
            continue
        cls_qual = f"{func.module}.{func.cls}"
        cls = table.classes.get(cls_qual)
        if cls is None:
            continue
        symbols = table.modules.get(func.module)
        path = symbols.module.display_path if symbols else func.module
        for attr, node, via in _growth_writes(func.node):
            if cls.attr_types.get(attr) in table.classes:
                continue
            key = (cls_qual, attr)
            if key not in seam_memo:
                seam_memo[key] = _has_eviction_seam(table, cls_qual, attr)
            if seam_memo[key]:
                continue
            out.append(GrowthSite(
                path=path,
                line=node.lineno,
                col=getattr(node, "col_offset", 0) + 1,
                cls_qual=cls_qual,
                attr=attr,
                via=via,
                function=qual,
            ))
    result = tuple(out)
    program.analysis_cache["res_growth_sites"] = result
    return result


def _growth_writes(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[tuple[str, ast.AST, str]]:
    """``(attr, node, how)`` for every growing write to ``self.attr``."""
    for sub in _own_nodes(node):
        if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
            if sub.func.attr in _GROWTH_METHODS:
                attr = _self_rooted_attr(sub.func.value)
                if attr is not None:
                    yield attr, sub, f".{sub.func.attr}()"
            continue
        targets: list[ast.expr] = []
        if isinstance(sub, ast.Assign):
            targets = list(sub.targets)
        elif isinstance(sub, ast.AugAssign):
            targets = [sub.target]
        for target in targets:
            if not isinstance(target, ast.Subscript):
                continue
            if isinstance(target.slice, ast.Constant):
                continue
            attr = _self_rooted_attr(target.value)
            if attr is not None:
                yield attr, target, "subscript store"


def _self_rooted_attr(node: ast.expr) -> str | None:
    """First attribute of a ``self.attr...`` chain, else None."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name) and current.id == "self" and parts:
        return parts[-1]
    return None


def _has_eviction_seam(
    table: SymbolTable, cls_qual: str, attr: str
) -> bool:
    for current in [cls_qual, *sorted(table.ancestors(cls_qual))]:
        cls = table.classes.get(current)
        if cls is None:
            continue
        for method_qual in cls.methods.values():
            func = table.functions.get(method_qual)
            if func is None:
                continue
            for sub in _own_nodes(func.node):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in _EVICTION_METHODS
                    and _self_rooted_attr(sub.func.value) == attr
                ):
                    return True
                if isinstance(sub, ast.Delete) and any(
                    isinstance(t, ast.Subscript)
                    and _self_rooted_attr(t.value) == attr
                    for t in sub.targets
                ):
                    return True
                if (
                    func.name != "__init__"
                    and isinstance(sub, ast.Assign)
                    and any(
                        isinstance(t, ast.Attribute)
                        and isinstance(t.value, ast.Name)
                        and t.value.id == "self"
                        and t.attr == attr
                        for t in sub.targets
                    )
                ):
                    return True
    return False


# ----------------------------------------------------------------------
# reports
# ----------------------------------------------------------------------
def llm_call_report(program: Program) -> dict[str, object]:
    """The ``repro lint --graph llm`` payload: the complete call-site
    inventory keyed by algorithm → entry → stage, with wrapper-chain
    metadata — the routing table a multi-backend gateway consumes."""
    table = program.symtab
    llm_classes = llm_client_classes(program)
    clients: list[dict[str, object]] = []
    for qual in sorted(llm_classes):
        cls = table.classes.get(qual)
        if cls is None:
            continue
        init_qual = cls.methods.get("__init__")
        init = table.functions.get(init_qual) if init_qual else None
        wraps_inner = init is not None and "inner" in {
            a.arg for a in (*init.node.args.posonlyargs,
                            *init.node.args.args,
                            *init.node.args.kwonlyargs)
        }
        clients.append({
            "class": qual,
            "wraps_inner": wraps_inner,
            "overrides": sorted(
                name for name in cls.methods
                if name in LLM_API_STAGES or name in RAW_TRANSPORT
            ),
        })
    kinds: dict[str, str] = {}
    entries_by_algorithm: dict[str, list[dict[str, object]]] = {}
    for budget in compute_entry_budgets(program):
        entry = budget.entry
        kinds[entry.algorithm] = entry.kind
        entries_by_algorithm.setdefault(entry.algorithm, []).append({
            "entry": entry.qualname,
            "phase": entry.phase,
            "bound": budget.bound.expr(),
            "bound_terms": budget.bound.to_jsonable(),
            "sites": [_path_site_doc(ps) for ps in budget.sites],
        })
    return {
        "symbols": dict(BOUND_SYMBOLS),
        "seam": {
            "base_class": LLM_BASE_CLASS,
            "metered_api": sorted(LLM_API_STAGES),
            "raw_transport": sorted(RAW_TRANSPORT),
        },
        "clients": clients,
        "algorithms": [
            {
                "algorithm": name,
                "kind": kinds[name],
                "entries": entries_by_algorithm[name],
            }
            for name in sorted(entries_by_algorithm)
        ],
    }


def _path_site_doc(path_site: PathSite) -> dict[str, object]:
    site = path_site.site
    return {
        "path": site.path,
        "line": site.line,
        "api": site.api,
        "stage": site.stage,
        "receiver": site.receiver,
        "resolution": "precise" if site.precise else "name-match",
        "calls_per_hit": site.calls_per_hit.expr(),
        "multiplier": path_site.multiplier.expr(),
        "cost": path_site.cost.expr(),
        "call_path": list(path_site.call_path),
        "loops": [
            {
                "function": qual,
                "path": frame.path,
                "line": frame.lineno,
                "kind": frame.kind,
                "bound": frame.bound.expr(),
                "origin": frame.origin,
            }
            for qual, frame in path_site.loops
        ],
    }


def llm_bounds_payload(program: Program) -> dict[str, object]:
    """The certified query-phase bounds (``--graph llm-bounds``), the
    document committed to ``results/llm_call_bounds.json``.

    Each algorithm row carries the total per-query bound plus a
    ``stages`` breakdown — one certified bound per stage tag — which is
    what the gateway's per-stage runtime quotas
    (``MultiRAGConfig.llm_stage_limits``) are calibrated against.
    """
    bounds: dict[str, dict[str, object]] = {}
    for budget in compute_entry_budgets(program):
        entry = budget.entry
        if entry.phase != "query":
            continue
        key = (
            "multirag" if entry.kind == "pipeline"
            else f"{entry.kind}:{entry.algorithm}"
        )
        per_stage: dict[str, Bound] = {}
        for path_site in budget.sites:
            stage = path_site.site.stage
            per_stage[stage] = per_stage.get(stage, Bound.const(0)).add(
                path_site.cost
            )
        bounds[key] = {
            "entry": entry.qualname,
            "algorithm": entry.algorithm,
            "kind": entry.kind,
            "bound": budget.bound.expr(),
            "terms": budget.bound.to_jsonable(),
            "sites": len(budget.sites),
            "stages": {
                stage: {
                    "bound": per_stage[stage].expr(),
                    "terms": per_stage[stage].to_jsonable(),
                }
                for stage in sorted(per_stage)
            },
        }
    return {
        "symbols": dict(BOUND_SYMBOLS),
        "bounds": {key: bounds[key] for key in sorted(bounds)},
    }
