"""Project-wide symbol table for the whole-program flow analyses.

The per-file rules see one module at a time; the flow rules (exception
propagation, reachability, taint) need to resolve a name written in one
module to the function or class *defined* in another.  This module builds
that view: every function, method and class in the linted file set,
indexed by fully-qualified name (``repro.core.pipeline.MultiRAG.query``),
together with each module's import bindings and ``__all__`` exports.

Like the rest of ``repro.lint`` it is pure stdlib ``ast`` — no imports,
no execution of the code under analysis.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.registry import ModuleUnderLint
from repro.lint.rules.common import ImportMap, collect_imports, dotted_name


@dataclass(slots=True)
class FunctionInfo:
    """One function or method definition."""

    qualname: str
    module: str
    name: str
    cls: str | None
    node: ast.FunctionDef | ast.AsyncFunctionDef
    lineno: int
    decorators: tuple[str, ...] = ()

    @property
    def is_public(self) -> bool:
        return not self.name.startswith("_")

    @property
    def is_dunder(self) -> bool:
        return self.name.startswith("__") and self.name.endswith("__")

    def docstring(self) -> str | None:
        return ast.get_docstring(self.node)


@dataclass(slots=True)
class ClassInfo:
    """One class definition with its base names and method index."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    lineno: int
    bases: tuple[str, ...] = ()
    methods: dict[str, str] = field(default_factory=dict)
    decorators: tuple[str, ...] = ()
    #: attribute name → dotted type name, from class-level ``x: T``
    #: annotations and ``self.x = T(...)`` assignments in methods.
    attr_types: dict[str, str] = field(default_factory=dict)

    @property
    def is_public(self) -> bool:
        return not self.name.startswith("_")


@dataclass(slots=True)
class ModuleSymbols:
    """Everything the flow analyses need to know about one module."""

    name: str
    module: ModuleUnderLint
    is_package: bool
    imports: ImportMap
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    exports: tuple[str, ...] = ()
    has_all: bool = False
    #: dotted module targets of every import statement (absolute spelling).
    imported_modules: tuple[str, ...] = ()
    #: module-level statements, minus function/class bodies (executed at
    #: import time: registrations, table construction, __all__).
    toplevel: list[ast.stmt] = field(default_factory=list)

    @property
    def is_public(self) -> bool:
        return not any(
            part.startswith("_") and part != "__init__"
            for part in self.name.split(".")
        )


#: resolution results: ("function" | "class" | "module", qualified name)
Symbol = tuple[str, str]


def module_name_of(module: ModuleUnderLint) -> str:
    """Dotted module name; packages drop the ``__init__`` suffix."""
    parts = module.package_parts
    if not parts:
        return ""
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _decorator_names(node: ast.FunctionDef | ast.AsyncFunctionDef | ast.ClassDef) -> tuple[str, ...]:
    names = []
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        dotted = dotted_name(target)
        if dotted:
            names.append(dotted)
    return tuple(names)


def _collect_exports(tree: ast.Module) -> tuple[tuple[str, ...], bool]:
    """Names listed in a module-level ``__all__`` assignment."""
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and any(
                isinstance(t, ast.Name) and t.id == "__all__"
                for t in node.targets
            )
            and isinstance(node.value, (ast.List, ast.Tuple))
        ):
            names = tuple(
                elt.value
                for elt in node.value.elts
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
            )
            return names, True
    return (), False


def imported_module_targets(tree: ast.Module) -> tuple[str, ...]:
    """Absolute dotted targets of every import statement in ``tree``.

    Function-level imports count too — they are runtime dependency edges
    (the import executes when the function runs), which is exactly what
    the flow cache's transitive invalidation needs to honour.
    """
    targets: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                targets.add(alias.name)
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            targets.add(node.module)
            for alias in node.names:
                # ``from repro.lint.rules import determinism`` imports a
                # submodule; record the candidate and let the import-graph
                # builder keep whichever names actually are modules.
                targets.add(f"{node.module}.{alias.name}")
    return tuple(sorted(targets))


def _collect_attr_types(cls: ClassInfo, resolve_local: dict[str, str]) -> None:
    """Fill ``cls.attr_types`` from annotations and ``self.x = T()``."""
    for stmt in cls.node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            annotated = _annotation_name(stmt.annotation)
            if annotated:
                cls.attr_types.setdefault(stmt.target.id, annotated)
    for node in ast.walk(cls.node):
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
            continue
        ctor = dotted_name(node.value.func)
        if ctor is None:
            continue
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                cls.attr_types.setdefault(target.attr, ctor)
    # Resolve bare local class names now so later lookups are uniform.
    for attr in sorted(cls.attr_types):
        cls.attr_types[attr] = resolve_local.get(
            cls.attr_types[attr], cls.attr_types[attr]
        )


def _annotation_name(node: ast.expr) -> str | None:
    """Dotted name of a simple annotation; unwraps ``X | None``/``Optional``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left = _annotation_name(node.left)
        if left and left != "None":
            return left
        return _annotation_name(node.right)
    if isinstance(node, ast.Subscript):
        head = dotted_name(node.value)
        if head in {"Optional", "typing.Optional"}:
            return _annotation_name(node.slice)
        return None
    dotted = dotted_name(node)
    return None if dotted in {"None"} else dotted


class SymbolTable:
    """Global function/class/module index over a set of parsed modules."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleSymbols] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self._ancestor_cache: dict[str, frozenset[str]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_module(self, module: ModuleUnderLint) -> ModuleSymbols | None:
        """Index one parsed module; returns None for files outside a
        ``repro`` package tree (the flow rules have nothing to say there)."""
        name = module_name_of(module)
        if not name:
            return None
        exports, has_all = _collect_exports(module.tree)
        info = ModuleSymbols(
            name=name,
            module=module,
            is_package=module.package_parts[-1] == "__init__",
            imports=collect_imports(module.tree),
            exports=exports,
            has_all=has_all,
            imported_modules=imported_module_targets(module.tree),
        )
        local_classes: dict[str, str] = {}
        for stmt in module.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = FunctionInfo(
                    qualname=f"{name}.{stmt.name}",
                    module=name,
                    name=stmt.name,
                    cls=None,
                    node=stmt,
                    lineno=stmt.lineno,
                    decorators=_decorator_names(stmt),
                )
                info.functions[fn.qualname] = fn
            elif isinstance(stmt, ast.ClassDef):
                cls = ClassInfo(
                    qualname=f"{name}.{stmt.name}",
                    module=name,
                    name=stmt.name,
                    node=stmt,
                    lineno=stmt.lineno,
                    bases=tuple(
                        b for b in (dotted_name(base) for base in stmt.bases)
                        if b is not None
                    ),
                    decorators=_decorator_names(stmt),
                )
                info.classes[cls.qualname] = cls
                local_classes[cls.name] = cls.qualname
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        fn = FunctionInfo(
                            qualname=f"{cls.qualname}.{sub.name}",
                            module=name,
                            name=sub.name,
                            cls=cls.name,
                            node=sub,
                            lineno=sub.lineno,
                            decorators=_decorator_names(sub),
                        )
                        info.functions[fn.qualname] = fn
                        cls.methods[sub.name] = fn.qualname
            else:
                info.toplevel.append(stmt)
        for cls in info.classes.values():
            _collect_attr_types(cls, local_classes)
        self.modules[name] = info
        self.functions.update(info.functions)
        self.classes.update(info.classes)
        return info

    # ------------------------------------------------------------------
    # name resolution
    # ------------------------------------------------------------------
    def resolve(self, module: str, dotted: str) -> Symbol | None:
        """Resolve ``dotted`` as written inside ``module`` to a symbol.

        Handles local definitions, ``import``/``from-import`` bindings,
        re-exports through package ``__init__`` modules, and
        ``Class.method`` attribute chains.  Returns None for anything
        outside the analysed file set (stdlib, third-party, locals).
        """
        info = self.modules.get(module)
        if info is None:
            return None
        head, _, rest = dotted.partition(".")
        local_fn = f"{module}.{head}"
        if local_fn in info.functions and not rest:
            return ("function", local_fn)
        if local_fn in info.classes:
            return self._into_class(local_fn, rest)
        if head in info.imports.members:
            src_mod, orig = info.imports.members[head]
            target = f"{src_mod}.{orig}" + (f".{rest}" if rest else "")
            return self.resolve_qualified(target)
        if head in info.imports.modules:
            target = info.imports.modules[head] + (f".{rest}" if rest else "")
            return self.resolve_qualified(target)
        return None

    def resolve_qualified(
        self, dotted: str, _depth: int = 0
    ) -> Symbol | None:
        """Resolve an absolute dotted path against the file set."""
        if _depth > 8:
            return None
        # Longest known module prefix wins (``repro.confidence.mcc`` the
        # module vs ``repro.confidence.mcc`` the re-exported function).
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            prefix = ".".join(parts[:cut])
            info = self.modules.get(prefix)
            if info is None:
                continue
            rest = parts[cut:]
            if not rest:
                return ("module", prefix)
            symbol = f"{prefix}.{rest[0]}"
            if symbol in info.functions and len(rest) == 1:
                return ("function", symbol)
            if symbol in info.classes:
                return self._into_class(symbol, ".".join(rest[1:]))
            if rest[0] in info.imports.members:
                src_mod, orig = info.imports.members[rest[0]]
                chased = f"{src_mod}.{orig}"
                if rest[1:]:
                    chased += "." + ".".join(rest[1:])
                return self.resolve_qualified(chased, _depth + 1)
            if rest[0] in info.imports.modules:
                chased = info.imports.modules[rest[0]]
                if rest[1:]:
                    chased += "." + ".".join(rest[1:])
                return self.resolve_qualified(chased, _depth + 1)
            return None
        return None

    def _into_class(self, cls_qual: str, rest: str) -> Symbol | None:
        if not rest:
            return ("class", cls_qual)
        method = self.find_method(cls_qual, rest)
        if method is not None:
            return ("function", method)
        return None

    def find_method(self, cls_qual: str, name: str) -> str | None:
        """Locate ``name`` on ``cls_qual`` or its resolvable base classes."""
        seen: set[str] = set()
        stack = [cls_qual]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            cls = self.classes.get(current)
            if cls is None:
                continue
            if name in cls.methods:
                return cls.methods[name]
            for base in cls.bases:
                resolved = self.resolve(cls.module, base)
                if resolved and resolved[0] == "class":
                    stack.append(resolved[1])
        return None

    # ------------------------------------------------------------------
    # class hierarchy
    # ------------------------------------------------------------------
    def ancestors(self, cls_qual: str) -> frozenset[str]:
        """Qualified names of every resolvable ancestor of ``cls_qual``."""
        cached = self._ancestor_cache.get(cls_qual)
        if cached is not None:
            return cached
        self._ancestor_cache[cls_qual] = frozenset()  # cycle guard
        out: set[str] = set()
        cls = self.classes.get(cls_qual)
        if cls is not None:
            for base in cls.bases:
                resolved = self.resolve(cls.module, base)
                if resolved and resolved[0] == "class":
                    out.add(resolved[1])
                    out.update(self.ancestors(resolved[1]))
        result = frozenset(out)
        self._ancestor_cache[cls_qual] = result
        return result

    def is_subclass(self, cls_qual: str, base_qual: str) -> bool:
        return cls_qual == base_qual or base_qual in self.ancestors(cls_qual)


def build_symbol_table(modules: list[ModuleUnderLint]) -> SymbolTable:
    """Index every module of the file set (non-``repro`` files skipped)."""
    table = SymbolTable()
    for module in modules:
        table.add_module(module)
    return table
