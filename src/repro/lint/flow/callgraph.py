"""Import graph and call graph over the linted file set.

Call resolution is deliberately two-tier:

* **precise edges** — the callee is identified: direct calls to local or
  imported functions, ``ClassName(...)`` instantiations, ``self.method()``
  (including inherited methods), and attribute calls on values whose type
  is known from a parameter annotation or a local ``x = ClassName(...)``
  binding.  The exception-flow and taint analyses use only these, so
  their claims never rest on a guessed edge.
* **name-match candidates** — ``obj.method(...)`` on an unknown object
  records the attribute name.  Reachability treats any same-named
  function as potentially called, which keeps dead-code findings
  conservative (fewer false "unreachable" reports).

The graph also powers ``repro lint --graph {dot,json}``.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field

from repro.lint.flow.symbols import (
    FunctionInfo,
    ModuleSymbols,
    SymbolTable,
    _annotation_name,
    dotted_name,
)


@dataclass(slots=True)
class CallSite:
    """One call expression inside a function (or module-level code)."""

    node: ast.Call
    #: qualified name of the callee when precisely resolved, else None.
    target: str | None
    #: kind of the resolved target: "function" | "class" | None.
    kind: str | None
    #: attribute or bare name of an unresolved callee (for name-match).
    attr: str | None


@dataclass(slots=True)
class FunctionFlow:
    """Per-function facts shared by the flow analyses."""

    info: FunctionInfo
    calls: list[CallSite] = field(default_factory=list)
    #: dotted names referenced anywhere in the body (Load context heads).
    refs: set[str] = field(default_factory=set)
    #: attribute names read on unknown objects (reachability name-match).
    attr_refs: set[str] = field(default_factory=set)
    #: local variable → class qualname, from annotations/instantiations.
    local_types: dict[str, str] = field(default_factory=dict)


class _BodyVisitor(ast.NodeVisitor):
    """Collect calls and references from one function body.

    Nested function bodies are folded into the enclosing function (their
    effects happen, at the latest, when the closure is invoked — folding
    over-approximates, which is the safe direction for reachability and
    exception documentation).  Nested classes are rare and skipped.
    """

    def __init__(self, resolver: "_Resolver") -> None:
        self.resolver = resolver
        self.calls: list[CallSite] = []
        self.refs: set[str] = set()
        self.attr_refs: set[str] = set()

    def visit_Call(self, node: ast.Call) -> None:
        self.calls.append(self.resolver.resolve_call(node))
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self.refs.add(node.id)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        dotted = dotted_name(node)
        if dotted is not None:
            self.refs.add(dotted)
        self.attr_refs.add(node.attr)
        self.generic_visit(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.refs.add(node.name)  # do not descend


class _Resolver:
    """Resolve call targets inside one function, with local type hints."""

    def __init__(
        self,
        table: SymbolTable,
        module: ModuleSymbols,
        func: FunctionInfo | None,
    ) -> None:
        self.table = table
        self.module = module
        self.func = func
        self.local_types: dict[str, str] = {}
        if func is not None:
            if func.cls is not None:
                cls_qual = f"{func.module}.{func.cls}"
                self.local_types["self"] = cls_qual
                self.local_types["cls"] = cls_qual
            self._seed_param_types(func)

    def _seed_param_types(self, func: FunctionInfo) -> None:
        args = func.node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if arg.annotation is None:
                continue
            name = _annotation_name(arg.annotation)
            if name is None:
                continue
            resolved = self.table.resolve(self.module.name, name)
            if resolved and resolved[0] == "class":
                self.local_types[arg.arg] = resolved[1]

    def note_assignment(self, node: ast.Assign | ast.AnnAssign) -> None:
        """Track ``x = ClassName(...)`` / ``x: ClassName`` bindings."""
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        type_qual: str | None = None
        if isinstance(node, ast.AnnAssign) and node.annotation is not None:
            name = _annotation_name(node.annotation)
            if name:
                resolved = self.table.resolve(self.module.name, name)
                if resolved and resolved[0] == "class":
                    type_qual = resolved[1]
        if type_qual is None and node.value is not None and isinstance(node.value, ast.Call):
            ctor = dotted_name(node.value.func)
            if ctor:
                resolved = self._resolve_dotted(ctor)
                if resolved and resolved[0] == "class":
                    type_qual = resolved[1]
        if type_qual is None:
            return
        for target in targets:
            if isinstance(target, ast.Name):
                self.local_types[target.id] = type_qual

    def _resolve_dotted(self, dotted: str) -> tuple[str, str] | None:
        head, _, rest = dotted.partition(".")
        typed = self.local_types.get(head)
        if typed is not None and rest:
            return self._resolve_on_type(typed, rest)
        return self.table.resolve(self.module.name, dotted)

    def _resolve_on_type(self, cls_qual: str, rest: str) -> tuple[str, str] | None:
        """Resolve ``attr[.more]`` against a known class type."""
        first, _, more = rest.partition(".")
        cls = self.table.classes.get(cls_qual)
        if cls is None:
            return None
        if not more:
            method = self.table.find_method(cls_qual, first)
            if method is not None:
                return ("function", method)
            return None
        attr_type = cls.attr_types.get(first)
        if attr_type is None:
            return None
        resolved = self.table.resolve(cls.module, attr_type)
        if resolved and resolved[0] == "class":
            return self._resolve_on_type(resolved[1], more)
        return None

    def resolve_call(self, node: ast.Call) -> CallSite:
        dotted = dotted_name(node.func)
        if dotted is None:
            attr = node.func.attr if isinstance(node.func, ast.Attribute) else None
            return CallSite(node=node, target=None, kind=None, attr=attr)
        resolved = self._resolve_dotted(dotted)
        if resolved is None:
            return CallSite(
                node=node, target=None, kind=None,
                attr=dotted.rsplit(".", 1)[-1],
            )
        kind, qual = resolved
        if kind == "module":
            return CallSite(node=node, target=None, kind=None, attr=None)
        return CallSite(node=node, target=qual, kind=kind, attr=None)


def _analyze_body(
    table: SymbolTable,
    module: ModuleSymbols,
    func: FunctionInfo | None,
    body: list[ast.stmt],
) -> FunctionFlow:
    resolver = _Resolver(table, module, func)
    visitor = _BodyVisitor(resolver)
    for stmt in body:
        # Assignment-driven type hints must land before calls later in
        # the body resolve, so walk statement by statement.
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            resolver.note_assignment(stmt)
        visitor.visit(stmt)
    info = func if func is not None else _module_pseudo_function(module)
    return FunctionFlow(
        info=info,
        calls=visitor.calls,
        refs=visitor.refs,
        attr_refs=visitor.attr_refs,
        local_types=resolver.local_types,
    )


# A stable placeholder node for module-level pseudo-functions.
_EMPTY_DEF: ast.FunctionDef = ast.parse(
    "def __module__() -> None: ..."
).body[0]  # type: ignore[assignment]


def _module_pseudo_function(module: ModuleSymbols) -> FunctionInfo:
    return FunctionInfo(
        qualname=f"{module.name}.<module>",
        module=module.name,
        name="<module>",
        cls=None,
        node=_EMPTY_DEF,
        lineno=1,
    )


@dataclass(slots=True)
class CallGraph:
    """Whole-program call and import graphs."""

    #: caller qualname → precisely-resolved callee qualnames.
    edges: dict[str, set[str]] = field(default_factory=dict)
    #: module → imported in-program modules (runtime edges).
    module_edges: dict[str, set[str]] = field(default_factory=dict)
    #: per-caller flow facts (calls, refs, local types).
    flows: dict[str, FunctionFlow] = field(default_factory=dict)

    def callees(self, qualname: str) -> set[str]:
        return self.edges.get(qualname, set())

    def reverse_module_edges(self) -> dict[str, set[str]]:
        """module → modules that (transitively directly) import it."""
        reverse: dict[str, set[str]] = {}
        for src in sorted(self.module_edges):
            for dst in sorted(self.module_edges[src]):
                reverse.setdefault(dst, set()).add(src)
        return reverse

    def module_closure(self, module: str) -> set[str]:
        """``module`` plus every module it transitively imports."""
        seen: set[str] = set()
        stack = [module]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(sorted(self.module_edges.get(current, ())))
        return seen

    def dependents_closure(self, modules: set[str]) -> set[str]:
        """``modules`` plus every module that transitively imports them."""
        reverse = self.reverse_module_edges()
        seen: set[str] = set()
        stack = sorted(modules)
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(sorted(reverse.get(current, ())))
        return seen

    # ------------------------------------------------------------------
    # exports (repro lint --graph)
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        payload = {
            "modules": {
                module: sorted(targets)
                for module, targets in sorted(self.module_edges.items())
            },
            "calls": [
                {"caller": caller, "callee": callee}
                for caller in sorted(self.edges)
                for callee in sorted(self.edges[caller])
            ],
        }
        return json.dumps(payload, indent=2)

    def to_dot(self) -> str:
        lines = ["digraph repro_calls {", "  rankdir=LR;"]
        for caller in sorted(self.edges):
            for callee in sorted(self.edges[caller]):
                lines.append(f'  "{caller}" -> "{callee}";')
        lines.append("}")
        return "\n".join(lines)


def build_call_graph(table: SymbolTable) -> CallGraph:
    """Analyse every function body and module-level statement list."""
    graph = CallGraph()
    for mod_name in sorted(table.modules):
        module = table.modules[mod_name]
        bodies: list[tuple[FunctionInfo | None, list[ast.stmt]]] = [
            (None, module.toplevel)
        ]
        for qual in sorted(module.functions):
            func = module.functions[qual]
            bodies.append((func, list(func.node.body)))
        for func, body in bodies:
            flow = _analyze_body(table, module, func, body)
            graph.flows[flow.info.qualname] = flow
            targets: set[str] = set()
            for site in flow.calls:
                if site.target is None:
                    continue
                if site.kind == "class":
                    for method in ("__init__", "__post_init__"):
                        init = table.find_method(site.target, method)
                        if init is not None:
                            targets.add(init)
                    targets.add(site.target)
                else:
                    targets.add(site.target)
            graph.edges[flow.info.qualname] = targets
        graph.module_edges[mod_name] = {
            target for target in module.imported_modules
            if target in table.modules and target != mod_name
        }
    return graph
