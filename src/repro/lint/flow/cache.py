"""Incremental lint cache — content-hashed findings and parsed ASTs.

Layout under the cache directory (default ``.repro-lint-cache/``)::

    index.json        one JSON document:
                        fingerprint   rule-set + format version hash
                        files         display path → {sha, module,
                                      imports, findings, suppressed}
                        flow          module name → {key, findings,
                                      suppressed}
    asts/<sha>.pkl    pickled ``ast.Module`` for each content hash

Invalidation semantics:

* **per-file findings** are keyed by the file's content hash alone — a
  per-file rule sees nothing but the file.
* **flow findings** anchor to a module but depend on everything that
  module can reach, so each module's entry is keyed by the hash of the
  content hashes of its *transitive import closure* (for program-keyed
  rules — reachability, concurrency — of the whole program, because
  their roots live anywhere).
  The closure is computed from cached import metadata, so a fully-warm
  run decides "nothing to do" without parsing a single file.
* the whole cache is discarded when the rule set or cache format
  changes (``fingerprint``).

Corrupt or unreadable cache state never fails a lint run — entries
degrade to misses and are rebuilt.
"""

from __future__ import annotations

import ast
import hashlib
import json
import pickle
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.findings import Finding

#: bump to invalidate every existing cache (format or semantics change).
CACHE_FORMAT_VERSION = 2

#: marker for the program-wide closure key (program-keyed rules).
PROGRAM_KEY = "<program>"


def content_sha(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def rules_fingerprint(rule_ids: list[str]) -> str:
    payload = f"v{CACHE_FORMAT_VERSION}:" + ",".join(sorted(rule_ids))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(slots=True)
class FileEntry:
    """Cached per-file lint outcome plus flow-relevant metadata."""

    sha: str
    #: dotted module name ("" for files outside a repro package tree).
    module: str
    #: absolute dotted targets of the module's import statements.
    imports: list[str] = field(default_factory=list)
    findings: list[dict[str, object]] = field(default_factory=list)
    suppressed: int = 0

    def to_dict(self) -> dict[str, object]:
        return {
            "sha": self.sha,
            "module": self.module,
            "imports": self.imports,
            "findings": self.findings,
            "suppressed": self.suppressed,
        }


@dataclass(slots=True)
class FlowEntry:
    """Cached flow findings for one module, keyed by closure hash."""

    key: str
    findings: list[dict[str, object]] = field(default_factory=list)
    suppressed: int = 0

    def to_dict(self) -> dict[str, object]:
        return {
            "key": self.key,
            "findings": self.findings,
            "suppressed": self.suppressed,
        }


class LintCache:
    """Load/store interface over one cache directory.

    The cache is advisory: every read degrades to a miss on any
    inconsistency, and writes overwrite wholesale.
    """

    def __init__(self, cache_dir: Path, fingerprint: str) -> None:
        self.cache_dir = Path(cache_dir)
        self.fingerprint = fingerprint
        self.files: dict[str, FileEntry] = {}
        self.flow: dict[str, FlowEntry] = {}
        self._load()

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------
    def _load(self) -> None:
        index = self.cache_dir / "index.json"
        try:
            data = json.loads(index.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(data, dict):
            return
        if data.get("fingerprint") != self.fingerprint:
            return
        files = data.get("files")
        if isinstance(files, dict):
            for display in sorted(files):
                raw = files[display]
                if not isinstance(raw, dict):
                    continue
                try:
                    self.files[display] = FileEntry(
                        sha=str(raw["sha"]),
                        module=str(raw.get("module", "")),
                        imports=[str(i) for i in raw.get("imports", [])],
                        findings=list(raw.get("findings", [])),
                        suppressed=int(raw.get("suppressed", 0)),
                    )
                except (KeyError, TypeError, ValueError):
                    continue
        flow = data.get("flow")
        if isinstance(flow, dict):
            for module in sorted(flow):
                raw = flow[module]
                if not isinstance(raw, dict):
                    continue
                try:
                    self.flow[module] = FlowEntry(
                        key=str(raw["key"]),
                        findings=list(raw.get("findings", [])),
                        suppressed=int(raw.get("suppressed", 0)),
                    )
                except (KeyError, TypeError, ValueError):
                    continue

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def file_hit(self, display: str, sha: str) -> FileEntry | None:
        entry = self.files.get(display)
        if entry is not None and entry.sha == sha:
            return entry
        return None

    def changed_files(self, shas: dict[str, str]) -> set[str]:
        """Display paths whose content differs from the cached run
        (including files the cache has never seen)."""
        return {
            display for display, sha in shas.items()
            if self.files.get(display) is None or self.files[display].sha != sha
        }

    def flow_hit(self, module: str, key: str) -> FlowEntry | None:
        entry = self.flow.get(module)
        if entry is not None and entry.key == key:
            return entry
        return None

    # ------------------------------------------------------------------
    # closure keys (computed from metadata, no parsing required)
    # ------------------------------------------------------------------
    @staticmethod
    def closure_keys(
        module_shas: dict[str, str],
        module_imports: dict[str, list[str]],
    ) -> dict[str, str]:
        """Per-module flow keys plus the :data:`PROGRAM_KEY` entry.

        ``module_shas`` maps dotted module name → content hash;
        ``module_imports`` maps dotted module name → imported dotted
        targets (raw, possibly outside the program — filtered here).
        """
        known = set(module_shas)
        edges: dict[str, list[str]] = {}
        for module in sorted(known):
            targets = set()
            for target in module_imports.get(module, []):
                # an import of repro.kg.graph pulls in repro and repro.kg
                parts = target.split(".")
                for cut in range(1, len(parts) + 1):
                    prefix = ".".join(parts[:cut])
                    if prefix in known and prefix != module:
                        targets.add(prefix)
            edges[module] = sorted(targets)

        keys: dict[str, str] = {}
        closure_cache: dict[str, frozenset[str]] = {}

        def closure(module: str) -> frozenset[str]:
            cached = closure_cache.get(module)
            if cached is not None:
                return cached
            seen: set[str] = set()
            stack = [module]
            while stack:
                current = stack.pop()
                if current in seen:
                    continue
                seen.add(current)
                stack.extend(edges.get(current, ()))
            result = frozenset(seen)
            closure_cache[module] = result
            return result

        for module in sorted(known):
            payload = ";".join(
                f"{m}={module_shas[m]}" for m in sorted(closure(module))
            )
            keys[module] = hashlib.sha256(payload.encode("utf-8")).hexdigest()
        program_payload = ";".join(
            f"{m}={module_shas[m]}" for m in sorted(known)
        )
        keys[PROGRAM_KEY] = hashlib.sha256(
            program_payload.encode("utf-8")
        ).hexdigest()
        return keys

    # ------------------------------------------------------------------
    # ASTs
    # ------------------------------------------------------------------
    def ast_path(self, sha: str) -> Path:
        return self.cache_dir / "asts" / f"{sha}.pkl"

    def load_ast(self, sha: str) -> ast.Module | None:
        try:
            with self.ast_path(sha).open("rb") as fh:
                tree = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            return None
        return tree if isinstance(tree, ast.Module) else None

    def save_ast(self, sha: str, tree: ast.Module) -> None:
        path = self.ast_path(sha)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with path.open("wb") as fh:
                pickle.dump(tree, fh, protocol=pickle.HIGHEST_PROTOCOL)
        except (OSError, pickle.PicklingError, RecursionError):
            return

    # ------------------------------------------------------------------
    # persisting
    # ------------------------------------------------------------------
    def replace(
        self,
        files: dict[str, FileEntry],
        flow: dict[str, FlowEntry],
    ) -> None:
        """Overwrite the cache with this run's outcome and write it out."""
        self.files = dict(files)
        self.flow = dict(flow)
        payload = {
            "fingerprint": self.fingerprint,
            "files": {
                display: self.files[display].to_dict()
                for display in sorted(self.files)
            },
            "flow": {
                module: self.flow[module].to_dict()
                for module in sorted(self.flow)
            },
        }
        try:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            index = self.cache_dir / "index.json"
            index.write_text(
                json.dumps(payload, indent=1), encoding="utf-8"
            )
        except OSError:
            return
        self._prune_asts()

    def _prune_asts(self) -> None:
        """Drop pickled ASTs no current file entry references."""
        live = {entry.sha for entry in self.files.values()}
        asts_dir = self.cache_dir / "asts"
        try:
            stale = [
                path for path in sorted(asts_dir.glob("*.pkl"))
                if path.stem not in live
            ]
        except OSError:
            return
        for path in stale:
            try:
                path.unlink()
            except OSError:
                continue


def deserialize_findings(raw: list[dict[str, object]]) -> list[Finding]:
    """Cached finding dicts → Finding objects; malformed entries dropped."""
    out: list[Finding] = []
    for item in raw:
        try:
            out.append(Finding.from_dict(item))
        except ValueError:
            continue
    return out
