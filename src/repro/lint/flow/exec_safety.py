"""Exec-safety rule (EXE) — no shared-state writes on the query path.

The exec engine (``repro.exec``) fans ``MultiRAG.run`` out over worker
threads that share one ingested pipeline.  That is only sound if the
dispatched path never *writes* state reachable by another worker: the
determinism contract (parallel ≡ sequential, byte for byte) and plain
memory safety both hang on it.

* EXE001 — a function reachable from ``MultiRAG.run`` over precise call
  edges stores through ``self``, a parameter, or a local it did not
  construct itself.

Reachability follows resolved function/method edges (plus subclass
overrides of reached methods); constructor edges are deliberately *not*
followed — ``__init__`` writing to a brand-new ``self`` is the one store
that cannot be shared.  A store target is fine when its base object was
freshly built in the same function (a constructor call, a literal, or a
fresh-container builtin): task-local result records are how the path is
*supposed* to communicate.

The sanctioned seams carry inline ``repro-lint: ignore[EXE001]``
suppressions with their justification: consensus-feedback history writes
(only reachable with ``update_history=True``, which forces the engine to
serialize) and usage-meter accounting (each worker task accounts into a
fresh clone's meter, merged afterwards in submit order).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.findings import Finding, Severity
from repro.lint.flow.program import Program
from repro.lint.registry import FlowRule, register_rule

#: the exec engine's dispatch root: everything a worker task executes.
ROOT_CLASS = "repro.core.pipeline.MultiRAG"
ROOT_METHOD = "run"

#: builtins whose call result is a freshly allocated object.
_FRESH_BUILTINS = frozenset({
    "dict", "frozenset", "list", "set", "sorted", "tuple",
    "defaultdict", "Counter", "OrderedDict", "deque",
})


def _is_fresh_value(node: ast.expr) -> bool:
    """Whether an assigned value is a newly allocated, task-local object."""
    if isinstance(node, (
        ast.List, ast.Dict, ast.Set, ast.Tuple, ast.Constant,
        ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp,
        ast.JoinedStr,
    )):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name is None:
            return False
        # Title-case call = constructor by convention; the named
        # builtins allocate fresh containers.
        return name[:1].isupper() or name in _FRESH_BUILTINS
    return False


def _store_base_name(target: ast.expr) -> str | None:
    """Root ``Name`` of an attribute/subscript store chain, else None."""
    node = target
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _param_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    args = node.args
    names = {a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)}
    if args.vararg is not None:
        names.add(args.vararg.arg)
    if args.kwarg is not None:
        names.add(args.kwarg.arg)
    return names


def compute_run_reachable(program: Program) -> set[str]:
    """Function qualnames reachable from ``MultiRAG.run`` over precise
    call edges, including subclass overrides of reached methods.

    Memoised on ``program``; empty when the file set does not contain
    the root (linting a loose subset), in which case EXE001 stands down.
    """
    cached = program.analysis_cache.get("exec_reachable")
    if cached is not None:
        return cached  # type: ignore[return-value]
    table = program.symtab
    root = table.find_method(ROOT_CLASS, ROOT_METHOD)
    reachable: set[str] = set()
    pending = [root] if root is not None else []
    while pending:
        qual = pending.pop()
        if qual is None or qual in reachable:
            continue
        reachable.add(qual)
        func = table.functions.get(qual)
        if func is not None and func.cls is not None:
            # A statically bound call may dispatch to any override.
            base_qual = f"{func.module}.{func.cls}"
            for cls_qual in sorted(table.classes):
                if cls_qual == base_qual:
                    continue
                if not table.is_subclass(cls_qual, base_qual):
                    continue
                override = table.classes[cls_qual].methods.get(func.name)
                if override is not None and override not in reachable:
                    pending.append(override)
        flow = program.callgraph.flows.get(qual)
        if flow is None:
            continue
        for site in flow.calls:
            if (
                site.kind == "function"
                and site.target is not None
                and site.target not in reachable
            ):
                pending.append(site.target)
    program.analysis_cache["exec_reachable"] = reachable
    return reachable


@register_rule
class ExecSharedStateRule(FlowRule):
    """EXE001 — shared-state store on the exec-dispatched query path."""

    rule_id = "EXE001"
    family = "exec-safety"
    severity = Severity.ERROR
    description = (
        "this code runs inside exec worker threads (reachable from "
        "MultiRAG.run) but stores through self, a parameter, or a "
        "non-local object; write only to objects the function "
        "constructed itself, or keep the path serialized"
    )

    def check_program(self, program: Program) -> Iterable[Finding]:
        reachable = compute_run_reachable(program)
        table = program.symtab
        seen: set[tuple[str, int]] = set()
        for qual in sorted(reachable):
            func = table.functions.get(qual)
            if func is None or func.name == "<module>":
                continue
            module = program.modules.get(func.module)
            if module is None:
                continue
            shared = self._shared_names(func.node)
            for store, base in self._stores(func.node):
                if base not in shared:
                    continue
                key = (module.module.display_path, store.lineno)
                if key in seen:
                    continue
                seen.add(key)
                yield self.program_finding(
                    module.module.display_path, store.lineno,
                    f"{func.name}() runs on the exec worker path "
                    f"(reachable from MultiRAG.run) but mutates "
                    f"{ast.unparse(store)!r}, which may be shared "
                    f"across workers",
                    col=store.col_offset + 1,
                )

    def _shared_names(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> set[str]:
        """Names whose object may outlive / escape this task: ``self``,
        parameters, and locals not freshly constructed here."""
        constructed: set[str] = set()
        assigned: set[str] = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                target = sub.targets[0]
                if isinstance(target, ast.Name):
                    assigned.add(target.id)
                    if _is_fresh_value(sub.value):
                        constructed.add(target.id)
                    else:
                        constructed.discard(target.id)
            elif isinstance(sub, ast.AnnAssign):
                if isinstance(sub.target, ast.Name) and sub.value is not None:
                    assigned.add(sub.target.id)
                    if _is_fresh_value(sub.value):
                        constructed.add(sub.target.id)
                    else:
                        constructed.discard(sub.target.id)
        return (_param_names(node) | assigned) - constructed

    def _stores(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterable[tuple[ast.expr, str]]:
        """(store-target, base-name) for every attribute/subscript store."""
        for sub in ast.walk(node):
            targets: list[ast.expr] = []
            if isinstance(sub, ast.Assign):
                targets = list(sub.targets)
            elif isinstance(sub, (ast.AnnAssign, ast.AugAssign)):
                targets = [sub.target]
            elif isinstance(sub, ast.Delete):
                targets = list(sub.targets)
            for target in self._flatten(targets):
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    base = _store_base_name(target)
                    if base is not None:
                        yield target, base

    def _flatten(self, targets: list[ast.expr]) -> Iterable[ast.expr]:
        for target in targets:
            if isinstance(target, (ast.Tuple, ast.List)):
                yield from self._flatten(list(target.elts))
            elif isinstance(target, ast.Starred):
                yield target.value
            else:
                yield target
