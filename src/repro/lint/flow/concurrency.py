"""Shared-state escape analysis over the worker_view split/absorb protocol.

The exec engine (``repro.exec``) fans ``MultiRAG.run`` out over worker
threads that share one ingested pipeline.  Each worker task runs against
a :meth:`worker_view` — a shallow clone that shares the immutable
substrate by reference and rebinds everything mutable (observability,
LLM meter, scorer).  The determinism contract (parallel ≡ sequential,
byte for byte) holds exactly when worker-executed code never *writes*
an object reachable from another worker.

This module computes the facts the concurrency rules (CONC/ASY, see
:mod:`repro.lint.rules.concurrency`) consume:

* :func:`compute_run_reachable` — every function qualname reachable from
  ``MultiRAG.run`` over precise call edges (the worker-executed set);
* :func:`view_protocols` / :func:`covered_attrs` — the split/absorb
  protocol recovered statically from ``worker_view()``: which pipeline
  attributes a view *shares* with the parent by reference and which it
  rebinds (*splits*);
* :func:`compute_module_state_writes` — writes to module-level mutable
  state (registries, caches, module globals) from worker-reachable code;
* :func:`compute_async_blocking` — blocking calls (``time.sleep``, file
  I/O, ``subprocess``) lexically inside or transitively reachable from
  ``async def`` functions, pre-gating the future ``repro.serve``;
* :func:`shared_state_report` — the ``repro lint --graph shared`` JSON
  payload.

Everything is memoised on ``program.analysis_cache`` — the rules run as
independent instances but share one fixpoint per lint invocation.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.lint.flow.program import Program
from repro.lint.flow.symbols import FunctionInfo
from repro.lint.rules.common import dotted_name

#: the exec engine's dispatch root: everything a worker task executes.
ROOT_CLASS = "repro.core.pipeline.MultiRAG"
ROOT_METHOD = "run"
#: the split/absorb protocol carrier.
VIEW_METHOD = "worker_view"

#: builtins whose call result is a freshly allocated object.
_FRESH_BUILTINS = frozenset({
    "dict", "frozenset", "list", "set", "sorted", "tuple",
    "defaultdict", "Counter", "OrderedDict", "deque",
})

#: builtins/collections constructors that allocate *mutable* containers —
#: a module-level binding to one of these is shared mutable state.
_MUTABLE_BUILTINS = frozenset({
    "dict", "list", "set", "bytearray",
    "defaultdict", "Counter", "OrderedDict", "deque",
})

#: method names that mutate their receiver in place.
_MUTATOR_METHODS = frozenset({
    "add", "append", "appendleft", "clear", "discard", "extend",
    "extendleft", "insert", "pop", "popitem", "remove", "setdefault",
    "update",
})

#: dotted call targets that block the event loop (exact matches).
_BLOCKING_CALLS = frozenset({
    "time.sleep",
    "os.system",
    "socket.create_connection",
    "urllib.request.urlopen",
})

#: dotted prefixes whose every member is blocking (process spawn, sockets).
_BLOCKING_PREFIXES = ("subprocess.",)

#: method names that perform file I/O regardless of the receiver's type.
_BLOCKING_METHODS = frozenset({
    "read_text", "write_text", "read_bytes", "write_bytes",
})


def _is_fresh_value(node: ast.expr) -> bool:
    """Whether an assigned value is a newly allocated, task-local object."""
    if isinstance(node, (
        ast.List, ast.Dict, ast.Set, ast.Tuple, ast.Constant,
        ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp,
        ast.JoinedStr,
    )):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name is None:
            return False
        # Title-case call = constructor by convention; the named
        # builtins allocate fresh containers.
        return name[:1].isupper() or name in _FRESH_BUILTINS
    return False


def _store_base_name(target: ast.expr) -> str | None:
    """Root ``Name`` of an attribute/subscript store chain, else None."""
    node = target
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _param_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    args = node.args
    names = {a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)}
    if args.vararg is not None:
        names.add(args.vararg.arg)
    if args.kwarg is not None:
        names.add(args.kwarg.arg)
    return names


def _own_statements(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested ``def``s."""
    pending: list[ast.AST] = list(node.body)
    while pending:
        current = pending.pop()
        yield current
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.ClassDef)):
            continue
        pending.extend(ast.iter_child_nodes(current))


def iter_store_targets(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.expr]:
    """Every store target of the function body (tuple targets flattened)."""

    def flatten(targets: list[ast.expr]) -> Iterator[ast.expr]:
        for target in targets:
            if isinstance(target, (ast.Tuple, ast.List)):
                yield from flatten(list(target.elts))
            elif isinstance(target, ast.Starred):
                yield target.value
            else:
                yield target

    for sub in ast.walk(node):
        targets: list[ast.expr] = []
        if isinstance(sub, ast.Assign):
            targets = list(sub.targets)
        elif isinstance(sub, (ast.AnnAssign, ast.AugAssign)):
            targets = [sub.target]
        elif isinstance(sub, ast.Delete):
            targets = list(sub.targets)
        yield from flatten(targets)


# ----------------------------------------------------------------------
# worker-executed reachability
# ----------------------------------------------------------------------
def compute_run_reachable(program: Program) -> set[str]:
    """Function qualnames reachable from ``MultiRAG.run`` over precise
    call edges, including subclass overrides of reached methods.

    Memoised on ``program``; empty when the file set does not contain
    the root (linting a loose subset), in which case the concurrency
    rules stand down.
    """
    cached = program.analysis_cache.get("conc_run_reachable")
    if cached is not None:
        return cached  # type: ignore[return-value]
    table = program.symtab
    root = table.find_method(ROOT_CLASS, ROOT_METHOD)
    reachable: set[str] = set()
    pending = [root] if root is not None else []
    while pending:
        qual = pending.pop()
        if qual is None or qual in reachable:
            continue
        reachable.add(qual)
        func = table.functions.get(qual)
        if func is not None and func.cls is not None:
            # A statically bound call may dispatch to any override.
            base_qual = f"{func.module}.{func.cls}"
            for cls_qual in sorted(table.classes):
                if cls_qual == base_qual:
                    continue
                if not table.is_subclass(cls_qual, base_qual):
                    continue
                override = table.classes[cls_qual].methods.get(func.name)
                if override is not None and override not in reachable:
                    pending.append(override)
        flow = program.callgraph.flows.get(qual)
        if flow is None:
            continue
        for site in flow.calls:
            if (
                site.kind == "function"
                and site.target is not None
                and site.target not in reachable
            ):
                pending.append(site.target)
    program.analysis_cache["conc_run_reachable"] = reachable
    return reachable


# ----------------------------------------------------------------------
# the worker_view split/absorb protocol, recovered statically
# ----------------------------------------------------------------------
@dataclass(slots=True)
class ViewProtocol:
    """The attribute classification one ``worker_view()`` body encodes.

    ``shared`` attributes are bound straight off ``self`` — the view and
    the parent alias one object; a worker-side write races.  ``split``
    attributes are rebound to a call result (``self.obs.split()``,
    a fresh ``NodeScorer(...)``) — each view owns its copy.
    """

    cls_qual: str
    #: attr name → lineno of its ``view.attr = self...`` assignment.
    shared: dict[str, int] = field(default_factory=dict)
    #: attr name → lineno of its ``view.attr = <call>`` assignment.
    split: dict[str, int] = field(default_factory=dict)

    @property
    def covered(self) -> frozenset[str]:
        return frozenset(self.shared) | frozenset(self.split)


def _view_local_name(node: ast.FunctionDef | ast.AsyncFunctionDef) -> str | None:
    """The local the view body builds and returns (``view`` by idiom)."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Return) and isinstance(sub.value, ast.Name):
            return sub.value.id
    return None


def _is_self_alias(node: ast.expr) -> bool:
    """Whether an expression reads through ``self`` without calling."""
    current = node
    while isinstance(current, (ast.Attribute, ast.Subscript)):
        current = current.value
    return isinstance(current, ast.Name) and current.id == "self"


def view_protocols(program: Program) -> dict[str, ViewProtocol]:
    """``worker_view`` protocols per class qualname (root + subclasses).

    Memoised on ``program``; empty when the root class is absent.
    """
    cached = program.analysis_cache.get("conc_view_protocols")
    if cached is not None:
        return cached  # type: ignore[return-value]
    table = program.symtab
    out: dict[str, ViewProtocol] = {}
    for cls_qual in sorted(table.classes):
        if cls_qual != ROOT_CLASS and not table.is_subclass(
            cls_qual, ROOT_CLASS
        ):
            continue
        method_qual = table.classes[cls_qual].methods.get(VIEW_METHOD)
        if method_qual is None:
            continue
        func = table.functions.get(method_qual)
        if func is None:
            continue
        view_name = _view_local_name(func.node)
        if view_name is None:
            continue
        protocol = ViewProtocol(cls_qual=cls_qual)
        for sub in ast.walk(func.node):
            if not isinstance(sub, ast.Assign) or len(sub.targets) != 1:
                continue
            target = sub.targets[0]
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == view_name
            ):
                continue
            if _is_self_alias(sub.value):
                protocol.shared[target.attr] = sub.lineno
            else:
                protocol.split[target.attr] = sub.lineno
        out[cls_qual] = protocol
    program.analysis_cache["conc_view_protocols"] = out
    return out


def covered_attrs(program: Program, cls_qual: str) -> frozenset[str] | None:
    """Attributes ``cls_qual`` covers via its worker_view ancestry.

    A subclass inherits the root's protocol and may extend it with its
    own override.  ``None`` when no class in the ancestry defines a
    ``worker_view`` (nothing to check against).
    """
    protocols = view_protocols(program)
    table = program.symtab
    lineage = [cls_qual, *sorted(table.ancestors(cls_qual))]
    covered: set[str] = set()
    found = False
    for qual in lineage:
        protocol = protocols.get(qual)
        if protocol is not None:
            found = True
            covered.update(protocol.covered)
    return frozenset(covered) if found else None


def shared_attrs(program: Program, cls_qual: str) -> frozenset[str]:
    """Attributes ``cls_qual`` shares by reference across worker views."""
    protocols = view_protocols(program)
    table = program.symtab
    lineage = [cls_qual, *sorted(table.ancestors(cls_qual))]
    shared: set[str] = set()
    for qual in lineage:
        protocol = protocols.get(qual)
        if protocol is not None:
            shared.update(protocol.shared)
    return frozenset(shared)


# ----------------------------------------------------------------------
# module-level mutable state reachable from the worker path
# ----------------------------------------------------------------------
@dataclass(slots=True)
class ModuleStateWrite:
    """One write to module-level mutable state from worker-reachable code."""

    path: str
    lineno: int
    col: int
    #: dotted module holding the mutated binding.
    module: str
    #: the mutated binding ("_CACHE_CLEARERS") or dotted chain.
    name: str
    #: "store" | "global" | "mutator"
    via: str
    #: qualname of the reachable function performing the write.
    func_qual: str


def _module_mutable_bindings(program: Program, module_name: str) -> set[str]:
    """Module-level names bound to mutable containers in ``module_name``."""
    symbols = program.modules.get(module_name)
    if symbols is None:
        return set()
    out: set[str] = set()
    for stmt in symbols.toplevel:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
            value = stmt.value
        if value is None:
            continue
        mutable = isinstance(value, (ast.List, ast.Dict, ast.Set,
                                     ast.ListComp, ast.DictComp, ast.SetComp))
        if isinstance(value, ast.Call):
            func = value.func
            callee = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None
            )
            mutable = callee in _MUTABLE_BUILTINS
        if not mutable:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                out.add(target.id)
    return out


def _local_bindings(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names the function binds itself (params, assignments, loops)."""
    names = _param_names(node)
    for sub in ast.walk(node):
        if isinstance(sub, (ast.For, ast.AsyncFor)):
            names.update(
                t.id for t in ast.walk(sub.target)
                if isinstance(t, ast.Name)
            )
        elif isinstance(sub, (ast.withitem,)) and sub.optional_vars is not None:
            names.update(
                t.id for t in ast.walk(sub.optional_vars)
                if isinstance(t, ast.Name)
            )
        elif isinstance(sub, ast.NamedExpr) and isinstance(
            sub.target, ast.Name
        ):
            names.add(sub.target.id)
        elif isinstance(sub, ast.comprehension):
            names.update(
                t.id for t in ast.walk(sub.target)
                if isinstance(t, ast.Name)
            )
    for target in iter_store_targets(node):
        if isinstance(target, ast.Name):
            names.add(target.id)
    return names


def compute_module_state_writes(program: Program) -> list[ModuleStateWrite]:
    """Writes to module-level mutable state from run-reachable functions.

    Three shapes are caught: stores through a module-level mutable
    binding (``_REGISTRY[k] = v``), ``global``-declared rebinding, and
    in-place mutator calls (``_CACHE_CLEARERS.append(...)``) — including
    through an imported-module alias (``perf._CACHE_CLEARERS``).
    """
    cached = program.analysis_cache.get("conc_module_state_writes")
    if cached is not None:
        return cached  # type: ignore[return-value]
    table = program.symtab
    out: list[ModuleStateWrite] = []
    bindings_memo: dict[str, set[str]] = {}
    for qual in sorted(compute_run_reachable(program)):
        func = table.functions.get(qual)
        if func is None or func.name == "<module>":
            continue
        symbols = program.modules.get(func.module)
        if symbols is None:
            continue
        if func.module not in bindings_memo:
            bindings_memo[func.module] = _module_mutable_bindings(
                program, func.module
            )
        module_mutable = bindings_memo[func.module]
        module_aliases = symbols.imports.modules
        locals_here = _local_bindings(func.node)
        globals_here = {
            name
            for sub in ast.walk(func.node)
            if isinstance(sub, ast.Global)
            for name in sub.names
        }

        def classify(base: str) -> tuple[str, str] | None:
            """(owning module, display name) when ``base`` is module state."""
            if base in globals_here:
                return func.module, base
            if base in locals_here:
                return None
            if base in module_mutable:
                return func.module, base
            if base in module_aliases:
                return module_aliases[base], base
            return None

        seen: set[tuple[int, int, str]] = set()

        def record(node: ast.expr, via: str, owner: str, name: str) -> None:
            key = (node.lineno, node.col_offset, via)
            if key in seen:
                return
            seen.add(key)
            out.append(ModuleStateWrite(
                path=symbols.module.display_path,
                lineno=node.lineno,
                col=node.col_offset + 1,
                module=owner,
                name=name,
                via=via,
                func_qual=qual,
            ))

        for target in iter_store_targets(func.node):
            if isinstance(target, ast.Name):
                if target.id in globals_here:
                    record(target, "global", func.module, target.id)
                continue
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                base = _store_base_name(target)
                if base is None:
                    continue
                hit = classify(base)
                if hit is not None:
                    owner, _ = hit
                    display = dotted_name(target) or base
                    record(target, "store", owner, display)
        for sub in ast.walk(func.node):
            if not isinstance(sub, ast.Call):
                continue
            if not (
                isinstance(sub.func, ast.Attribute)
                and sub.func.attr in _MUTATOR_METHODS
            ):
                continue
            base = _store_base_name(sub.func.value)
            if base is None or base == "self":
                continue
            hit = classify(base)
            if hit is not None:
                owner, _ = hit
                display = dotted_name(sub.func) or base
                record(sub.func, "mutator", owner, display)
    program.analysis_cache["conc_module_state_writes"] = out
    return out


# ----------------------------------------------------------------------
# async blocking-call analysis
# ----------------------------------------------------------------------
@dataclass(slots=True)
class BlockingCall:
    """One blocking call attributed to an ``async def``."""

    path: str
    lineno: int
    col: int
    #: qualname of the async function on whose behalf the call blocks.
    async_qual: str
    #: what blocks ("time.sleep(...)", "open(...)").
    call: str
    #: sync callee carrying the call ("" when lexically in the async def).
    via: str


def _blocking_call_name(node: ast.Call, symbols_imports: dict[str, str]) -> str | None:
    """The blocking target a call resolves to, or None."""
    func = node.func
    if isinstance(func, ast.Name):
        if func.id == "open":
            return "open"
        return None
    dotted = dotted_name(func)
    if dotted is None:
        if isinstance(func, ast.Attribute) and func.attr in _BLOCKING_METHODS:
            return f".{func.attr}"
        return None
    head, _, rest = dotted.partition(".")
    resolved = dotted
    if head in symbols_imports and rest:
        resolved = f"{symbols_imports[head]}.{rest}"
    if resolved in _BLOCKING_CALLS:
        return resolved
    if any(resolved.startswith(prefix) for prefix in _BLOCKING_PREFIXES):
        return resolved
    if isinstance(func, ast.Attribute) and func.attr in _BLOCKING_METHODS:
        return f".{func.attr}"
    return None


def _direct_blocking_calls(
    program: Program, func: FunctionInfo
) -> list[tuple[ast.Call, str]]:
    symbols = program.modules.get(func.module)
    if symbols is None:
        return []
    aliases = symbols.imports.modules
    out: list[tuple[ast.Call, str]] = []
    for sub in _own_statements(func.node):
        if isinstance(sub, ast.Call):
            name = _blocking_call_name(sub, aliases)
            if name is not None:
                out.append((sub, name))
    return out


def compute_async_blocking(
    program: Program,
) -> tuple[list[BlockingCall], list[BlockingCall]]:
    """(direct, transitive) blocking calls on behalf of ``async def``s.

    Direct hits anchor at the blocking call itself (ASY001); transitive
    hits anchor at the async function whose awaitable path reaches a
    blocking sync callee (ASY002).
    """
    cached = program.analysis_cache.get("conc_async_blocking")
    if cached is not None:
        return cached  # type: ignore[return-value]
    table = program.symtab
    direct: list[BlockingCall] = []
    transitive: list[BlockingCall] = []
    blocking_memo: dict[str, list[tuple[ast.Call, str]]] = {}

    def blocking_in(qual: str) -> list[tuple[ast.Call, str]]:
        if qual not in blocking_memo:
            func = table.functions.get(qual)
            blocking_memo[qual] = (
                _direct_blocking_calls(program, func)
                if func is not None else []
            )
        return blocking_memo[qual]

    for qual in sorted(table.functions):
        func = table.functions[qual]
        if not isinstance(func.node, ast.AsyncFunctionDef):
            continue
        symbols = program.modules.get(func.module)
        if symbols is None:
            continue
        display = symbols.module.display_path
        for call, name in blocking_in(qual):
            direct.append(BlockingCall(
                path=display,
                lineno=call.lineno,
                col=call.col_offset + 1,
                async_qual=qual,
                call=name,
                via="",
            ))
        # BFS over precise edges through *sync* callees.
        seen: set[str] = {qual}
        pending: list[str] = []
        flow = program.callgraph.flows.get(qual)
        if flow is not None:
            pending = [
                site.target for site in flow.calls
                if site.kind == "function" and site.target is not None
            ]
        reported: set[str] = set()
        while pending:
            callee_qual = pending.pop()
            if callee_qual in seen:
                continue
            seen.add(callee_qual)
            callee = table.functions.get(callee_qual)
            if callee is None or isinstance(callee.node, ast.AsyncFunctionDef):
                continue  # awaiting another coroutine is fine
            for _, name in blocking_in(callee_qual):
                if callee_qual in reported:
                    break
                reported.add(callee_qual)
                transitive.append(BlockingCall(
                    path=display,
                    lineno=func.lineno,
                    col=1,
                    async_qual=qual,
                    call=name,
                    via=callee_qual,
                ))
            callee_flow = program.callgraph.flows.get(callee_qual)
            if callee_flow is not None:
                pending.extend(
                    site.target for site in callee_flow.calls
                    if site.kind == "function" and site.target is not None
                )
    result = (direct, transitive)
    program.analysis_cache["conc_async_blocking"] = result
    return result


# ----------------------------------------------------------------------
# --graph shared report
# ----------------------------------------------------------------------
def shared_state_report(program: Program) -> dict[str, object]:
    """The ``repro lint --graph shared`` payload: what the analysis sees.

    Lists the worker_view protocol per class (shared vs split), the
    worker-reachable function set, module-level state writes, and the
    async blocking-call picture — the inputs every CONC/ASY verdict is
    derived from.
    """
    reachable = compute_run_reachable(program)
    protocols = view_protocols(program)
    direct, transitive = compute_async_blocking(program)
    return {
        "root": f"{ROOT_CLASS}.{ROOT_METHOD}",
        "root_present": bool(reachable),
        "worker_view": {
            cls_qual: {
                "shared": sorted(protocols[cls_qual].shared),
                "split": sorted(protocols[cls_qual].split),
            }
            for cls_qual in sorted(protocols)
        },
        "run_reachable": sorted(reachable),
        "module_state_writes": [
            {
                "path": w.path,
                "line": w.lineno,
                "module": w.module,
                "name": w.name,
                "via": w.via,
                "function": w.func_qual,
            }
            for w in compute_module_state_writes(program)
        ],
        "async_blocking": {
            "direct": [
                {"path": b.path, "line": b.lineno, "async": b.async_qual,
                 "call": b.call}
                for b in direct
            ],
            "transitive": [
                {"path": b.path, "line": b.lineno, "async": b.async_qual,
                 "call": b.call, "via": b.via}
                for b in transitive
            ],
        },
    }
