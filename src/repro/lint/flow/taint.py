"""Taint rules (TNT) — unvetted source text must pass the MCC gate.

MultiRAG's central claim is that multi-source hallucination is mitigated
by *gating* retrieved evidence through multi-level confidence calculation
before it reaches the generator.  These rules turn that architecture
into a checked invariant:

* **sources** — values returned by calls into ``repro.adapters.*`` or
  ``repro.retrieval.*`` (parsed documents, retrieved chunks: text the
  program did not author);
* **sinks** — prompt rendering (``repro.llm.prompts.render_*``) and
  answer generation (``repro.llm.generation.*``,
  ``SimulatedLLM.generate_answer``);
* **sanitizers** — calls into ``repro.confidence.*`` (the MCC gate and
  its credibility machinery): their results are considered vetted.

* TNT001 — a source-tainted value is passed directly to a sink.
* TNT002 — a source-tainted value is passed to a function that
  (transitively) forwards that parameter into a sink.

The dataflow is an intraprocedural label propagation (labels:
``"<source>"`` plus ``"param:N"``) joined across functions by summaries
computed to a fixpoint over the precise call graph.  Deliberate
precision compromises, chosen so the *actual* gated pipeline verifies
clean and the findings that remain are real:

* stores through attributes/subscripts do not taint the base object
  (building a result record out of mixed fields must not poison the
  vetted parts);
* method calls on a tainted receiver do not taint their result unless
  an explicit argument does (``result.mcc.accepted_assessments()`` is
  vetted even when other fields of ``result`` are not) — plain
  attribute reads *do* propagate (``chunk.text`` stays tainted);
* modules whose job is the model boundary or a deliberately ungated
  control arm are policy-exempt as *reporting* locations (adapters,
  retrieval, llm, datasets, and the baselines — the paper's contrast
  group); their summaries still feed callers.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable

from repro.lint.findings import Finding, Severity
from repro.lint.flow.callgraph import CallSite, FunctionFlow
from repro.lint.flow.program import Program
from repro.lint.flow.symbols import FunctionInfo, ModuleSymbols
from repro.lint.registry import FlowRule, register_rule

SOURCE_LABEL = "<source>"

#: call targets under these prefixes produce unvetted source text.
SOURCE_PREFIXES = ("repro.adapters.", "repro.retrieval.")
#: call targets under these prefixes vet their inputs (the MCC gate).
SANITIZER_PREFIXES = ("repro.confidence.",)
#: modules where raw source text is legitimate (the model boundary and
#: the deliberately ungated baselines).
EXEMPT_MODULE_PREFIXES = (
    "repro.adapters",
    "repro.retrieval",
    "repro.llm",
    "repro.baselines",
    "repro.datasets",
)
#: unresolved attribute calls with these names count as sinks.
SINK_ATTR_NAMES = frozenset({"generate_answer"})


def is_source(target: str) -> bool:
    return target.startswith(SOURCE_PREFIXES)


def is_sanitizer(target: str) -> bool:
    return target.startswith(SANITIZER_PREFIXES)


def is_sink(target: str) -> bool:
    if target.startswith("repro.llm.generation."):
        return True
    if target.startswith("repro.llm.prompts."):
        return target.rsplit(".", 1)[-1].startswith("render_")
    return target.endswith(".generate_answer")


def is_exempt_module(module_name: str) -> bool:
    return any(
        module_name == prefix or module_name.startswith(prefix + ".")
        for prefix in EXEMPT_MODULE_PREFIXES
    )


@dataclass(slots=True)
class TaintSummary:
    """Cross-function taint behaviour of one function."""

    #: labels the return value can carry ("<source>", "param:N").
    returns: frozenset[str] = frozenset()
    #: parameter indices that (transitively) reach a sink inside.
    param_sinks: frozenset[int] = frozenset()


@dataclass(slots=True)
class TaintHit:
    """One sink reached by source-tainted data."""

    rule_id: str
    module: str
    path: str
    line: int
    col: int
    message: str


@dataclass(slots=True)
class _FunctionTaint:
    """Evaluation output for one function body."""

    summary: TaintSummary = field(default_factory=TaintSummary)
    hits: list[TaintHit] = field(default_factory=list)


_Labels = frozenset[str]
_EMPTY: _Labels = frozenset()


def _param_names(func: FunctionInfo) -> list[str]:
    args = func.node.args
    return [a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)]


class _Evaluator:
    """Label propagation over one function body."""

    def __init__(
        self,
        program: Program,
        module: ModuleSymbols,
        flow: FunctionFlow,
        summaries: dict[str, TaintSummary],
        collect_hits: bool,
    ) -> None:
        self.program = program
        self.module = module
        self.flow = flow
        self.summaries = summaries
        self.collect_hits = collect_hits
        self.env: dict[str, _Labels] = {}
        self.returns: set[str] = set()
        self.param_sinks: set[int] = set()
        self.hits: list[TaintHit] = []
        self.sites: dict[int, CallSite] = {
            id(site.node): site for site in flow.calls
        }
        func = flow.info
        if func.name != "<module>":
            for i, name in enumerate(_param_names(func)):
                self.env[name] = frozenset({f"param:{i}"})

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------
    def run(self, body: list[ast.stmt]) -> _FunctionTaint:
        # Two passes approximate the loop fixpoint: labels assigned late
        # in a loop body reach uses earlier in the next iteration.
        self.exec_block(body)
        self.hits.clear()
        self.exec_block(body)
        return _FunctionTaint(
            summary=TaintSummary(
                returns=frozenset(self.returns),
                param_sinks=frozenset(self.param_sinks),
            ),
            hits=list(self.hits),
        )

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def exec_block(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            self._exec_assign(stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.returns.update(self.eval(stmt.value))
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._bind_target(stmt.target, self.eval(stmt.iter))
            self.exec_block(stmt.body)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                labels = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind_target(item.optional_vars, labels)
            self.exec_block(stmt.body)
        elif isinstance(stmt, ast.If):
            self.eval(stmt.test)
            self.exec_block(stmt.body)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, (ast.While,)):
            self.eval(stmt.test)
            self.exec_block(stmt.body)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, ast.Try):
            self.exec_block(stmt.body)
            for handler in stmt.handlers:
                self.exec_block(handler.body)
            self.exec_block(stmt.orelse)
            self.exec_block(stmt.finalbody)
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.eval(stmt.exc)
        elif isinstance(stmt, ast.Assert):
            self.eval(stmt.test)
        elif isinstance(stmt, ast.Match):
            self.eval(stmt.subject)
            for case in stmt.cases:
                self.exec_block(case.body)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Closure bodies fold into the parent, consistent with the
            # other analyses.
            self.exec_block(stmt.body)
        # remaining statement kinds move no data the labels track

    def _exec_assign(
        self, stmt: ast.Assign | ast.AnnAssign | ast.AugAssign
    ) -> None:
        if stmt.value is None:
            return
        labels = self.eval(stmt.value)
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                self._bind_target(target, labels)
        elif isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name):
                self.env[stmt.target.id] = (
                    self.env.get(stmt.target.id, _EMPTY) | labels
                )
        else:
            self._bind_target(stmt.target, labels)

    def _bind_target(self, target: ast.expr, labels: _Labels) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = labels
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind_target(elt, labels)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, labels)
        # Attribute/Subscript stores: deliberately no base-object taint.

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def eval(self, node: ast.expr) -> _Labels:
        if isinstance(node, ast.Name):
            return self.env.get(node.id, _EMPTY)
        if isinstance(node, ast.Constant):
            return _EMPTY
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Attribute):
            # Plain field read: the chunk's .text is as tainted as the
            # chunk itself.
            return self.eval(node.value)
        if isinstance(node, ast.Subscript):
            return self.eval(node.value) | self.eval(node.slice)
        if isinstance(node, ast.NamedExpr):
            labels = self.eval(node.value)
            self._bind_target(node.target, labels)
            return labels
        if isinstance(node, ast.Lambda):
            return _EMPTY
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ):
            return self._eval_comprehension(node)
        if isinstance(node, ast.IfExp):
            self.eval(node.test)
            return self.eval(node.body) | self.eval(node.orelse)
        # Generic join over child expressions (BinOp, BoolOp, Compare,
        # JoinedStr, containers, Starred, Await, ...).
        labels: set[str] = set()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                labels.update(self.eval(child))
        return frozenset(labels)

    def _eval_comprehension(
        self,
        node: ast.ListComp | ast.SetComp | ast.GeneratorExp | ast.DictComp,
    ) -> _Labels:
        for gen in node.generators:
            self._bind_target(gen.target, self.eval(gen.iter))
            for cond in gen.ifs:
                self.eval(cond)
        if isinstance(node, ast.DictComp):
            return self.eval(node.key) | self.eval(node.value)
        return self.eval(node.elt)

    # ------------------------------------------------------------------
    # calls
    # ------------------------------------------------------------------
    def _eval_call(self, node: ast.Call) -> _Labels:
        arg_labels: list[_Labels] = []
        for arg in node.args:
            value = arg.value if isinstance(arg, ast.Starred) else arg
            arg_labels.append(self.eval(value))
        kw_labels: dict[str, _Labels] = {}
        extra: list[_Labels] = []
        for kw in node.keywords:
            labels = self.eval(kw.value)
            if kw.arg is None:
                extra.append(labels)
            else:
                kw_labels[kw.arg] = labels
        joined = frozenset().union(*arg_labels, *kw_labels.values(), *extra)

        site = self.sites.get(id(node))
        target = site.target if site is not None else None

        if target is not None and is_sanitizer(target):
            return _EMPTY
        if target is not None and is_source(target):
            return joined | {SOURCE_LABEL}
        if target is not None and is_sink(target):
            self._record_sink_args("TNT001", node, target, arg_labels,
                                   kw_labels, extra)
            return _EMPTY
        if site is not None and site.attr in SINK_ATTR_NAMES:
            self._record_sink_args("TNT001", node, site.attr or "", arg_labels,
                                   kw_labels, extra)
            return _EMPTY
        if target is not None and site is not None:
            return self._eval_resolved_call(
                node, site, target, arg_labels, kw_labels
            )
        # Unresolved call: assume arguments pass through to the result.
        # The receiver of an unresolved method call is deliberately NOT
        # joined in (see the module docstring).
        return joined

    def _eval_resolved_call(
        self,
        node: ast.Call,
        site: CallSite,
        target: str,
        arg_labels: list[_Labels],
        kw_labels: dict[str, _Labels],
    ) -> _Labels:
        targets: list[str] = []
        if site.kind == "class":
            for method in ("__init__", "__post_init__"):
                found = self.program.symtab.find_method(target, method)
                if found is not None:
                    targets.append(found)
            if not targets:
                # Synthesised dataclass __init__: the instance carries
                # whatever its field values carry.
                return frozenset().union(*arg_labels, *kw_labels.values())
        else:
            targets.append(target)

        result: set[str] = set()
        for callee_qual in targets:
            callee = self.program.symtab.functions.get(callee_qual)
            summary = self.summaries.get(callee_qual)
            if callee is None or summary is None:
                result.update(
                    frozenset().union(*arg_labels, *kw_labels.values())
                )
                continue
            mapping = self._map_args(callee, arg_labels, kw_labels)
            for label in sorted(summary.returns):
                if label == SOURCE_LABEL:
                    result.add(SOURCE_LABEL)
                elif label.startswith("param:"):
                    result.update(mapping.get(int(label.split(":")[1]), _EMPTY))
            for index in sorted(summary.param_sinks):
                labels = mapping.get(index, _EMPTY)
                if SOURCE_LABEL in labels:
                    self._record_hit(
                        "TNT002", node,
                        f"unvetted source text flows into {callee.name}() "
                        f"which forwards it to an LLM sink; route it "
                        f"through the MCC gate (repro.confidence) first",
                    )
                for label in sorted(labels):
                    if label.startswith("param:"):
                        self.param_sinks.add(int(label.split(":")[1]))
        return frozenset(result)

    def _map_args(
        self,
        callee: FunctionInfo,
        arg_labels: list[_Labels],
        kw_labels: dict[str, _Labels],
    ) -> dict[int, _Labels]:
        """Map call-site argument labels onto callee parameter indices."""
        names = _param_names(callee)
        offset = 0
        if callee.cls is not None and "staticmethod" not in callee.decorators:
            offset = 1  # the bound receiver occupies parameter 0
        mapping: dict[int, _Labels] = {}
        for i, labels in enumerate(arg_labels):
            mapping[i + offset] = labels
        for name, labels in kw_labels.items():
            if name in names:
                mapping[names.index(name)] = labels
        return mapping

    def _record_sink_args(
        self,
        rule_id: str,
        node: ast.Call,
        target: str,
        arg_labels: list[_Labels],
        kw_labels: dict[str, _Labels],
        extra: list[_Labels],
    ) -> None:
        tainted = any(
            SOURCE_LABEL in labels
            for labels in (*arg_labels, *kw_labels.values(), *extra)
        )
        for labels in (*arg_labels, *kw_labels.values(), *extra):
            for label in sorted(labels):
                if label.startswith("param:"):
                    self.param_sinks.add(int(label.split(":")[1]))
        if tainted:
            bare = target.rsplit(".", 1)[-1]
            self._record_hit(
                rule_id, node,
                f"unvetted source text reaches LLM sink {bare}(); route "
                f"it through the MCC gate (repro.confidence) first",
            )

    def _record_hit(self, rule_id: str, node: ast.Call, message: str) -> None:
        if not self.collect_hits:
            return
        self.hits.append(
            TaintHit(
                rule_id=rule_id,
                module=self.module.name,
                path=self.module.module.display_path,
                line=node.lineno,
                col=node.col_offset + 1,
                message=message,
            )
        )


def compute_taint(
    program: Program,
) -> tuple[dict[str, TaintSummary], list[TaintHit]]:
    """Fixpoint taint summaries plus the sink hits they imply.

    The result is memoised on ``program`` — TNT001 and TNT002 share it.
    """
    cached = program.analysis_cache.get("taint")
    if cached is not None:
        return cached  # type: ignore[return-value]

    flows = program.callgraph.flows
    summaries: dict[str, TaintSummary] = {
        qual: TaintSummary() for qual in flows
    }

    def evaluate(qual: str, collect_hits: bool) -> _FunctionTaint:
        flow = flows[qual]
        module = program.modules.get(flow.info.module)
        if module is None:  # pragma: no cover — flows come from modules
            return _FunctionTaint()
        body = (
            module.toplevel
            if flow.info.name == "<module>"
            else list(flow.info.node.body)
        )
        evaluator = _Evaluator(program, module, flow, summaries, collect_hits)
        return evaluator.run(body)

    # Reverse precise edges drive the summary worklist.
    callers: dict[str, set[str]] = {}
    for caller in sorted(program.callgraph.edges):
        for callee in sorted(program.callgraph.edges[caller]):
            callers.setdefault(callee, set()).add(caller)

    pending = sorted(flows)
    pending_set = set(pending)
    iterations = 0
    limit = max(64, 8 * len(flows))
    while pending and iterations < limit:
        iterations += 1
        qual = pending.pop()
        pending_set.discard(qual)
        new_summary = evaluate(qual, collect_hits=False).summary
        if new_summary != summaries[qual]:
            summaries[qual] = new_summary
            for caller in sorted(callers.get(qual, ())):
                if caller not in pending_set:
                    pending.append(caller)
                    pending_set.add(caller)

    hits: list[TaintHit] = []
    for qual in sorted(flows):
        hits.extend(evaluate(qual, collect_hits=True).hits)

    result = (summaries, hits)
    program.analysis_cache["taint"] = result
    return result


class _TaintRule(FlowRule):
    """Shared reporting shell for the two TNT rules."""

    def check_program(self, program: Program) -> Iterable[Finding]:
        _, hits = compute_taint(program)
        seen: set[tuple[str, int, str]] = set()
        for hit in hits:
            if hit.rule_id != self.rule_id or is_exempt_module(hit.module):
                continue
            key = (hit.path, hit.line, hit.message)
            if key in seen:
                continue
            seen.add(key)
            yield self.program_finding(
                hit.path, hit.line, hit.message, col=hit.col
            )


@register_rule
class DirectTaintRule(_TaintRule):
    """TNT001 — source text passed straight to an LLM sink."""

    rule_id = "TNT001"
    family = "taint"
    severity = Severity.ERROR
    description = (
        "text returned by an adapter or retriever reaches prompt "
        "rendering / answer generation without passing the MCC gate "
        "(repro.confidence); gate it or move the code to an exempt "
        "model-boundary module"
    )


@register_rule
class IndirectTaintRule(_TaintRule):
    """TNT002 — source text reaches a sink through helper functions."""

    rule_id = "TNT002"
    family = "taint"
    severity = Severity.ERROR
    description = (
        "text returned by an adapter or retriever is passed to a "
        "function that forwards it into an LLM sink without the MCC "
        "gate; gate the value before the call"
    )
