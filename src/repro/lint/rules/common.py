"""Shared AST helpers for the rule family modules."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field


@dataclass(slots=True)
class ImportMap:
    """What names a module binds to which imported targets.

    ``modules`` maps a local name to the dotted module it aliases
    (``import random`` → ``{"random": "random"}``; ``import numpy as np``
    → ``{"np": "numpy"}``).  ``members`` maps a local name to
    ``(module, original_name)`` for ``from X import Y [as Z]``.
    """

    modules: dict[str, str] = field(default_factory=dict)
    members: dict[str, tuple[str, str]] = field(default_factory=dict)


def collect_imports(tree: ast.Module) -> ImportMap:
    """Walk ``tree`` and record every name bound by an import statement."""
    imports = ImportMap()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                imports.modules[local] = target
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                local = alias.asname or alias.name
                imports.members[local] = (node.module, alias.name)
    return imports


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_target(node: ast.Call, imports: ImportMap) -> str | None:
    """Resolve a call's function to its fully-qualified imported name.

    ``rnd.choice(...)`` with ``import random as rnd`` resolves to
    ``random.choice``; ``choice(...)`` with ``from random import choice``
    also resolves to ``random.choice``.  Returns None when the target is
    not an imported name (a local function, a method on an instance, ...).
    """
    dotted = dotted_name(node.func)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    if head in imports.modules:
        module = imports.modules[head]
        return f"{module}.{rest}" if rest else module
    if not rest and head in imports.members:
        module, original = imports.members[head]
        return f"{module}.{original}"
    if rest and head in imports.members:
        module, original = imports.members[head]
        return f"{module}.{original}.{rest}"
    return None


def is_set_expression(node: ast.AST) -> bool:
    """True for a set display or a bare ``set(...)``/``frozenset(...)`` call."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )
