"""Observability rules (OBS) — telemetry goes through ``repro.obs``.

The pipeline has one sanctioned logging seam: :mod:`repro.obs.log`.  A
module that imports :mod:`logging` directly configures handlers and
levels behind the bundle's back, fragments the ``repro`` logger
namespace, and dodges the single switch (:func:`repro.obs.log.set_level`)
operators use to silence or surface the pipeline.  Everything outside
``repro.obs`` must use :func:`repro.obs.log.get_logger`.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.findings import Finding, Severity
from repro.lint.registry import ModuleUnderLint, Rule, register_rule


@register_rule
class DirectLoggingImportRule(Rule):
    """OBS001 — no ``import logging`` outside ``repro.obs``."""

    rule_id = "OBS001"
    family = "observability"
    severity = Severity.ERROR
    description = (
        "direct `import logging` outside repro.obs; use "
        "repro.obs.log.get_logger so all pipeline logging shares one "
        "namespace and switch"
    )
    #: the one module whose job is wrapping stdlib logging.
    allowlist = ("repro/obs/log.py",)

    def check(self, module: ModuleUnderLint) -> Iterable[Finding]:
        if not module.package_parts:
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                names = [a.name for a in node.names]
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                names = [node.module or ""]
            else:
                continue
            for name in names:
                if name == "logging" or name.startswith("logging."):
                    yield self.finding(
                        module, node,
                        "direct logging import; use "
                        "repro.obs.log.get_logger(__name__) instead",
                    )
