"""Concurrency-safety rules (CONC/ASY) — the static race/escape gate.

Built on the shared-state escape analysis in
:mod:`repro.lint.flow.concurrency`: the worker-executed function set
(everything reachable from ``MultiRAG.run``), the ``worker_view()``
split/absorb protocol, module-level mutable state, and async blocking
reachability.

* CONC001 — worker-reachable code mutates an object that may be shared
  across workers (store through ``self``, a parameter, or a local it did
  not construct).  Generalizes and subsumes the retired EXE001 rule.
* CONC002 — worker-reachable pipeline code touches a ``self`` attribute
  the ``worker_view()`` protocol neither shares nor splits: the view
  would be missing it (AttributeError under the pool) or — worse — a
  subclass added state that silently bypasses the split/absorb contract.
* CONC003 — worker-reachable code writes module-level mutable state
  (registries, caches, ``global``s): invisible to the view protocol and
  shared by every thread in the process.
* ASY001 — a blocking call (``time.sleep``, file I/O, ``subprocess``)
  lexically inside an ``async def``: stalls the entire event loop.
* ASY002 — an ``async def`` reaches a blocking call through sync
  callees; anchored at the async function, naming the offending path.

All five are whole-program *and* program-keyed: their roots (the
dispatch root, the view protocol, async entry points) can live anywhere
in the file set, so cached findings are keyed by the whole program's
content hash.

The sanctioned seams carry inline ``repro-lint: ignore[CONC001]``
suppressions with their justification: consensus-feedback history writes
(only reachable with ``update_history=True``, which forces the engine to
serialize), usage-meter accounting (each worker task accounts into a
fresh clone's meter, merged afterwards in submit order), and task-local
result records the dataflow heuristic cannot prove fresh.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.findings import Finding, Severity
from repro.lint.flow.concurrency import (
    ROOT_CLASS,
    _is_fresh_value,
    _param_names,
    _store_base_name,
    compute_async_blocking,
    compute_module_state_writes,
    compute_run_reachable,
    covered_attrs,
    iter_store_targets,
    shared_attrs,
)
from repro.lint.flow.program import Program
from repro.lint.registry import FlowRule, register_rule


@register_rule
class SharedStateMutationRule(FlowRule):
    """CONC001 — shared-reachable object mutated on the worker path."""

    rule_id = "CONC001"
    family = "concurrency"
    severity = Severity.ERROR
    program_keyed = True
    description = (
        "this code runs inside exec worker threads (reachable from "
        "MultiRAG.run) but mutates an object that may be shared across "
        "workers; write only to objects the function constructed "
        "itself, or keep the path serialized"
    )

    def check_program(self, program: Program) -> Iterable[Finding]:
        reachable = compute_run_reachable(program)
        table = program.symtab
        seen: set[tuple[str, int]] = set()
        for qual in sorted(reachable):
            func = table.functions.get(qual)
            if func is None or func.name == "<module>":
                continue
            module = program.modules.get(func.module)
            if module is None:
                continue
            cls_qual = (
                f"{func.module}.{func.cls}" if func.cls is not None else None
            )
            view_shared = (
                shared_attrs(program, cls_qual)
                if cls_qual is not None else frozenset()
            )
            shared = self._shared_names(func.node)
            for store, base in self._stores(func.node):
                if base not in shared:
                    continue
                key = (module.module.display_path, store.lineno)
                if key in seen:
                    continue
                seen.add(key)
                detail = ""
                root_attr = self._self_attr(store)
                if base == "self" and root_attr in view_shared:
                    detail = (
                        f"; worker_view() shares self.{root_attr} "
                        f"by reference, so every worker aliases it"
                    )
                yield self.program_finding(
                    module.module.display_path, store.lineno,
                    f"{func.name}() runs on the exec worker path "
                    f"(reachable from MultiRAG.run) but mutates "
                    f"{ast.unparse(store)!r}, which may be shared "
                    f"across workers{detail}",
                    col=store.col_offset + 1,
                )

    def _self_attr(self, target: ast.expr) -> str | None:
        """First attribute off ``self`` in a store chain, else None."""
        node = target
        attr: str | None = None
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            if isinstance(node, ast.Attribute):
                attr = node.attr
            node = node.value
        if isinstance(node, ast.Name) and node.id == "self":
            return attr
        return None

    def _shared_names(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> set[str]:
        """Names whose object may outlive / escape this task: ``self``,
        parameters, and locals not freshly constructed here."""
        constructed: set[str] = set()
        assigned: set[str] = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                target = sub.targets[0]
                if isinstance(target, ast.Name):
                    assigned.add(target.id)
                    if _is_fresh_value(sub.value):
                        constructed.add(target.id)
                    else:
                        constructed.discard(target.id)
            elif isinstance(sub, ast.AnnAssign):
                if isinstance(sub.target, ast.Name) and sub.value is not None:
                    assigned.add(sub.target.id)
                    if _is_fresh_value(sub.value):
                        constructed.add(sub.target.id)
                    else:
                        constructed.discard(sub.target.id)
        return (_param_names(node) | assigned) - constructed

    def _stores(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterable[tuple[ast.expr, str]]:
        """(store-target, base-name) for every attribute/subscript store."""
        for target in iter_store_targets(node):
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                base = _store_base_name(target)
                if base is not None:
                    yield target, base


@register_rule
class ViewCoverageRule(FlowRule):
    """CONC002 — worker code touches an attr the view protocol misses."""

    rule_id = "CONC002"
    family = "concurrency"
    severity = Severity.ERROR
    program_keyed = True
    description = (
        "worker-reachable pipeline code touches a self attribute that "
        "worker_view() neither shares nor splits — the view is missing "
        "it under the pool; add it to the split/absorb protocol"
    )

    def check_program(self, program: Program) -> Iterable[Finding]:
        reachable = compute_run_reachable(program)
        table = program.symtab
        covered_memo: dict[str, frozenset[str] | None] = {}
        seen: set[tuple[str, int, str]] = set()
        for qual in sorted(reachable):
            func = table.functions.get(qual)
            if func is None or func.cls is None:
                continue
            cls_qual = f"{func.module}.{func.cls}"
            if cls_qual != ROOT_CLASS and not table.is_subclass(
                cls_qual, ROOT_CLASS
            ):
                continue
            if cls_qual not in covered_memo:
                covered_memo[cls_qual] = covered_attrs(program, cls_qual)
            covered = covered_memo[cls_qual]
            if covered is None:
                continue  # no worker_view anywhere in the ancestry
            module = program.modules.get(func.module)
            if module is None:
                continue
            methods = self._method_names(program, cls_qual)
            for sub in ast.walk(func.node):
                if not (
                    isinstance(sub, ast.Attribute)
                    and isinstance(sub.value, ast.Name)
                    and sub.value.id == "self"
                ):
                    continue
                attr = sub.attr
                if attr in covered or attr in methods:
                    continue
                if attr.startswith("__") and attr.endswith("__"):
                    continue
                key = (module.module.display_path, sub.lineno, attr)
                if key in seen:
                    continue
                seen.add(key)
                yield self.program_finding(
                    module.module.display_path, sub.lineno,
                    f"{func.name}() runs on the exec worker path but "
                    f"touches self.{attr}, which worker_view() neither "
                    f"shares nor splits — worker views are missing it; "
                    f"add it to the split/absorb protocol",
                    col=sub.col_offset + 1,
                )

    def _method_names(self, program: Program, cls_qual: str) -> frozenset[str]:
        """Method and property names along the class's ancestry."""
        table = program.symtab
        names: set[str] = set()
        for qual in (cls_qual, *sorted(table.ancestors(cls_qual))):
            info = table.classes.get(qual)
            if info is not None:
                names.update(info.methods)
        return frozenset(names)


@register_rule
class ModuleStateWriteRule(FlowRule):
    """CONC003 — module-level mutable state written on the worker path."""

    rule_id = "CONC003"
    family = "concurrency"
    severity = Severity.ERROR
    program_keyed = True
    description = (
        "worker-reachable code writes module-level mutable state "
        "(registry, cache, global) — shared by every thread and "
        "invisible to the worker_view split/absorb protocol; move the "
        "state onto the pipeline or guard it behind ingest"
    )

    def check_program(self, program: Program) -> Iterable[Finding]:
        table = program.symtab
        for write in compute_module_state_writes(program):
            func = table.functions.get(write.func_qual)
            func_name = func.name if func is not None else write.func_qual
            how = {
                "store": "stores through",
                "global": "rebinds the global",
                "mutator": "mutates in place",
            }.get(write.via, "writes")
            yield self.program_finding(
                write.path, write.lineno,
                f"{func_name}() runs on the exec worker path but {how} "
                f"module-level state {write.name!r} (module "
                f"{write.module}) — shared process-wide across workers",
                col=write.col,
            )


@register_rule
class AsyncBlockingCallRule(FlowRule):
    """ASY001 — blocking call lexically inside an ``async def``."""

    rule_id = "ASY001"
    family = "async-safety"
    severity = Severity.ERROR
    program_keyed = True
    description = (
        "blocking call (time.sleep, file I/O, subprocess) inside an "
        "async def stalls the whole event loop; await an async "
        "equivalent or move the work to a thread"
    )

    def check_program(self, program: Program) -> Iterable[Finding]:
        direct, _ = compute_async_blocking(program)
        table = program.symtab
        for hit in direct:
            func = table.functions.get(hit.async_qual)
            name = func.name if func is not None else hit.async_qual
            yield self.program_finding(
                hit.path, hit.lineno,
                f"async {name}() calls blocking {hit.call!r} directly — "
                f"the event loop stalls for its full duration",
                col=hit.col,
            )


@register_rule
class AsyncBlockingReachRule(FlowRule):
    """ASY002 — ``async def`` reaches a blocking call via sync callees."""

    rule_id = "ASY002"
    family = "async-safety"
    severity = Severity.ERROR
    program_keyed = True
    description = (
        "an async def transitively reaches a blocking call through "
        "sync callees; the loop stalls just the same — break the chain "
        "or dispatch the sync work off-loop"
    )

    def check_program(self, program: Program) -> Iterable[Finding]:
        _, transitive = compute_async_blocking(program)
        table = program.symtab
        for hit in transitive:
            func = table.functions.get(hit.async_qual)
            name = func.name if func is not None else hit.async_qual
            yield self.program_finding(
                hit.path, hit.lineno,
                f"async {name}() reaches blocking {hit.call!r} through "
                f"sync callee {hit.via}() — the event loop stalls while "
                f"it runs",
                col=hit.col,
            )
