"""Determinism rules (DET) — every stochastic or wall-clock dependent
path in the library must be explicit and seeded.

The CLI promises "offline and deterministic (--seed)"; these rules make
that promise machine-checked.  Randomness must flow through an explicit
``random.Random(seed)`` / ``numpy.random.default_rng(seed)`` instance or
the keyed hashes in :mod:`repro.util`; time must come from monotonic
``time.perf_counter`` (durations), never the wall clock.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.lint.findings import Finding, Severity
from repro.lint.registry import ModuleUnderLint, Rule, register_rule
from repro.lint.rules.common import (
    call_target,
    collect_imports,
    is_set_expression,
)

#: Module-level functions of :mod:`random` that read or mutate the shared
#: global RNG.  ``random.Random`` (the class) is the sanctioned spelling.
_GLOBAL_RANDOM_FNS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "triangular", "gauss", "normalvariate",
    "lognormvariate", "expovariate", "vonmisesvariate", "betavariate",
    "paretovariate", "weibullvariate", "getrandbits", "randbytes",
    "seed", "setstate", "getstate",
})

#: numpy legacy global-state RNG entry points.
_NUMPY_GLOBAL_FNS = frozenset({
    "rand", "randn", "randint", "random", "random_sample", "choice",
    "shuffle", "permutation", "seed", "uniform", "normal", "standard_normal",
    "binomial", "poisson", "beta", "gamma",
})

_WALL_CLOCK_FNS = frozenset({"time.time", "time.time_ns"})

_ENTROPY_FNS = frozenset({
    "os.urandom", "os.getrandom", "uuid.uuid1", "uuid.uuid4",
})


def _calls(tree: ast.Module) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


@register_rule
class UnseededRandomRule(Rule):
    """DET001 — no calls on the shared module-level RNG."""

    rule_id = "DET001"
    family = "determinism"
    severity = Severity.ERROR
    description = (
        "module-level random.* / numpy.random.* calls use hidden shared "
        "RNG state; construct an explicit seeded random.Random or "
        "numpy.random.default_rng(seed) instead"
    )

    def check(self, module: ModuleUnderLint) -> Iterable[Finding]:
        imports = collect_imports(module.tree)
        for call in _calls(module.tree):
            target = call_target(call, imports)
            if target is None:
                continue
            if target.startswith("random.") and \
                    target.split(".", 1)[1] in _GLOBAL_RANDOM_FNS:
                yield self.finding(
                    module, call,
                    f"call to the shared global RNG ({target}); use an "
                    f"explicit seeded random.Random instance",
                )
            elif target.startswith("numpy.random."):
                fn = target.rsplit(".", 1)[1]
                if fn in _NUMPY_GLOBAL_FNS:
                    yield self.finding(
                        module, call,
                        f"call to numpy's global RNG ({target}); use "
                        f"numpy.random.default_rng(seed)",
                    )
                elif fn == "default_rng" and not (call.args or call.keywords):
                    yield self.finding(
                        module, call,
                        "numpy.random.default_rng() without a seed draws OS "
                        "entropy; pass an explicit seed",
                    )


@register_rule
class WallClockRule(Rule):
    """DET002 — no wall-clock reads; durations use time.perf_counter."""

    rule_id = "DET002"
    family = "determinism"
    severity = Severity.ERROR
    description = (
        "time.time()/time.time_ns() read the wall clock, which leaks "
        "run-dependent values into results; use time.perf_counter() for "
        "durations or thread an explicit timestamp through the API"
    )
    # Latency telemetry is the one module whose *job* is observing clocks.
    allowlist = ("repro/eval/latency.py",)

    def check(self, module: ModuleUnderLint) -> Iterable[Finding]:
        imports = collect_imports(module.tree)
        for call in _calls(module.tree):
            target = call_target(call, imports)
            if target in _WALL_CLOCK_FNS:
                yield self.finding(
                    module, call,
                    f"{target}() reads the wall clock; use "
                    f"time.perf_counter() for durations",
                )


@register_rule
class DatetimeNowRule(Rule):
    """DET003 — no ambient current-date reads."""

    rule_id = "DET003"
    family = "determinism"
    severity = Severity.ERROR
    description = (
        "datetime.now()/utcnow()/today() make output depend on when the "
        "code runs; accept a timestamp parameter instead"
    )
    allowlist = ("repro/eval/latency.py",)

    _BANNED_TAILS = ("now", "utcnow", "today")

    def check(self, module: ModuleUnderLint) -> Iterable[Finding]:
        imports = collect_imports(module.tree)
        for call in _calls(module.tree):
            target = call_target(call, imports)
            if target is None:
                continue
            head, _, tail = target.rpartition(".")
            if tail in self._BANNED_TAILS and (
                head == "datetime"
                or head.startswith("datetime.")
                or head.endswith(("datetime", "date"))
            ):
                yield self.finding(
                    module, call,
                    f"{target}() reads the current date/time; pass an "
                    f"explicit timestamp (e.g. Provenance.observed_at)",
                )


@register_rule
class EntropyRule(Rule):
    """DET004 — no OS entropy sources."""

    rule_id = "DET004"
    family = "determinism"
    severity = Severity.ERROR
    description = (
        "os.urandom / uuid.uuid1 / uuid.uuid4 / secrets.* are "
        "non-reproducible entropy sources; derive ids from repro.util."
        "stable_hash and randomness from a seeded RNG"
    )

    def check(self, module: ModuleUnderLint) -> Iterable[Finding]:
        imports = collect_imports(module.tree)
        for call in _calls(module.tree):
            target = call_target(call, imports)
            if target is None:
                continue
            if target in _ENTROPY_FNS or target.startswith("secrets."):
                yield self.finding(
                    module, call,
                    f"{target} draws OS entropy; use repro.util.stable_hash "
                    f"or a seeded RNG",
                )


@register_rule
class SetIterationRule(Rule):
    """DET005 — no ordering-sensitive iteration over set expressions."""

    rule_id = "DET005"
    family = "determinism"
    severity = Severity.WARNING
    description = (
        "iterating a set (for-loop, list()/tuple()/enumerate()/join over "
        "a set expression) exposes hash-order, which varies across runs "
        "for str keys; wrap in sorted() or iterate a deterministic "
        "sequence"
    )

    _ORDER_SENSITIVE_WRAPPERS = frozenset({"list", "tuple", "enumerate", "iter"})

    def check(self, module: ModuleUnderLint) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)) and \
                    is_set_expression(node.iter):
                yield self.finding(
                    module, node.iter,
                    "for-loop over a set expression has hash-dependent "
                    "order; wrap in sorted()",
                )
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                for comp in node.generators:
                    if is_set_expression(comp.iter):
                        yield self.finding(
                            module, comp.iter,
                            "comprehension over a set expression has "
                            "hash-dependent order; wrap in sorted()",
                        )
            elif isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id in self._ORDER_SENSITIVE_WRAPPERS
                    and node.args
                    and is_set_expression(node.args[0])
                ):
                    yield self.finding(
                        module, node,
                        f"{node.func.id}() over a set expression has "
                        f"hash-dependent order; wrap in sorted()",
                    )
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "join"
                    and node.args
                    and is_set_expression(node.args[0])
                ):
                    yield self.finding(
                        module, node,
                        "str.join over a set expression has hash-dependent "
                        "order; wrap in sorted()",
                    )


@register_rule
class BuiltinHashRule(Rule):
    """DET006 — no builtin hash() on run-dependent types."""

    rule_id = "DET006"
    family = "determinism"
    severity = Severity.WARNING
    description = (
        "builtin hash() is salted per-process for str/bytes "
        "(PYTHONHASHSEED); use repro.util.stable_hash for anything that "
        "touches ordering, sampling or persisted output"
    )

    def check(self, module: ModuleUnderLint) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "hash"
            ):
                yield self.finding(
                    module, node,
                    "builtin hash() is process-salted; use "
                    "repro.util.stable_hash",
                )
