"""API-hygiene rules (API) — interface-level foot-guns.

These guard the public surface: mutable defaults that alias state across
calls, unannotated public returns that erode the typed API, and exact
float comparison on confidence values (Eqs. 7–11 produce floats; two
mathematically equal scores need not be bit-equal).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.lint.findings import Finding, Severity
from repro.lint.registry import ModuleUnderLint, Rule, register_rule

_MUTABLE_FACTORIES = frozenset({
    "list", "dict", "set", "defaultdict", "Counter", "deque", "bytearray",
    "OrderedDict",
})

#: operand-name fragments that mark a value as a confidence-scale float.
_CONFIDENCE_FRAGMENTS = ("confidence", "conf", "threshold", "authority")


def _functions(
    tree: ast.Module,
) -> Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef, bool]]:
    """Yield ``(function, is_public)`` for module- and class-level defs."""

    def walk(body: list[ast.stmt], public_scope: bool) -> Iterator[
        tuple[ast.FunctionDef | ast.AsyncFunctionDef, bool]
    ]:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                public = public_scope and not node.name.startswith("_")
                yield node, public
            elif isinstance(node, ast.ClassDef):
                yield from walk(
                    node.body, public_scope and not node.name.startswith("_")
                )

    yield from walk(tree.body, True)


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_FACTORIES
    )


@register_rule
class MutableDefaultRule(Rule):
    """API001 — no mutable default arguments."""

    rule_id = "API001"
    family = "hygiene"
    severity = Severity.ERROR
    description = (
        "mutable default arguments are evaluated once and shared across "
        "calls; default to None (or use dataclasses.field(default_factory))"
    )

    def check(self, module: ModuleUnderLint) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable_default(default):
                    yield self.finding(
                        module, default,
                        f"mutable default argument in {node.name}(); "
                        f"default to None and build inside the body",
                    )


@register_rule
class ReturnAnnotationRule(Rule):
    """API002 — public functions declare their return type."""

    rule_id = "API002"
    family = "hygiene"
    severity = Severity.WARNING
    description = (
        "public functions and methods must annotate their return type; "
        "the package ships py.typed and the annotations are the API docs"
    )

    def check(self, module: ModuleUnderLint) -> Iterable[Finding]:
        for node, public in _functions(module.tree):
            if public and node.returns is None:
                yield self.finding(
                    module, node,
                    f"public function {node.name}() has no return "
                    f"annotation",
                )


@register_rule
class FloatEqualityRule(Rule):
    """API003 — no exact == / != on confidence-scale floats."""

    rule_id = "API003"
    family = "hygiene"
    severity = Severity.WARNING
    description = (
        "exact float equality on confidence/threshold values is "
        "numerically fragile; compare with math.isclose or an explicit "
        "epsilon"
    )

    def _is_confidence_operand(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        else:
            return False
        lowered = name.lower()
        return any(fragment in lowered for fragment in _CONFIDENCE_FRAGMENTS)

    @staticmethod
    def _is_float_literal(node: ast.expr) -> bool:
        return isinstance(node, ast.Constant) and isinstance(node.value, float)

    def check(self, module: ModuleUnderLint) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            conf_count = sum(
                1 for o in operands if self._is_confidence_operand(o)
            )
            has_float_literal = any(
                self._is_float_literal(o) for o in operands
            )
            if conf_count and (conf_count >= 2 or has_float_literal):
                yield self.finding(
                    module, node,
                    "exact equality on a confidence-scale float; use "
                    "math.isclose or an epsilon band",
                )
