"""Layering rules (LAY) — enforce the package dependency DAG.

The reproduction's subpackages form a strict DAG (foundation → substrate
→ algorithm → orchestration).  Keeping the arrows one-way is what lets a
PR refactor one layer without rippling through the rest; an accidental
``kg → core`` import would silently turn the substrate into a cycle.

``ALLOWED_DEPENDENCIES`` is the single source of truth.  When a new
subpackage is added, give it an entry here (unknown subpackages are
flagged, not silently allowed).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.findings import Finding, Severity
from repro.lint.registry import ModuleUnderLint, Rule, register_rule

#: subpackage → the subpackages it may import.  ``errors`` and ``util``
#: are the foundation (no repro imports at all); ``lint`` may only see
#: ``errors`` so the checker never depends on the code it checks.
ALLOWED_DEPENDENCIES: dict[str, frozenset[str]] = {
    "errors": frozenset(),
    "util": frozenset(),
    # Process-wide fast-path switch + cache registry: a foundation module
    # so any layer that owns an optimization can consult it.
    "perf": frozenset(),
    "metrics": frozenset({"errors", "util"}),
    "lint": frozenset({"errors"}),
    # Observability is a near-leaf: any layer may depend on it, it
    # depends on nothing above the foundation (telemetry must never
    # create an upward edge).
    "obs": frozenset({"errors", "util"}),
    # The exec engine is a generic scheduling substrate: it knows about
    # plans, queries and thread pools, never about the pipeline it runs
    # (callers hand it closures), so it sits just above the foundation.
    "exec": frozenset({"errors", "util"}),
    # The runtime race sanitizer instruments objects the pipeline hands
    # it (proxies, event log, bisector) — pipelines are duck-typed so it
    # needs only the observability spans it aligns, never repro.core.
    "san": frozenset({"errors", "util", "obs"}),
    "retrieval": frozenset({"errors", "obs", "util", "perf"}),
    "llm": frozenset({"errors", "obs", "util", "retrieval"}),
    "kg": frozenset({"errors", "util", "llm"}),
    "linegraph": frozenset({"errors", "util", "kg"}),
    "confidence": frozenset(
        {"errors", "obs", "util", "kg", "linegraph", "llm", "retrieval",
         "perf"}
    ),
    # Fusion fans per-chunk extraction out over the exec engine (a
    # generic scheduling substrate with no knowledge of its callers),
    # so adapters → exec is a downward edge like core → exec.
    "adapters": frozenset(
        {"errors", "obs", "util", "exec", "kg", "llm", "retrieval"}
    ),
    "datasets": frozenset({"errors", "util", "adapters", "llm"}),
    # Snapshot (de)serialization reads every substrate layer's state but
    # never the orchestration above it (core imports snapshot, not the
    # reverse).
    "snapshot": frozenset({
        "errors", "util", "obs", "adapters", "kg", "retrieval",
        "linegraph", "confidence", "llm",
    }),
    "core": frozenset({
        "errors", "util", "adapters", "confidence", "datasets", "exec",
        "kg", "linegraph", "lint", "llm", "metrics", "obs", "perf",
        "retrieval", "san", "snapshot",
    }),
    "baselines": frozenset({
        "errors", "util", "confidence", "core", "datasets", "exec", "kg",
        "linegraph", "llm", "metrics", "retrieval",
    }),
    "eval": frozenset({
        "errors", "util", "adapters", "baselines", "confidence", "core",
        "datasets", "exec", "kg", "linegraph", "llm", "metrics", "obs",
        "retrieval",
    }),
}

#: top-level modules free to import anything inside ``repro``.
_UNRESTRICTED_MODULES = frozenset({"cli", "__init__", "__main__"})

#: packages that must never be imported from library code.
_FORBIDDEN_TOP_LEVEL = frozenset({"tests", "benchmarks"})

#: pure-data modules importable from any layer: they define the shared
#: vocabulary (the Triple datatype, the pipeline Stage tags) and depend
#: on nothing above the foundation themselves.
FOUNDATION_MODULES = frozenset({"repro.kg.triple", "repro.llm.stage"})


def _type_checking_linenos(tree: ast.Module) -> set[int]:
    """Line numbers covered by ``if TYPE_CHECKING:`` blocks.

    Type-only imports create no runtime dependency edge, so the DAG
    rules ignore them (the sanctioned idiom for annotating across an
    otherwise-forbidden edge).
    """
    covered: set[int] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        name = None
        if isinstance(test, ast.Name):
            name = test.id
        elif isinstance(test, ast.Attribute):
            name = test.attr
        if name == "TYPE_CHECKING":
            end = node.body[-1].end_lineno or node.body[-1].lineno
            covered.update(range(node.body[0].lineno, end + 1))
    return covered


def _imported_modules(tree: ast.Module) -> Iterable[tuple[ast.stmt, str, int]]:
    """Yield ``(node, dotted_module, relative_level)`` per runtime import."""
    type_only = _type_checking_linenos(tree)
    for node in ast.walk(tree):
        if getattr(node, "lineno", None) in type_only:
            continue
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield node, alias.name, 0
        elif isinstance(node, ast.ImportFrom):
            yield node, node.module or "", node.level


def _target_subpackage(dotted: str) -> str | None:
    """``repro.kg.graph`` → ``kg``; ``repro`` → ``""``; else None."""
    parts = dotted.split(".")
    if parts[0] != "repro":
        return None
    if len(parts) == 1:
        return ""
    return parts[1]


@register_rule
class PackageDagRule(Rule):
    """LAY001 — imports must follow ALLOWED_DEPENDENCIES."""

    rule_id = "LAY001"
    family = "layering"
    severity = Severity.ERROR
    description = (
        "a repro subpackage imported a subpackage outside its allowed "
        "dependency set (e.g. kg → core); see ALLOWED_DEPENDENCIES in "
        "repro/lint/rules/layering.py"
    )

    def check(self, module: ModuleUnderLint) -> Iterable[Finding]:
        if not module.package_parts:
            return
        own_module = module.package_parts[-1]
        own = module.subpackage
        if not own and own_module in _UNRESTRICTED_MODULES:
            return
        # Top-level non-package modules (errors.py, util.py) are keyed by
        # their module name; subpackage files by their subpackage.
        key = own or own_module
        allowed = ALLOWED_DEPENDENCIES.get(key)
        for node, dotted, level in _imported_modules(module.tree):
            if level > 0:
                continue  # relative imports are LAY003's concern
            if dotted in FOUNDATION_MODULES:
                continue
            target = _target_subpackage(dotted)
            if target is None:
                continue
            if target == "":
                yield self.finding(
                    module, node,
                    f"{key} imports the repro top-level package, which "
                    f"aggregates every layer; import the specific "
                    f"submodule instead",
                )
                continue
            if target == key:
                continue
            if allowed is None:
                yield self.finding(
                    module, node,
                    f"subpackage {key!r} has no entry in "
                    f"ALLOWED_DEPENDENCIES; add one declaring what it may "
                    f"import",
                )
                return
            if target not in allowed:
                yield self.finding(
                    module, node,
                    f"forbidden dependency: {key} → {target} "
                    f"(allowed: {', '.join(sorted(allowed)) or 'none'})",
                )


@register_rule
class NoTestImportRule(Rule):
    """LAY002 — library code never imports tests or benchmarks."""

    rule_id = "LAY002"
    family = "layering"
    severity = Severity.ERROR
    description = (
        "src/ must not import the tests or benchmarks packages; move "
        "shared helpers into the library"
    )

    def check(self, module: ModuleUnderLint) -> Iterable[Finding]:
        if not module.package_parts:
            return
        for node, dotted, level in _imported_modules(module.tree):
            if level > 0 or not dotted:
                continue
            if dotted.split(".")[0] in _FORBIDDEN_TOP_LEVEL:
                yield self.finding(
                    module, node,
                    f"library module imports {dotted!r}; src/ must never "
                    f"depend on tests or benchmarks",
                )


@register_rule
class NoRelativeImportRule(Rule):
    """LAY003 — absolute imports only."""

    rule_id = "LAY003"
    family = "layering"
    severity = Severity.ERROR
    description = (
        "relative imports hide the dependency edge from the DAG check "
        "and break when modules move; spell imports absolutely "
        "(from repro.x import y)"
    )

    def check(self, module: ModuleUnderLint) -> Iterable[Finding]:
        for node, _, level in _imported_modules(module.tree):
            if level > 0:
                yield self.finding(
                    module, node,
                    "relative import; use the absolute repro.* form",
                )
