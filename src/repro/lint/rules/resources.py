"""RES family: resource discipline for LLM calls and long-lived state.

Built on :mod:`repro.lint.flow.resources` — the interprocedural LLM
call-path/budget analysis.  The contract the family enforces:

* every LLM call goes through the metered client API (``complete`` /
  ``complete_many`` / the task wrappers), never the raw ``_generate``
  transport (RES001);
* every LLM call on a query path sits under loops whose trip counts
  resolve statically — to constants, ``self.attr`` caps, or an explicit
  ``# repro-lint: loop-bound[...]`` annotation — so a finite per-query
  budget exists (RES002);
* retry/backoff loops around LLM or blocking I/O carry a bounded
  attempt cap and a capped sleep (RES003);
* instance collections touched on the query path have an eviction seam —
  some ``pop``/``clear``/``remove``/reassignment in the owning class —
  so an always-on server cannot leak without bound (RES004);
* every entry-reachable ``complete``/``complete_many`` call names its
  pipeline stage — a ``stage=`` tag or legacy ``task=`` keyword — so
  per-stage routing, budgets and attribution cannot be silently bypassed
  by folding calls into the ``other`` bucket (RES005).

Sanctioned suppressions (inline ``# repro-lint: ignore[RES00x]`` with a
trailing justification) are reserved for collections whose key space is
provably finite (e.g. a registry keyed by a closed enum) and loops whose
bound is enforced dynamically but not expressible statically; each one
must say why.  The dynamic twin of RES002 is the runtime budget gate
(``tests/resources/test_call_budget_runtime.py``), which asserts that
observed ``UsageMeter`` counts never exceed the certified bounds in
``results/llm_call_bounds.json``.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.lint.findings import Finding, Severity
from repro.lint.flow.program import Program
from repro.lint.flow.resources import (
    PathSite,
    compute_entry_budgets,
    compute_growth_sites,
    compute_raw_transport_sites,
    compute_retry_sites,
    compute_untagged_sites,
)
from repro.lint.registry import FlowRule, register_rule


@register_rule
class RawTransportRule(FlowRule):
    """RES001: LLM transport called above the meter seam."""

    rule_id = "RES001"
    family = "RES"
    severity = Severity.ERROR
    program_keyed = True
    description = (
        "pipeline code reachable from a run/query entry point calls the "
        "raw LLM transport (`_generate`/`_generate_many`), bypassing the "
        "UsageMeter/caching seam; route the call through `complete()` or "
        "`complete_many()`"
    )

    def check_program(self, program: Program) -> Iterable[Finding]:
        for site in compute_raw_transport_sites(program):
            yield self.program_finding(
                site.path,
                site.line,
                f"{site.function} calls `.{site.attr}()` directly — the "
                "raw transport bypasses usage metering and caching; call "
                "the metered client API instead",
                col=site.col,
            )


@register_rule
class UntaggedStageRule(FlowRule):
    """RES005: metered LLM call with no stage tag."""

    rule_id = "RES005"
    family = "RES"
    severity = Severity.ERROR
    program_keyed = True
    description = (
        "pipeline code reachable from a run/query entry point calls "
        "`complete()`/`complete_many()` with neither a `stage=` tag nor "
        "a legacy `task=` keyword; untagged calls fold into Stage.OTHER, "
        "bypassing per-stage routing, budgets and usage attribution"
    )

    def check_program(self, program: Program) -> Iterable[Finding]:
        for site in compute_untagged_sites(program):
            yield self.program_finding(
                site.path,
                site.line,
                f"{site.function} calls `.{site.api}()` without a stage "
                "tag — the call folds into Stage.OTHER and escapes "
                "per-stage routing/budgets; pass `stage=Stage.<STAGE>`",
                col=site.col,
            )


@register_rule
class UnboundedCallRule(FlowRule):
    """RES002: LLM call whose per-query trip count cannot be bounded."""

    rule_id = "RES002"
    family = "RES"
    severity = Severity.ERROR
    program_keyed = True
    description = (
        "an LLM call on a query path sits under a loop whose trip count "
        "does not resolve to a constant, a `self.attr` cap, or a "
        "`# repro-lint: loop-bound[...]` annotation, so no finite "
        "per-query call budget exists"
    )

    def check_program(self, program: Program) -> Iterable[Finding]:
        seen: set[tuple[str, int]] = set()
        for budget in compute_entry_budgets(program):
            if budget.entry.phase != "query":
                continue
            for path_site in budget.sites:
                if not path_site.cost.is_unbounded:
                    continue
                for finding in self._findings_for(budget.entry.algorithm,
                                                  path_site, seen):
                    yield finding

    def _findings_for(
        self,
        algorithm: str,
        path_site: PathSite,
        seen: set[tuple[str, int]],
    ) -> Iterator[Finding]:
        site = path_site.site
        loops = path_site.loops
        route = " -> ".join(path_site.call_path)
        anchored = False
        for qual, frame in loops:
            if not frame.bound.is_unbounded:
                continue
            anchored = True
            key = (frame.path, frame.lineno)
            if key in seen:
                continue
            seen.add(key)
            yield self.program_finding(
                frame.path,
                frame.lineno,
                f"loop bound unresolved on the `{algorithm}` query path "
                f"({route} -> {site.api}@{site.path}:{site.line}); "
                "resolve it to a constant/config cap or annotate the "
                "loop with `# repro-lint: loop-bound[...]`",
            )
        if not anchored:
            key = (site.path, site.line)
            if key not in seen:
                seen.add(key)
                yield self.program_finding(
                    site.path,
                    site.line,
                    f"`{site.api}` call on the `{algorithm}` query path "
                    f"({route}) has no statically bounded cost "
                    "(recursive path or non-literal `complete_many` "
                    "prompt list)",
                    col=site.col,
                )


@register_rule
class UnboundedRetryRule(FlowRule):
    """RES003: retry/backoff without a bounded attempt cap."""

    rule_id = "RES003"
    family = "RES"
    severity = Severity.ERROR
    program_keyed = True
    description = (
        "a loop with no resolvable trip bound retries an LLM/blocking "
        "call under try/except, or sleeps for a non-constant duration; "
        "cap the attempts (e.g. `for attempt in range(n)`) and the "
        "backoff"
    )

    def check_program(self, program: Program) -> Iterable[Finding]:
        for site in compute_retry_sites(program):
            yield self.program_finding(
                site.path,
                site.line,
                f"{site.function}: {site.reason}",
            )


@register_rule
class UnboundedGrowthRule(FlowRule):
    """RES004: query-path instance collection with no eviction seam."""

    rule_id = "RES004"
    family = "RES"
    severity = Severity.ERROR
    program_keyed = True
    description = (
        "query-path code grows a long-lived instance collection "
        "(append/add/setdefault/non-constant subscript store) and the "
        "owning class has no eviction seam (pop/clear/remove/"
        "reassignment); an always-on server leaks without bound"
    )

    def check_program(self, program: Program) -> Iterable[Finding]:
        seen: set[tuple[str, int, str]] = set()
        for site in compute_growth_sites(program):
            key = (site.path, site.line, site.attr)
            if key in seen:
                continue
            seen.add(key)
            yield self.program_finding(
                site.path,
                site.line,
                f"{site.function} grows `self.{site.attr}` via {site.via} "
                f"on the query path and {site.cls_qual} has no eviction "
                "seam for it; add one (pop/clear on a cap) or justify a "
                "suppression",
                col=site.col,
            )
