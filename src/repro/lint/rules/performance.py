"""Performance rules (PERF) — hot-path regressions the test suite cannot
catch because the slow code still returns the right answer.

The query hot path (BM25 scoring, confidence computing) runs once per
candidate per query; redundant work there multiplies by corpus size.
These rules pin the specific regression class this codebase has already
shipped once: re-tokenizing a loop-invariant string inside a
per-candidate loop (the pre-snapshot ``BM25Index.search`` re-tokenized
the *query* for every document scored).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.lint.findings import Finding, Severity
from repro.lint.registry import ModuleUnderLint, Rule, register_rule


def _bound_names(target: ast.AST) -> Iterator[str]:
    """Every plain name bound by a loop target (handles tuple unpacking)."""
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            yield node.id


def _names_used(node: ast.AST) -> set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def _is_tokenize_call(call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id == "tokenize"
    return isinstance(func, ast.Attribute) and func.attr == "tokenize"


@register_rule
class LoopInvariantTokenizeRule(Rule):
    """PERF001 — no loop-invariant tokenize() inside a loop body."""

    rule_id = "PERF001"
    family = "performance"
    severity = Severity.ERROR
    description = (
        "tokenize() inside a loop whose arguments do not depend on the "
        "loop variable re-tokenizes the same string every iteration "
        "(O(candidates) redundant work on the query hot path); hoist the "
        "call out of the loop"
    )

    def check(self, module: ModuleUnderLint) -> Iterable[Finding]:
        yield from self._walk(module, module.tree, frozenset())

    def _walk(
        self, module: ModuleUnderLint, node: ast.AST,
        loop_vars: frozenset[str],
    ) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.For, ast.AsyncFor)):
                inner = frozenset(_bound_names(child.target))
                for stmt in child.body + child.orelse:
                    yield from self._walk_loop_body(module, stmt, inner)
            elif isinstance(child, ast.While):
                # While loops bind nothing; any tokenize() inside whose
                # arguments are not rebound in the body is still
                # invariant, but proving rebinding needs dataflow — stay
                # conservative and only recurse for nested for-loops.
                yield from self._walk(module, child, loop_vars)
            else:
                yield from self._walk(module, child, loop_vars)

    def _walk_loop_body(
        self, module: ModuleUnderLint, node: ast.AST,
        loop_vars: frozenset[str],
    ) -> Iterator[Finding]:
        if isinstance(node, (ast.For, ast.AsyncFor)):
            # Invariance is judged against the *innermost* enclosing
            # loop: tokenizing an outer loop's value inside an inner
            # loop still repeats the work per inner iteration.
            inner = frozenset(_bound_names(node.target))
            for stmt in node.body + node.orelse:
                yield from self._walk_loop_body(module, stmt, inner)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # A nested function defers execution; its calls are not
            # per-iteration work of this loop.
            return
        if isinstance(node, ast.Call) and _is_tokenize_call(node):
            args_names = set()
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                args_names |= _names_used(arg)
            if not args_names & loop_vars:
                yield self.finding(
                    module, node,
                    "tokenize() argument does not depend on the loop "
                    "variable — the same string is re-tokenized every "
                    "iteration; hoist the call above the loop",
                )
            return  # arguments already inspected; don't descend twice
        for child in ast.iter_child_nodes(node):
            yield from self._walk_loop_body(module, child, loop_vars)
