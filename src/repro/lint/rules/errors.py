"""Error-discipline rules (ERR) — the contract documented in
:mod:`repro.errors`.

Library failures derive from :class:`repro.errors.ReproError` so callers
can catch one base type; programmer errors surface as the builtin
``TypeError`` / ``ValueError``.  These rules keep every ``raise`` and
``except`` site honest about that split.
"""

from __future__ import annotations

import ast
import builtins
from typing import Iterable

from repro.lint.findings import Finding, Severity
from repro.lint.registry import ModuleUnderLint, Rule, register_rule
from repro.lint.rules.common import collect_imports, dotted_name

#: builtins the library may raise: programmer errors per the errors.py
#: docstring, plus protocol/control-flow exceptions.
_ALLOWED_BUILTINS = frozenset({
    "TypeError", "ValueError", "NotImplementedError", "StopIteration",
    "StopAsyncIteration", "SystemExit", "KeyboardInterrupt",
    "AssertionError",
})

_BUILTIN_EXCEPTIONS = frozenset(
    name for name in dir(builtins)
    if isinstance(getattr(builtins, name), type)
    and issubclass(getattr(builtins, name), BaseException)
)


def _repro_error_names() -> frozenset[str]:
    """Every exception class defined in :mod:`repro.errors`.

    Resolved dynamically so new subclasses are allowed the moment they
    are added to the hierarchy, with no lint-side list to update.
    """
    import repro.errors as errors_module

    return frozenset(
        name for name, obj in vars(errors_module).items()
        if isinstance(obj, type) and issubclass(obj, errors_module.ReproError)
    )


def _local_repro_error_subclasses(
    tree: ast.Module, known: frozenset[str]
) -> frozenset[str]:
    """Classes defined in ``tree`` that (transitively) extend a known
    ReproError subclass — e.g. ``BudgetExceededError`` in llm/budget.py."""
    bases: dict[str, list[str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            names = []
            for base in node.bases:
                dotted = dotted_name(base)
                if dotted:
                    names.append(dotted.rsplit(".", 1)[-1])
            bases[node.name] = names

    resolved: set[str] = set()
    changed = True
    while changed:
        changed = False
        for cls, base_names in bases.items():
            if cls in resolved:
                continue
            if any(b in known or b in resolved for b in base_names):
                resolved.add(cls)
                changed = True
    return frozenset(resolved)


@register_rule
class BareExceptRule(Rule):
    """ERR001 — no bare ``except:``."""

    rule_id = "ERR001"
    family = "errors"
    severity = Severity.ERROR
    description = (
        "bare except: swallows SystemExit/KeyboardInterrupt and hides "
        "bugs; catch the specific exception type"
    )

    def check(self, module: ModuleUnderLint) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    module, node,
                    "bare except:; name the exception type being handled",
                )


@register_rule
class BroadExceptRule(Rule):
    """ERR002 — no ``except Exception`` / ``except BaseException``."""

    rule_id = "ERR002"
    family = "errors"
    severity = Severity.ERROR
    description = (
        "except Exception/BaseException hides unrelated failures behind "
        "the intended one; catch ReproError or the specific type"
    )

    _BROAD = ("Exception", "BaseException")

    def check(self, module: ModuleUnderLint) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler) or node.type is None:
                continue
            types = (
                node.type.elts if isinstance(node.type, ast.Tuple)
                else [node.type]
            )
            for type_node in types:
                dotted = dotted_name(type_node)
                if dotted in self._BROAD:
                    yield self.finding(
                        module, node,
                        f"over-broad except {dotted}; catch ReproError or "
                        f"the specific type",
                    )


@register_rule
class RaiseDisciplineRule(Rule):
    """ERR003 — raise sites use ReproError subclasses or sanctioned
    builtins."""

    rule_id = "ERR003"
    family = "errors"
    severity = Severity.ERROR
    description = (
        "library raise sites must use a repro.errors.ReproError subclass "
        "(library failures) or TypeError/ValueError (programmer errors) "
        "per the errors.py docstring"
    )

    def check(self, module: ModuleUnderLint) -> Iterable[Finding]:
        known = _repro_error_names()
        local = _local_repro_error_subclasses(module.tree, known)
        imports = collect_imports(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            dotted = dotted_name(exc)
            if dotted is None:
                continue  # raise of a computed expression; not checkable
            name = dotted.rsplit(".", 1)[-1]
            head = dotted.split(".", 1)[0]
            if name in known or name in local or name in _ALLOWED_BUILTINS:
                continue
            if head in imports.members:
                origin, _ = imports.members[head]
                if origin.startswith("repro."):
                    # Imported from the library: assumed (and separately
                    # tested) to derive from ReproError.
                    continue
            if name in _BUILTIN_EXCEPTIONS:
                yield self.finding(
                    module, node,
                    f"raise {name}: not part of the documented contract "
                    f"(ReproError subclasses for library failures, "
                    f"TypeError/ValueError for programmer errors)",
                )
            elif name.endswith(("Error", "Exception")):
                yield self.finding(
                    module, node,
                    f"raise {name}: cannot verify it derives from "
                    f"ReproError; define it in repro.errors or subclass "
                    f"one locally",
                )
