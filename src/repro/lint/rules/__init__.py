"""Rule family modules; importing this package registers every rule.

Families:

* ``determinism`` (DET) — seeded randomness, no wall clock, no hash-order.
* ``layering`` (LAY) — the package dependency DAG.
* ``errors`` (ERR) — the ReproError raise/except contract.
* ``hygiene`` (API) — mutable defaults, return annotations, float equality.
"""

from repro.lint.rules import determinism, errors, hygiene, layering

__all__ = ["determinism", "errors", "hygiene", "layering"]
