"""Rule family modules; importing this package registers every rule.

Per-file families:

* ``determinism`` (DET) — seeded randomness, no wall clock, no hash-order.
* ``layering`` (LAY) — the package dependency DAG.
* ``errors`` (ERR) — the ReproError raise/except contract.
* ``hygiene`` (API) — mutable defaults, return annotations, float equality.
* ``observability`` (OBS) — logging goes through repro.obs.log.
* ``performance`` (PERF) — no redundant work on the query hot path.

Whole-program families (from :mod:`repro.lint.flow`):

* ``exceptions`` (EXC) — undocumented/dead/swallowed ReproError flow.
* ``reachability`` (DC) — code no entry point can reach.
* ``taint`` (TNT) — unvetted source text reaching LLM sinks ungated.
"""

from repro.lint.rules import (
    determinism,
    errors,
    hygiene,
    layering,
    observability,
    performance,
)

__all__ = [
    "determinism",
    "errors",
    "hygiene",
    "layering",
    "observability",
    "performance",
]

# The flow-rule modules live in repro.lint.flow (they need the symbol
# table and call graph, which in turn use rules.common — importing them
# here would cycle through this package's own initialisation).  The
# registry's lazy loader imports them alongside this package.
