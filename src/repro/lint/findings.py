"""Finding and severity types shared by every lint rule.

A :class:`Finding` is one file/line-anchored violation.  Findings are
plain frozen dataclasses so reports can be sorted, deduplicated and
serialized without any third-party dependency.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Severity(enum.Enum):
    """How serious a finding is.

    Both severities fail the lint gate (``repro lint`` exits non-zero on
    any finding); the level is an aid for triage, not an escape hatch.
    """

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation anchored to a file position."""

    rule_id: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        """``path:line:col: RULE-ID [severity] message`` — grep-friendly."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} [{self.severity}] {self.message}"
        )

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable form (used by ``repro lint --format json``)."""
        return {
            "rule_id": self.rule_id,
            "severity": str(self.severity),
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "Finding":
        """Inverse of :meth:`to_dict` (used by the incremental cache).

        Raises:
            ValueError: when a field has the wrong type or severity value.
        """
        try:
            return cls(
                rule_id=str(data["rule_id"]),
                severity=Severity(str(data["severity"])),
                path=str(data["path"]),
                line=int(data["line"]),  # type: ignore[call-overload]
                col=int(data["col"]),  # type: ignore[call-overload]
                message=str(data["message"]),
            )
        except (KeyError, TypeError) as exc:
            raise ValueError(f"malformed finding record: {exc}") from exc

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)
