"""The lint engine: file discovery, parsing, suppression, rule dispatch.

Pure stdlib (``ast`` + ``pathlib``) so the gate runs offline with zero
third-party dependencies.  Inline suppression::

    risky_call()  # repro-lint: ignore[DET001]
    another()     # repro-lint: ignore          (all rules, this line)

and a file-level pragma within the first ten lines::

    # repro-lint: skip-file
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.findings import Finding, Severity
from repro.lint.registry import ModuleUnderLint, Rule, all_rules

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*ignore(?:\[(?P<ids>[A-Za-z0-9_,\s]+)\])?"
)
_SKIP_FILE_RE = re.compile(r"#\s*repro-lint:\s*skip-file")
_SKIP_FILE_SCAN_LINES = 10

#: pseudo rule id for files Python itself cannot parse.
SYNTAX_ERROR_ID = "SYN001"


@dataclass(slots=True)
class LintReport:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts_by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return dict(sorted(counts.items()))

    def format_text(self) -> str:
        """Human-readable report, one line per finding plus a summary."""
        lines = [finding.format() for finding in self.findings]
        summary = (
            f"{len(self.findings)} finding(s) in {self.files_checked} "
            f"file(s), {self.suppressed} suppressed"
        )
        if self.findings:
            per_rule = ", ".join(
                f"{rule}×{n}" for rule, n in self.counts_by_rule().items()
            )
            summary += f" [{per_rule}]"
        lines.append(summary)
        return "\n".join(lines)

    def to_json(self) -> str:
        """Machine-readable report for ``repro lint --format json``."""
        return json.dumps(
            {
                "files_checked": self.files_checked,
                "suppressed": self.suppressed,
                "ok": self.ok,
                "findings": [f.to_dict() for f in self.findings],
            },
            indent=2,
        )


def iter_python_files(paths: Sequence[Path | str]) -> list[Path]:
    """Every ``.py`` file under ``paths`` (files kept, dirs walked), sorted.

    Raises:
        ValueError: when a path does not exist.
    """
    out: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.extend(
                p for p in path.rglob("*.py")
                if "__pycache__" not in p.parts
            )
        elif path.is_file():
            out.append(path)
        else:
            raise ValueError(f"no such file or directory: {path}")
    return sorted(set(out))


def _package_parts(path: Path) -> tuple[str, ...]:
    """Dotted module path rooted at the last ``repro`` directory.

    ``.../src/repro/kg/graph.py`` → ``("repro", "kg", "graph")``; paths
    outside a ``repro`` tree get ``()`` and skip the layering rules.
    """
    parts = list(path.parts)
    stem = path.stem
    for i in range(len(parts) - 2, -1, -1):
        if parts[i] == "repro":
            middle = tuple(parts[i + 1:-1])
            return ("repro", *middle, stem)
    return ()


def load_module(
    path: Path, display_path: str | None = None
) -> ModuleUnderLint | Finding:
    """Parse one file; a syntax error becomes a SYN001 finding."""
    source = Path(path).read_text(encoding="utf-8")
    display = display_path if display_path is not None else str(path)
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return Finding(
            rule_id=SYNTAX_ERROR_ID,
            severity=Severity.ERROR,
            path=display,
            line=exc.lineno or 1,
            col=(exc.offset or 1),
            message=f"file does not parse: {exc.msg}",
        )
    return ModuleUnderLint(
        path=Path(path),
        display_path=display,
        source=source,
        tree=tree,
        lines=source.splitlines(),
        package_parts=_package_parts(Path(path)),
    )


def _is_suppressed(finding: Finding, module: ModuleUnderLint) -> bool:
    match = _SUPPRESS_RE.search(module.line_text(finding.line))
    if not match:
        return False
    ids = match.group("ids")
    if ids is None:
        return True
    wanted = {part.strip() for part in ids.split(",") if part.strip()}
    return finding.rule_id in wanted


def _skip_file(module: ModuleUnderLint) -> bool:
    return any(
        _SKIP_FILE_RE.search(line)
        for line in module.lines[:_SKIP_FILE_SCAN_LINES]
    )


def lint_module(
    module: ModuleUnderLint,
    rules: Iterable[Rule] | None = None,
    include_suppressed: bool = False,
) -> tuple[list[Finding], int]:
    """Run ``rules`` over one parsed module → (findings, n_suppressed)."""
    if _skip_file(module):
        return [], 0
    active = list(rules) if rules is not None else all_rules()
    kept: list[Finding] = []
    suppressed = 0
    for rule in active:
        if not rule.applies_to(module):
            continue
        for finding in rule.check(module):
            if not include_suppressed and _is_suppressed(finding, module):
                suppressed += 1
                continue
            kept.append(finding)
    return kept, suppressed


def lint_paths(
    paths: Sequence[Path | str],
    select: Iterable[str] | None = None,
    include_suppressed: bool = False,
) -> LintReport:
    """Lint every Python file under ``paths``.

    ``select`` restricts the run to the given rule ids (e.g.
    ``{"DET001", "LAY001"}``); None runs everything.
    """
    rules = _select_rules(select)
    report = LintReport()
    for path in iter_python_files(paths):
        loaded = load_module(path)
        if isinstance(loaded, Finding):
            report.findings.append(loaded)
            report.files_checked += 1
            continue
        findings, suppressed = lint_module(
            loaded, rules, include_suppressed=include_suppressed
        )
        report.findings.extend(findings)
        report.suppressed += suppressed
        report.files_checked += 1
    report.findings.sort(key=Finding.sort_key)
    return report


def lint_source(
    source: str,
    display_path: str = "repro/snippet.py",
    select: Iterable[str] | None = None,
    include_suppressed: bool = False,
) -> list[Finding]:
    """Lint an in-memory source string (test and tooling hook).

    ``display_path`` is also used to derive the module's package for the
    layering rules, so ``"repro/kg/bad.py"`` lints as ``repro.kg.bad``.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Finding(
                rule_id=SYNTAX_ERROR_ID,
                severity=Severity.ERROR,
                path=display_path,
                line=exc.lineno or 1,
                col=exc.offset or 1,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    module = ModuleUnderLint(
        path=Path(display_path),
        display_path=display_path,
        source=source,
        tree=tree,
        lines=source.splitlines(),
        package_parts=_package_parts(Path(display_path)),
    )
    findings, _ = lint_module(
        module, _select_rules(select), include_suppressed=include_suppressed
    )
    findings.sort(key=Finding.sort_key)
    return findings


def _select_rules(select: Iterable[str] | None) -> list[Rule] | None:
    if select is None:
        return None
    wanted = set(select)
    rules = [rule for rule in all_rules() if rule.rule_id in wanted]
    unknown = wanted - {rule.rule_id for rule in rules}
    if unknown:
        raise ValueError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    return rules
