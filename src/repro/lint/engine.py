"""The lint engine: file discovery, parsing, suppression, rule dispatch.

Pure stdlib (``ast`` + ``pathlib``) so the gate runs offline with zero
third-party dependencies.  Inline suppression::

    risky_call()  # repro-lint: ignore[DET001]
    another()     # repro-lint: ignore          (all rules, this line)

and a file-level pragma within the first ten lines::

    # repro-lint: skip-file
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.findings import Finding, Severity
from repro.lint.flow.cache import (
    PROGRAM_KEY,
    FileEntry,
    FlowEntry,
    LintCache,
    content_sha,
    deserialize_findings,
    rules_fingerprint,
)
from repro.lint.flow.program import Program, build_program
from repro.lint.flow.symbols import imported_module_targets, module_name_of
from repro.lint.registry import FlowRule, ModuleUnderLint, Rule, all_rules

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*ignore(?:\[(?P<ids>[A-Za-z0-9_,\s]+)\])?"
)
_SKIP_FILE_RE = re.compile(r"#\s*repro-lint:\s*skip-file")
_SKIP_FILE_SCAN_LINES = 10

#: pseudo rule id for files Python itself cannot parse.
SYNTAX_ERROR_ID = "SYN001"


@dataclass(slots=True)
class LintReport:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    #: files whose per-file findings were served from the incremental
    #: cache without re-linting (0 when no cache directory is in use).
    cache_hits: int = 0
    #: True when the whole-program pass was served from the cache.
    flow_cached: bool = False

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts_by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return dict(sorted(counts.items()))

    def format_text(self) -> str:
        """Human-readable report, one line per finding plus a summary."""
        lines = [finding.format() for finding in self.findings]
        summary = (
            f"{len(self.findings)} finding(s) in {self.files_checked} "
            f"file(s), {self.suppressed} suppressed"
        )
        if self.findings:
            per_rule = ", ".join(
                f"{rule}×{n}" for rule, n in self.counts_by_rule().items()
            )
            summary += f" [{per_rule}]"
        lines.append(summary)
        return "\n".join(lines)

    def to_json(self) -> str:
        """Machine-readable report for ``repro lint --format json``."""
        return json.dumps(
            {
                "files_checked": self.files_checked,
                "suppressed": self.suppressed,
                "ok": self.ok,
                "cache_hits": self.cache_hits,
                "flow_cached": self.flow_cached,
                "findings": [f.to_dict() for f in self.findings],
            },
            indent=2,
        )

    def to_sarif(self) -> str:
        """SARIF 2.1.0 report (``repro lint --format sarif``) so CI can
        upload findings as code-scanning annotations.

        Rule metadata comes from the registry; only rules that actually
        fired (plus the syntax-error pseudo rule) appear in the driver's
        rule table, keeping the document small.
        """
        fired = {f.rule_id for f in self.findings}
        rules_meta: list[dict[str, object]] = []
        rule_index: dict[str, int] = {}
        for rule in all_rules():
            if rule.rule_id not in fired:
                continue
            rule_index[rule.rule_id] = len(rules_meta)
            rules_meta.append({
                "id": rule.rule_id,
                "shortDescription": {"text": rule.description},
                "properties": {
                    "family": rule.family,
                    "version": rule.version,
                },
            })
        for rule_id in sorted(fired - set(rule_index)):
            # SYN001 and anything else without a registered class.
            rule_index[rule_id] = len(rules_meta)
            rules_meta.append({
                "id": rule_id,
                "shortDescription": {"text": "file does not parse"},
            })
        results = [
            {
                "ruleId": f.rule_id,
                "ruleIndex": rule_index[f.rule_id],
                "level": "error" if f.severity is Severity.ERROR
                else "warning",
                "message": {"text": f.message},
                "locations": [{
                    "physicalLocation": {
                        "artifactLocation": {"uri": f.path},
                        "region": {
                            "startLine": f.line,
                            "startColumn": f.col,
                        },
                    },
                }],
            }
            for f in self.findings
        ]
        return json.dumps(
            {
                "$schema": (
                    "https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
                ),
                "version": "2.1.0",
                "runs": [{
                    "tool": {
                        "driver": {
                            "name": "repro-lint",
                            "rules": rules_meta,
                        },
                    },
                    "results": results,
                }],
            },
            indent=2,
        )


def iter_python_files(paths: Sequence[Path | str]) -> list[Path]:
    """Every ``.py`` file under ``paths`` (files kept, dirs walked), sorted.

    Raises:
        ValueError: when a path does not exist.
    """
    out: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.extend(
                p for p in path.rglob("*.py")
                if "__pycache__" not in p.parts
            )
        elif path.is_file():
            out.append(path)
        else:
            raise ValueError(f"no such file or directory: {path}")
    return sorted(set(out))


def _package_parts(path: Path) -> tuple[str, ...]:
    """Dotted module path rooted at the last ``repro`` directory.

    ``.../src/repro/kg/graph.py`` → ``("repro", "kg", "graph")``; paths
    outside a ``repro`` tree get ``()`` and skip the layering rules.
    """
    parts = list(path.parts)
    stem = path.stem
    for i in range(len(parts) - 2, -1, -1):
        if parts[i] == "repro":
            middle = tuple(parts[i + 1:-1])
            return ("repro", *middle, stem)
    return ()


def load_module(
    path: Path,
    display_path: str | None = None,
    source: str | None = None,
) -> ModuleUnderLint | Finding:
    """Parse one file; a syntax error becomes a SYN001 finding.

    ``source`` skips the filesystem read when the caller already holds
    the file's content (the engine hashes every file before parsing).
    """
    if source is None:
        source = Path(path).read_text(encoding="utf-8")
    display = display_path if display_path is not None else str(path)
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return Finding(
            rule_id=SYNTAX_ERROR_ID,
            severity=Severity.ERROR,
            path=display,
            line=exc.lineno or 1,
            col=(exc.offset or 1),
            message=f"file does not parse: {exc.msg}",
        )
    return ModuleUnderLint(
        path=Path(path),
        display_path=display,
        source=source,
        tree=tree,
        lines=source.splitlines(),
        package_parts=_package_parts(Path(path)),
    )


def _is_suppressed(finding: Finding, module: ModuleUnderLint) -> bool:
    return _match_suppression(finding, module.lines)


def _skip_file(module: ModuleUnderLint) -> bool:
    return any(
        _SKIP_FILE_RE.search(line)
        for line in module.lines[:_SKIP_FILE_SCAN_LINES]
    )


def lint_module(
    module: ModuleUnderLint,
    rules: Iterable[Rule] | None = None,
    include_suppressed: bool = False,
) -> tuple[list[Finding], int]:
    """Run ``rules`` over one parsed module → (findings, n_suppressed)."""
    if _skip_file(module):
        return [], 0
    active = list(rules) if rules is not None else all_rules()
    kept: list[Finding] = []
    suppressed = 0
    for rule in active:
        if not rule.applies_to(module):
            continue
        for finding in rule.check(module):
            if not include_suppressed and _is_suppressed(finding, module):
                suppressed += 1
                continue
            kept.append(finding)
    return kept, suppressed


@dataclass(slots=True)
class _FlowPassResult:
    """Outcome of the whole-program pass, grouped for cache storage."""

    kept: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    #: dotted module → kept findings from closure-keyed rules (EXC/TNT).
    closure_kept: dict[str, list[Finding]] = field(default_factory=dict)
    closure_suppressed: dict[str, int] = field(default_factory=dict)
    #: kept findings from program-keyed rules (reachability, concurrency).
    program_kept: list[Finding] = field(default_factory=list)
    program_suppressed: int = 0
    program: Program | None = None


def _run_flow_pass(
    flow_rules: Sequence[FlowRule],
    modules: list[ModuleUnderLint],
    lines_map: dict[str, list[str]],
    module_by_display: dict[str, str],
    include_suppressed: bool,
) -> _FlowPassResult:
    """Build the program and run every flow rule over it.

    Findings anchored in ``# repro-lint: skip-file`` files are dropped;
    inline suppressions apply exactly as they do for per-file rules.
    """
    result = _FlowPassResult(
        closure_kept={m: [] for m in sorted(module_by_display.values())},
        closure_suppressed={m: 0 for m in module_by_display.values()},
    )
    program = build_program(modules)
    result.program = program
    skip_displays = {
        display for display, lines in lines_map.items()
        if any(
            _SKIP_FILE_RE.search(line)
            for line in lines[:_SKIP_FILE_SCAN_LINES]
        )
    }
    for rule in flow_rules:
        program_keyed = rule.program_keyed
        for finding in rule.check_program(program):
            lines = lines_map.get(finding.path)
            module_name = module_by_display.get(finding.path)
            if lines is None or module_name is None:
                continue  # anchored outside this run's file set
            if finding.path in skip_displays:
                continue
            suppressed_here = _match_suppression(finding, lines)
            if suppressed_here and not include_suppressed:
                result.suppressed += 1
                if program_keyed:
                    result.program_suppressed += 1
                else:
                    result.closure_suppressed[module_name] += 1
                continue
            result.kept.append(finding)
            if program_keyed:
                result.program_kept.append(finding)
            else:
                result.closure_kept[module_name].append(finding)
    return result


def _match_suppression(finding: Finding, lines: list[str]) -> bool:
    if not (1 <= finding.line <= len(lines)):
        return False
    match = _SUPPRESS_RE.search(lines[finding.line - 1])
    if not match:
        return False
    ids = match.group("ids")
    if ids is None:
        return True
    wanted = {part.strip() for part in ids.split(",") if part.strip()}
    return finding.rule_id in wanted


def _load_for_flow(
    path: str,
    source: str,
    sha: str,
    cache: LintCache | None,
) -> ModuleUnderLint | None:
    """Materialise a ModuleUnderLint for the flow pass, preferring the
    cached AST pickle over re-parsing."""
    if cache is not None:
        tree = cache.load_ast(sha)
        if tree is not None:
            return ModuleUnderLint(
                path=Path(path),
                display_path=path,
                source=source,
                tree=tree,
                lines=source.splitlines(),
                package_parts=_package_parts(Path(path)),
            )
    loaded = load_module(Path(path), source=source)
    return loaded if isinstance(loaded, ModuleUnderLint) else None


def lint_paths(
    paths: Sequence[Path | str],
    select: Iterable[str] | None = None,
    include_suppressed: bool = False,
    *,
    flow: bool = True,
    cache_dir: Path | str | None = None,
    changed_only: bool = False,
) -> LintReport:
    """Lint every Python file under ``paths``.

    ``select`` restricts the run to the given rule ids (e.g.
    ``{"DET001", "LAY001"}``); None runs everything.  ``flow`` toggles
    the whole-program pass (exception-flow, reachability, taint).
    ``cache_dir`` enables the incremental cache: per-file findings are
    keyed by content hash, flow findings by the hash of each module's
    transitive import closure (reachability by the whole program), and
    parsed ASTs are pickled for cheap partial rebuilds.  The cache only
    engages for full runs (no ``select``, no ``include_suppressed``).
    ``changed_only`` filters the report to files that changed since the
    cached run plus — for flow findings — everything that transitively
    imports them.
    """
    selected = _select_rules(select)
    active: list[Rule] = selected if selected is not None else all_rules()
    file_rules = [r for r in active if not isinstance(r, FlowRule)]
    flow_rules = [r for r in active if isinstance(r, FlowRule)] if flow else []

    cache: LintCache | None = None
    if cache_dir is not None and select is None and not include_suppressed:
        # the fingerprint carries each rule's analysis version, so a
        # rule-logic bump (or a changed enabled set / --no-flow) can
        # never serve findings computed under the old semantics.
        ids = sorted(f"{r.rule_id}@{r.version}" for r in active)
        if not flow:
            # a per-file-only run must not reuse (or clobber) the flow
            # entries of full runs — give it its own cache universe.
            ids.append("<per-file-only>")
        cache = LintCache(Path(cache_dir), rules_fingerprint(ids))

    report = LintReport()
    sources: dict[str, str] = {}
    lines_map: dict[str, list[str]] = {}
    shas: dict[str, str] = {}
    #: display path → (dotted module name or "", raw import targets)
    meta: dict[str, tuple[str, list[str]]] = {}
    parsed: dict[str, ModuleUnderLint] = {}
    per_file_kept: dict[str, list[Finding]] = {}
    per_file_suppressed: dict[str, int] = {}

    for path in iter_python_files(paths):
        display = str(path)
        source = path.read_text(encoding="utf-8")
        sha = content_sha(source)
        sources[display] = source
        lines_map[display] = source.splitlines()
        shas[display] = sha
        entry = cache.file_hit(display, sha) if cache is not None else None
        if entry is not None:
            report.cache_hits += 1
            per_file_kept[display] = deserialize_findings(entry.findings)
            per_file_suppressed[display] = entry.suppressed
            meta[display] = (entry.module, entry.imports)
            continue
        loaded = load_module(path, source=source)
        if isinstance(loaded, Finding):
            per_file_kept[display] = [loaded]
            per_file_suppressed[display] = 0
            meta[display] = ("", [])
            continue
        parsed[display] = loaded
        meta[display] = (
            module_name_of(loaded),
            list(imported_module_targets(loaded.tree)),
        )
        if cache is not None:
            cache.save_ast(sha, loaded.tree)
        findings, suppressed = lint_module(
            loaded, file_rules, include_suppressed=include_suppressed
        )
        per_file_kept[display] = findings
        per_file_suppressed[display] = suppressed

    report.files_checked = len(shas)
    changed_displays = (
        cache.changed_files(shas) if cache is not None else set(shas)
    )

    # ------------------------------------------------------------------
    # whole-program pass
    # ------------------------------------------------------------------
    module_by_display = {
        display: name
        for display, (name, _) in sorted(meta.items())
        if name
    }
    flow_kept: list[Finding] = []
    flow_suppressed = 0
    flow_store: dict[str, FlowEntry] = {}
    module_imports: dict[str, list[str]] = {}
    if flow_rules and module_by_display:
        module_shas: dict[str, str] = {}
        for display in sorted(module_by_display):
            name = module_by_display[display]
            module_shas[name] = shas[display]
            module_imports[name] = meta[display][1]
        keys = LintCache.closure_keys(module_shas, module_imports)

        hit_entries: dict[str, FlowEntry] | None = None
        if cache is not None:
            candidates: dict[str, FlowEntry] = {}
            complete = True
            for name in sorted(module_shas):
                hit = cache.flow_hit(name, keys[name])
                if hit is None:
                    complete = False
                    break
                candidates[name] = hit
            program_hit = cache.flow_hit(PROGRAM_KEY, keys[PROGRAM_KEY])
            if complete and program_hit is not None:
                candidates[PROGRAM_KEY] = program_hit
                hit_entries = candidates

        if hit_entries is not None:
            report.flow_cached = True
            flow_store = hit_entries
            for name in sorted(hit_entries):
                entry_hit = hit_entries[name]
                flow_kept.extend(deserialize_findings(entry_hit.findings))
                flow_suppressed += entry_hit.suppressed
        else:
            modules = []
            for display in sorted(module_by_display):
                unit = parsed.get(display)
                if unit is None:
                    unit = _load_for_flow(
                        display, sources[display], shas[display], cache
                    )
                if unit is not None:
                    modules.append(unit)
            pass_result = _run_flow_pass(
                flow_rules, modules, lines_map, module_by_display,
                include_suppressed,
            )
            flow_kept = pass_result.kept
            flow_suppressed = pass_result.suppressed
            for name in sorted(pass_result.closure_kept):
                flow_store[name] = FlowEntry(
                    key=keys[name],
                    findings=[
                        f.to_dict() for f in pass_result.closure_kept[name]
                    ],
                    suppressed=pass_result.closure_suppressed[name],
                )
            flow_store[PROGRAM_KEY] = FlowEntry(
                key=keys[PROGRAM_KEY],
                findings=[f.to_dict() for f in pass_result.program_kept],
                suppressed=pass_result.program_suppressed,
            )

    # ------------------------------------------------------------------
    # report assembly (+ --changed-only filtering)
    # ------------------------------------------------------------------
    keep_per_file = per_file_kept
    keep_flow = flow_kept
    if changed_only:
        affected = _dependents_of_changed(
            changed_displays, module_by_display, module_imports
        )
        keep_per_file = {
            display: findings
            for display, findings in per_file_kept.items()
            if display in changed_displays
        }
        keep_flow = [
            finding for finding in flow_kept
            if finding.path in changed_displays
            or module_by_display.get(finding.path) in affected
        ]

    for display in sorted(keep_per_file):
        report.findings.extend(keep_per_file[display])
    report.findings.extend(keep_flow)
    report.suppressed = sum(per_file_suppressed.values()) + flow_suppressed
    report.findings.sort(key=Finding.sort_key)

    if cache is not None:
        files_out = {
            display: FileEntry(
                sha=shas[display],
                module=meta[display][0],
                imports=meta[display][1],
                findings=[f.to_dict() for f in per_file_kept[display]],
                suppressed=per_file_suppressed.get(display, 0),
            )
            for display in sorted(shas)
        }
        cache.replace(files_out, flow_store)
    return report


def _dependents_of_changed(
    changed_displays: set[str],
    module_by_display: dict[str, str],
    module_imports: dict[str, list[str]],
) -> set[str]:
    """Changed modules plus everything that transitively imports them."""
    changed_modules = {
        module_by_display[display]
        for display in changed_displays
        if display in module_by_display
    }
    known = set(module_by_display.values())
    reverse: dict[str, set[str]] = {}
    for module in sorted(known):
        for target in module_imports.get(module, []):
            parts = target.split(".")
            for cut in range(1, len(parts) + 1):
                prefix = ".".join(parts[:cut])
                if prefix in known and prefix != module:
                    reverse.setdefault(prefix, set()).add(module)
    seen: set[str] = set()
    stack = sorted(changed_modules)
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        stack.extend(sorted(reverse.get(current, ())))
    return seen


def lint_sources(
    files: dict[str, str],
    select: Iterable[str] | None = None,
    include_suppressed: bool = False,
    *,
    flow: bool = True,
) -> LintReport:
    """Lint a set of in-memory sources as one program (test hook).

    ``files`` maps display paths (used to derive module names, e.g.
    ``"repro/kg/bad.py"``) to source text.  Runs the per-file rules on
    each file and, when ``flow`` is set, the whole-program rules over
    the set as a unit — the multi-module analogue of
    :func:`lint_source`.
    """
    selected = _select_rules(select)
    active: list[Rule] = selected if selected is not None else all_rules()
    file_rules = [r for r in active if not isinstance(r, FlowRule)]
    flow_rules = [r for r in active if isinstance(r, FlowRule)] if flow else []

    report = LintReport()
    lines_map: dict[str, list[str]] = {}
    module_by_display: dict[str, str] = {}
    modules: list[ModuleUnderLint] = []
    for display in sorted(files):
        source = files[display]
        lines_map[display] = source.splitlines()
        loaded = load_module(Path(display), display, source=source)
        report.files_checked += 1
        if isinstance(loaded, Finding):
            report.findings.append(loaded)
            continue
        name = module_name_of(loaded)
        if name:
            module_by_display[display] = name
            modules.append(loaded)
        findings, suppressed = lint_module(
            loaded, file_rules, include_suppressed=include_suppressed
        )
        report.findings.extend(findings)
        report.suppressed += suppressed
    if flow_rules and modules:
        pass_result = _run_flow_pass(
            flow_rules, modules, lines_map, module_by_display,
            include_suppressed,
        )
        report.findings.extend(pass_result.kept)
        report.suppressed += pass_result.suppressed
    report.findings.sort(key=Finding.sort_key)
    return report


def build_program_for_paths(paths: Sequence[Path | str]) -> Program:
    """Parse ``paths`` and build the whole-program view (``--graph``).

    Raises:
        ValueError: when a path does not exist.
    """
    modules = []
    for path in iter_python_files(paths):
        loaded = load_module(path)
        if isinstance(loaded, ModuleUnderLint):
            modules.append(loaded)
    return build_program(modules)


def lint_source(
    source: str,
    display_path: str = "repro/snippet.py",
    select: Iterable[str] | None = None,
    include_suppressed: bool = False,
) -> list[Finding]:
    """Lint an in-memory source string (test and tooling hook).

    ``display_path`` is also used to derive the module's package for the
    layering rules, so ``"repro/kg/bad.py"`` lints as ``repro.kg.bad``.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Finding(
                rule_id=SYNTAX_ERROR_ID,
                severity=Severity.ERROR,
                path=display_path,
                line=exc.lineno or 1,
                col=exc.offset or 1,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    module = ModuleUnderLint(
        path=Path(display_path),
        display_path=display_path,
        source=source,
        tree=tree,
        lines=source.splitlines(),
        package_parts=_package_parts(Path(display_path)),
    )
    findings, _ = lint_module(
        module, _select_rules(select), include_suppressed=include_suppressed
    )
    findings.sort(key=Finding.sort_key)
    return findings


def _select_rules(select: Iterable[str] | None) -> list[Rule] | None:
    if select is None:
        return None
    wanted = set(select)
    rules = [rule for rule in all_rules() if rule.rule_id in wanted]
    unknown = wanted - {rule.rule_id for rule in rules}
    if unknown:
        raise ValueError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    return rules
