"""Rule base class, lint context, and the global rule registry.

Every rule is a small class with a unique id (``FAM###``), a family, a
severity and a ``check`` method that walks one parsed module and yields
findings.  Registration happens at import time via :func:`register_rule`,
so adding a rule is: write the class in the family module, decorate it,
document it in ``docs/static_analysis.md``.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from repro.lint.findings import Finding, Severity

if TYPE_CHECKING:
    from repro.lint.flow.program import Program

_RULE_ID_RE = re.compile(r"^[A-Z]{2,4}\d{3}$")


@dataclass(slots=True)
class ModuleUnderLint:
    """One parsed source file as the rules see it.

    ``package_parts`` is the dotted module path rooted at ``repro``
    (e.g. ``("repro", "kg", "graph")``); empty when the file does not
    live under a ``repro`` package directory, in which case the layering
    rules have nothing to say about it.
    """

    path: Path
    display_path: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    package_parts: tuple[str, ...] = ()

    @property
    def subpackage(self) -> str:
        """The first-level subpackage under ``repro`` ("" for top-level)."""
        if len(self.package_parts) >= 3:
            return self.package_parts[1]
        return ""

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


class Rule:
    """Base class for all lint rules.

    Subclasses set the class attributes and implement :meth:`check`.
    ``allowlist`` holds path suffixes (POSIX, relative) that are exempt
    from the rule — the sanctioned escape hatch for modules whose job is
    the very thing the rule bans (e.g. wall-clock reads in latency
    telemetry).
    """

    rule_id: str = ""
    family: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""
    allowlist: tuple[str, ...] = ()
    #: analysis version; bump when the rule's logic changes so the
    #: incremental cache cannot serve findings from the old semantics.
    version: int = 1

    def check(self, module: ModuleUnderLint) -> Iterable[Finding]:
        """Yield findings for ``module``; override in subclasses."""
        raise NotImplementedError

    def applies_to(self, module: ModuleUnderLint) -> bool:
        """False when ``module`` is allowlisted for this rule."""
        posix = module.path.as_posix()
        display = module.display_path
        return not any(
            posix.endswith(suffix) or display.endswith(suffix)
            for suffix in self.allowlist
        )

    def finding(
        self, module: ModuleUnderLint, node: ast.AST, message: str
    ) -> Finding:
        """Build a finding anchored at ``node``."""
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity,
            path=module.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


class FlowRule(Rule):
    """Base class for whole-program rules (exception-flow, reachability,
    taint).

    Flow rules run once per lint invocation over the :class:`Program`
    built from the entire file set, instead of once per module; findings
    still anchor to a file and line, so the inline-suppression machinery
    applies unchanged.  ``check`` is inert — the engine dispatches flow
    rules through :meth:`check_program`.

    ``program_keyed`` marks rules whose findings depend on the *whole*
    program rather than a module's transitive import closure — their
    roots (entry points, the exec dispatch root) can live anywhere in
    the file set, so the incremental cache keys them by the program
    hash instead of per-module closure hashes.
    """

    program_keyed: bool = False

    def check(self, module: ModuleUnderLint) -> Iterable[Finding]:
        return ()

    def check_program(self, program: "Program") -> Iterable[Finding]:
        """Yield findings over the whole program; override in subclasses."""
        raise NotImplementedError

    def program_finding(
        self, path: str, line: int, message: str, col: int = 1
    ) -> Finding:
        """Build a finding anchored at an explicit file position."""
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity,
            path=path,
            line=line,
            col=col,
            message=message,
        )


_REGISTRY: dict[str, type[Rule]] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator: validate and register a rule under its id."""
    if not _RULE_ID_RE.match(cls.rule_id):
        raise ValueError(
            f"rule id {cls.rule_id!r} does not match FAM### (e.g. DET001)"
        )
    if cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    if not cls.family or not cls.description:
        raise ValueError(f"rule {cls.rule_id} needs a family and description")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule, ordered by id."""
    _ensure_rules_loaded()
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    """Instantiate one rule by id.

    Raises:
        KeyError: for unknown rule ids.
    """
    _ensure_rules_loaded()
    return _REGISTRY[rule_id]()


def rule_ids() -> list[str]:
    """Sorted ids of every registered rule."""
    _ensure_rules_loaded()
    return sorted(_REGISTRY)


def _ensure_rules_loaded() -> None:
    # The family modules self-register on import; importing here (not at
    # module top) avoids a registry<->rules import cycle.  The flow-rule
    # modules import after the per-file families so rules.common is fully
    # initialised before the flow machinery pulls it in.
    import repro.lint.rules  # noqa: F401  (import-for-side-effect)
    import repro.lint.flow.exceptions  # noqa: F401
    import repro.lint.flow.reachability  # noqa: F401
    import repro.lint.flow.taint  # noqa: F401
    # the concurrency rules live in rules/ but build on the flow
    # machinery, so they load here with the flow families, not from the
    # rules package's __init__ (which must stay flow-free).
    import repro.lint.rules.concurrency  # noqa: F401
    import repro.lint.rules.resources  # noqa: F401
