"""Static analysis and invariant checking for the reproduction.

``repro.lint`` machine-checks the contracts the rest of the codebase
states in prose: determinism (every stochastic path is explicitly
seeded), layering (the package dependency DAG), error discipline
(everything raised derives from :class:`repro.errors.ReproError` or is a
sanctioned builtin) and API hygiene.  It is pure stdlib — ``ast`` plus
``pathlib`` — so the gate runs offline with zero third-party
dependencies, and it depends only on :mod:`repro.errors` so it can never
be broken by the code it checks.

Entry points:

* ``python -m repro lint [paths] [--format json]`` — the CLI gate;
* :func:`lint_paths` / :func:`lint_source` — programmatic runs;
* :mod:`repro.lint.contracts` — runtime validators for tests and the
  pipeline's ``debug_contracts`` mode;
* ``# repro-lint: ignore[RULE-ID]`` — inline suppression.

See ``docs/static_analysis.md`` for the rule catalogue.
"""

from repro.lint.contracts import (
    check_assessment,
    check_mcc_result,
    check_mlg,
    check_node_confidence,
    check_ranked_answers,
    check_unit_interval,
)
from repro.lint.engine import (
    SYNTAX_ERROR_ID,
    LintReport,
    build_program_for_paths,
    iter_python_files,
    lint_paths,
    lint_source,
    lint_sources,
)
from repro.lint.findings import Finding, Severity
from repro.lint.flow.concurrency import shared_state_report
from repro.lint.flow.resources import llm_bounds_payload, llm_call_report
from repro.lint.registry import (
    FlowRule,
    ModuleUnderLint,
    Rule,
    all_rules,
    get_rule,
    register_rule,
    rule_ids,
)

__all__ = [
    "Finding",
    "FlowRule",
    "LintReport",
    "ModuleUnderLint",
    "Rule",
    "SYNTAX_ERROR_ID",
    "Severity",
    "all_rules",
    "build_program_for_paths",
    "check_assessment",
    "check_mcc_result",
    "check_mlg",
    "check_node_confidence",
    "check_ranked_answers",
    "check_unit_interval",
    "get_rule",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "lint_sources",
    "llm_bounds_payload",
    "llm_call_report",
    "register_rule",
    "rule_ids",
    "shared_state_report",
]
