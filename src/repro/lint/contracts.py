"""Runtime contract validators — the dynamic half of ``repro.lint``.

Cheap assert-style checks for the invariants the static rules cannot
see: confidence bounds (Eqs. 7–11), MLG referential integrity, and
SVs/LVs disjointness of an MCC pass.  All failures raise
:class:`repro.errors.ContractViolation`.

The validators are duck-typed on purpose: ``repro.lint`` depends only on
``repro.errors`` (enforced by LAY001), so the checker can never be
broken by a refactor of the code it checks.  Call them from tests or
enable ``MultiRAGConfig(debug_contracts=True)`` to run them inside the
pipeline on every ingest/query.
"""

from __future__ import annotations

import math
from typing import Any, Iterable

from repro.errors import ContractViolation

#: ``C(v) = S_n(v) + A(v)`` lives in [0, 2] (both terms are unit-scale).
NODE_CONFIDENCE_MAX = 2.0


def check_unit_interval(value: float, name: str = "confidence") -> float:
    """``value`` must lie in [0, 1] (graph confidence, Eq. 7 scale).

    Raises:
        ContractViolation: out-of-range or non-finite values.
    """
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ContractViolation(f"{name} must be a float, got {value!r}")
    if math.isnan(value):
        raise ContractViolation(f"{name} is NaN")
    if not 0.0 <= value <= 1.0:
        raise ContractViolation(f"{name} must lie in [0, 1], got {value}")
    return float(value)


def check_node_confidence(value: float, name: str = "C(v)") -> float:
    """Node confidence ``C(v) = S_n + A`` must lie in [0, 2].

    Raises:
        ContractViolation: out-of-range or non-finite values.
    """
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ContractViolation(f"{name} must be a float, got {value!r}")
    if math.isnan(value):
        raise ContractViolation(f"{name} is NaN")
    if not 0.0 <= value <= NODE_CONFIDENCE_MAX:
        raise ContractViolation(
            f"{name} must lie in [0, {NODE_CONFIDENCE_MAX}], got {value}"
        )
    return float(value)


def check_assessment(assessment: Any) -> Any:
    """Validate one ``NodeAssessment``'s score breakdown.

    Components (consistency, auth_llm, auth_hist, authority) are unit
    scale; the total confidence is their documented combination.

    Raises:
        ContractViolation: when any component leaves its range.
    """
    for component in ("consistency", "auth_llm", "auth_hist", "authority"):
        check_unit_interval(getattr(assessment, component), component)
    check_node_confidence(assessment.confidence, "assessment.confidence")
    return assessment


def check_mcc_result(result: Any) -> Any:
    """Validate an ``MCCResult``: bounds, disjointness, bookkeeping.

    * every decision's accepted/rejected sets are disjoint;
    * no accepted triple also sits in the isolated set ``LVs``
      (``SVs``/``LVs`` partition the candidates);
    * graph confidence, when computed, is unit scale;
    * ``nodes_scored`` is consistent with the per-decision assessments.

    Raises:
        ContractViolation: on the first violated invariant.
    """
    lvs_ids = {id(triple) for triple in result.lvs}
    scored = 0
    for decision in result.decisions:
        if decision.graph_conf is not None:
            check_unit_interval(decision.graph_conf, "graph_conf")
        accepted_ids = {id(a.triple) for a in decision.accepted}
        rejected_ids = {id(a.triple) for a in decision.rejected}
        overlap = accepted_ids & rejected_ids
        if overlap:
            raise ContractViolation(
                f"group {decision.group.key}: {len(overlap)} triple(s) both "
                f"accepted and rejected"
            )
        accepted_in_lvs = accepted_ids & lvs_ids
        if accepted_in_lvs:
            raise ContractViolation(
                f"group {decision.group.key}: {len(accepted_in_lvs)} "
                f"accepted triple(s) also listed in LVs — SVs and LVs "
                f"must be disjoint"
            )
        scored += len(decision.accepted) + len(decision.rejected)
    if result.nodes_scored < 0:
        raise ContractViolation(
            f"nodes_scored is negative: {result.nodes_scored}"
        )
    if result.nodes_scored > scored:
        raise ContractViolation(
            f"nodes_scored={result.nodes_scored} exceeds the "
            f"{scored} assessments present in the decisions"
        )
    return result


def check_mlg(mlg: Any) -> Any:
    """Validate a ``MultiSourceLineGraph``'s referential integrity.

    * every group is reachable through the key index under its own key;
    * ``snode.num`` equals the member count and members are non-empty;
    * every member triple agrees with its group's ``(entity, attribute)``
      key;
    * no isolated triple's key collides with a group (a key is either
      grouped or isolated, never both).

    Raises:
        ContractViolation: on the first violated invariant.
    """
    group_keys = set()
    for group in mlg.groups:
        if not group.members:
            raise ContractViolation(f"group {group.key} has no members")
        if group.snode.num != len(group.members):
            raise ContractViolation(
                f"group {group.key}: snode.num={group.snode.num} but "
                f"{len(group.members)} members"
            )
        for member in group.members:
            if member.key() != group.key:
                raise ContractViolation(
                    f"group {group.key} contains member with key "
                    f"{member.key()}"
                )
        indexed = mlg.group(*group.key)
        if indexed is not group:
            raise ContractViolation(
                f"group {group.key} is not reachable via the key index"
            )
        if group.snode.confidence is not None:
            check_unit_interval(group.snode.confidence, "snode.confidence")
        group_keys.add(group.key)
    for triple in mlg.isolated:
        if triple.key() in group_keys:
            raise ContractViolation(
                f"isolated triple {triple.key()} collides with a "
                f"homologous group — a key is grouped or isolated, "
                f"never both"
            )
    return mlg


def check_ranked_answers(answers: Iterable[Any]) -> list[Any]:
    """Ranked answers must be confidence-sorted with unit-scale scores
    normalized for presentation.

    Raises:
        ContractViolation: on unsorted or out-of-range confidences.
    """
    ranked = list(answers)
    previous: float | None = None
    for answer in ranked:
        conf = check_node_confidence(answer.confidence, "answer.confidence")
        if previous is not None and conf > previous + 1e-9:
            raise ContractViolation(
                "ranked answers are not sorted by descending confidence"
            )
        previous = conf
    return ranked
