"""Entity-hash sharding of the knowledge substrate.

A shard is a deterministic partition of the substrate by *subject
entity*: :func:`shard_of` maps an entity name to one of ``n_shards``
buckets via :func:`repro.util.stable_hash`, so the assignment is stable
across processes, platforms and ingest orders.  Everything that wants a
partition-aware view of the substrate — the parallel ingest planner, the
per-shard snapshot layout, per-shard cache invalidation — goes through
this one function, which is what keeps the partitions mutually
consistent: a triple's graph shard, its snapshot shard and its cache
scope are all ``shard_of(subject)``.

Sharding is a *layout* property, never a semantic one.  A
:class:`ShardedKnowledgeGraph` answers every query identically to a
plain :class:`~repro.kg.graph.KnowledgeGraph` holding the same triples;
the identity suite pins that, and the snapshot loader reassembles shard
files back into the exact global insertion order.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import GraphError
from repro.kg.graph import KnowledgeGraph
from repro.kg.triple import Entity, Triple
from repro.util import stable_hash


def shard_of(entity: str, n_shards: int) -> int:
    """The stable shard bucket of ``entity`` under an ``n_shards`` split.

    ``n_shards == 1`` short-circuits to shard 0 so the unsharded path
    never pays a hash.  The hash is keyed (``stable_hash`` seed 0) and
    platform-stable, so a snapshot written on one machine partitions
    identically everywhere.

    Raises:
        GraphError: if ``n_shards`` is not a positive integer.
    """
    if n_shards < 1:
        raise GraphError(f"shard count must be positive, got {n_shards}")
    if n_shards == 1:
        return 0
    return stable_hash("shard", entity, seed=0) % n_shards


def partition_indices(
    subjects: Iterable[str], n_shards: int
) -> list[list[int]]:
    """Partition positions ``0..len-1`` into per-shard index lists.

    The workhorse of the partition-aware snapshot layout: given the
    subjects of a triple (or group) sequence in global order, returns for
    each shard the ascending global indexes it owns.  Concatenating the
    shard lists sorted by index reproduces the global order exactly.

    Raises:
        GraphError: if ``n_shards`` is not a positive integer.
    """
    if n_shards < 1:
        raise GraphError(f"shard count must be positive, got {n_shards}")
    buckets: list[list[int]] = [[] for _ in range(n_shards)]
    for idx, subject in enumerate(subjects):
        buckets[shard_of(subject, n_shards)].append(idx)
    return buckets


class ShardedKnowledgeGraph(KnowledgeGraph):
    """A knowledge graph that tracks each triple's entity-hash shard.

    Behaviorally identical to :class:`KnowledgeGraph` — every index,
    lookup and traversal is inherited unchanged — plus a parallel
    ``shard id`` column maintained on every insertion path.  The column
    is what makes the substrate *independently snapshot-able*: the store
    writes one graph file per shard without recomputing hashes, and the
    parallel ingest planner balances extraction work over the same
    buckets the snapshot will use.
    """

    def __init__(self, name: str = "kg", n_shards: int = 4) -> None:
        """
        Raises:
            GraphError: if ``n_shards`` is not a positive integer.
        """
        if n_shards < 1:
            raise GraphError(f"n_shards must be >= 1, got {n_shards}")
        super().__init__(name=name)
        self.n_shards = n_shards
        #: shard id of ``self._triples[i]``, parallel to the triple list.
        self._shard_of_idx: list[int] = []

    # ------------------------------------------------------------------
    # mutation (keeps the shard column in lockstep with the triple list)
    # ------------------------------------------------------------------
    def add_triple(self, triple: Triple) -> bool:
        """
        Raises:
            GraphError: never in practice — re-validates ``n_shards``,
                which ``__init__`` already proved positive.
        """
        added = super().add_triple(triple)
        if added:
            self._shard_of_idx.append(shard_of(triple.subject, self.n_shards))
        return added

    def bulk_restore(
        self, triples: list[Triple], entities: Iterable[Entity] = ()
    ) -> None:
        """Trusted bulk-load; recomputes the shard column in one pass.

        Raises:
            GraphError: if the graph already holds triples.
        """
        super().bulk_restore(triples, entities)
        n = self.n_shards
        self._shard_of_idx = [shard_of(t.subject, n) for t in self._triples]

    def bulk_append(self, triples: list[Triple]) -> None:
        """Trusted append of pre-deduplicated new triples (delta layers).

        Raises:
            GraphError: if a triple duplicates an existing claim — delta
                layers are recorded post-deduplication, so a collision
                means the layer does not belong to this base.
        """
        super().bulk_append(triples)
        n = self.n_shards
        self._shard_of_idx.extend(shard_of(t.subject, n) for t in triples)

    # ------------------------------------------------------------------
    # partition views
    # ------------------------------------------------------------------
    def fresh_like(self) -> "ShardedKnowledgeGraph":
        """An empty graph with the same name and shard count.

        Raises:
            GraphError: never in practice — re-validates ``n_shards``,
                which this instance already proved positive.
        """
        return ShardedKnowledgeGraph(name=self.name, n_shards=self.n_shards)

    def shard_ids(self) -> list[int]:
        """The shard id column, parallel to insertion order."""
        return list(self._shard_of_idx)

    def shard_sizes(self) -> list[int]:
        """Live triple count per shard (tombstoned slots excluded)."""
        sizes = [0] * self.n_shards
        for idx, shard in enumerate(self._shard_of_idx):
            if idx not in self._removed:
                sizes[shard] += 1
        return sizes

    def shard_items(self, shard: int) -> Iterator[tuple[int, Triple]]:
        """Live ``(global_index, triple)`` pairs owned by ``shard``.

        Global indexes are the graph's insertion order; iterating every
        shard and merging by index reproduces :meth:`triples` exactly.

        Raises:
            GraphError: if ``shard`` is out of range.
        """
        if not 0 <= shard < self.n_shards:
            raise GraphError(
                f"shard {shard} out of range for {self.n_shards} shards"
            )
        for idx, owner in enumerate(self._shard_of_idx):
            if owner == shard and idx not in self._removed:
                yield idx, self._triples[idx]

    def stats(self) -> dict[str, int]:
        base = super().stats()
        base["shards"] = self.n_shards
        return base
