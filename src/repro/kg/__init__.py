"""Knowledge-graph substrate: triples, entities, graphs and JSON-LD storage."""

from repro.kg.columnar import ColumnarStore
from repro.kg.graph import KnowledgeGraph
from repro.kg.schema import KIND_VALIDATORS, Schema
from repro.kg.shard import ShardedKnowledgeGraph, partition_indices, shard_of
from repro.kg.temporal import TemporalStore, TimestampedClaim, latest_consensus
from repro.kg.query import PatternQuery, TriplePattern, chain_query, is_variable
from repro.kg.storage import (
    JSONLD_CONTEXT,
    NormalizedRecord,
    load_graph,
    make_jsonld,
    save_graph,
    triple_from_jsonld,
    triple_to_jsonld,
)
from repro.kg.triple import Entity, Provenance, Triple

__all__ = [
    "ColumnarStore",
    "KIND_VALIDATORS",
    "Schema",
    "Entity",
    "PatternQuery",
    "TriplePattern",
    "chain_query",
    "is_variable",
    "JSONLD_CONTEXT",
    "KnowledgeGraph",
    "NormalizedRecord",
    "Provenance",
    "ShardedKnowledgeGraph",
    "partition_indices",
    "shard_of",
    "TemporalStore",
    "TimestampedClaim",
    "Triple",
    "latest_consensus",
    "load_graph",
    "make_jsonld",
    "save_graph",
    "triple_from_jsonld",
    "triple_to_jsonld",
]
