"""Typed relation schema — the knowledge-construction schema of §III-B.

The paper "define[s] relevant entity types in the schema" before running
LLM extraction, and the node-level authority score uses "entity type
information" (Eq. 10 via PTCA).  :class:`Schema` is that registry: it maps
predicates to the value kind they expect and knows how to check whether a
concrete value plausibly belongs to a kind.

The default schema is derived from the shared relation lexicon; downstream
users extend it for their own domains::

    schema = Schema.default()
    schema.register("ticket_price", "price")
    schema.register("iata_code", "code",
                    validator=lambda v: len(v) == 3 and v.isalpha())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.llm.lexicon import RELATIONS

Validator = Callable[[str], bool]


def _is_year(value: str) -> bool:
    return value.isdigit() and len(value) == 4


def _is_time(value: str) -> bool:
    return ":" in value and value.replace(":", "").isdigit()


def _is_number(value: str) -> bool:
    return bool(value) and value.replace(".", "", 1).replace(",", "").isdigit()


def _is_gate(value: str) -> bool:
    return 0 < len(value) <= 4


def _non_empty(value: str) -> bool:
    return bool(value)


#: built-in value kinds and their plausibility checks.  Open classes
#: (person, org, city, ...) accept any non-empty string: type checking is
#: for catching *category* errors, not validating spelling.
KIND_VALIDATORS: dict[str, Validator] = {
    "year": _is_year,
    "time": _is_time,
    "price": _is_number,
    "minutes": _is_number,
    "count": _is_number,
    "gate": _is_gate,
}


@dataclass(slots=True)
class Schema:
    """Predicate → expected value kind, with pluggable validators."""

    _kinds: dict[str, str] = field(default_factory=dict)
    _validators: dict[str, Validator] = field(default_factory=dict)

    @classmethod
    def default(cls) -> "Schema":
        """A schema covering every predicate in the shared lexicon."""
        schema = cls()
        for spec in RELATIONS:
            schema.register(spec.predicate, spec.object_type)
        return schema

    def register(
        self,
        predicate: str,
        kind: str,
        validator: Validator | None = None,
    ) -> None:
        """Declare (or override) the value kind of ``predicate``.

        ``validator`` overrides the kind's built-in check for this
        predicate only.
        """
        self._kinds[predicate] = kind
        if validator is not None:
            self._validators[predicate] = validator

    def kind_of(self, predicate: str) -> str | None:
        """The declared value kind, or ``None`` for unknown predicates."""
        return self._kinds.get(predicate)

    def predicates(self) -> list[str]:
        return sorted(self._kinds)

    def check(self, predicate: str, value: str) -> float:
        """Type-consistency score of ``value`` for ``predicate`` in [0, 1].

        1.0 = plausibly the right kind, 0.0 = category error, 0.5 = the
        predicate is not declared (no opinion).
        """
        kind = self._kinds.get(predicate)
        if kind is None:
            return 0.5
        validator = self._validators.get(
            predicate, KIND_VALIDATORS.get(kind, _non_empty)
        )
        return 1.0 if validator(value.strip()) else 0.0
