"""In-memory multi-source knowledge graph.

:class:`KnowledgeGraph` stores :class:`~repro.kg.triple.Triple` instances and
maintains the secondary indexes that every later stage relies on:

* ``by_subject`` / ``by_object`` / ``by_predicate`` adjacency indexes for
  graph traversal;
* a ``(subject, predicate)`` index — the backbone of homologous-group
  matching (each bucket holds the multi-source claims about one attribute of
  one entity);
* a per-source index used for corruption experiments and source-level
  credibility tracking.

The graph is append-mostly; removal is supported for the perturbation
experiments (relation masking, Fig. 5 of the paper).
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Iterator

from repro.errors import EntityNotFoundError, GraphError
from repro.kg.triple import Entity, Triple


class KnowledgeGraph:
    """A directed, labelled multigraph of provenance-carrying triples."""

    def __init__(self, name: str = "kg") -> None:
        self.name = name
        self._triples: list[Triple] = []
        self._spo_seen: set[tuple[tuple[str, str, str], str]] = set()
        self._entities: dict[str, Entity] = {}
        self._by_subject: dict[str, list[int]] = defaultdict(list)
        self._by_object: dict[str, list[int]] = defaultdict(list)
        self._by_predicate: dict[str, list[int]] = defaultdict(list)
        self._by_key: dict[tuple[str, str], list[int]] = defaultdict(list)
        self._by_source: dict[str, list[int]] = defaultdict(list)
        self._removed: set[int] = set()

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_entity(self, entity: Entity) -> Entity:
        """Register (or merge) an entity and return the stored instance."""
        existing = self._entities.get(entity.eid)
        if existing is None:
            self._entities[entity.eid] = entity
            return entity
        for attr, values in entity.attributes.items():
            for value in values:
                existing.add_attribute(attr, value)
        return existing

    def add_triple(self, triple: Triple) -> bool:
        """Insert ``triple``; returns ``False`` if this exact claim (same
        statement from the same source) is already present."""
        dedup_key = (triple.spo(), triple.source_id())
        if dedup_key in self._spo_seen:
            return False
        self._spo_seen.add(dedup_key)
        idx = len(self._triples)
        self._triples.append(triple)
        self._by_subject[triple.subject].append(idx)
        self._by_object[triple.obj].append(idx)
        self._by_predicate[triple.predicate].append(idx)
        self._by_key[triple.key()].append(idx)
        self._by_source[triple.source_id()].append(idx)
        return True

    def add_triples(self, triples: Iterable[Triple]) -> int:
        """Insert many triples; returns the number actually added."""
        return sum(1 for t in triples if self.add_triple(t))

    def bulk_restore(
        self, triples: list[Triple], entities: Iterable[Entity] = ()
    ) -> None:
        """Trusted bulk-load of pre-deduplicated triples into an empty graph.

        The snapshot loader's fast path: ``triples`` must come from a prior
        graph's :meth:`triples` iteration, so they are already deduplicated
        and in insertion order.  Skipping the per-triple membership check
        (and the ``add_triple`` call overhead) makes restoring a large
        snapshot several times faster than replaying :meth:`add_triple`,
        while producing the exact same index state.

        Raises:
            GraphError: if the graph already holds triples — bulk loading
                must not race with incremental insertion.
        """
        if self._triples:
            raise GraphError(
                "bulk_restore requires an empty graph "
                f"(this one holds {len(self._triples)} triples)"
            )
        self._triples = triples = list(triples)
        spo_seen = self._spo_seen
        by_subject = self._by_subject
        by_object = self._by_object
        by_predicate = self._by_predicate
        by_key = self._by_key
        by_source = self._by_source
        for idx, t in enumerate(triples):
            subject = t.subject
            predicate = t.predicate
            prov = t.provenance
            source = prov.source_id if prov is not None else ""
            spo_seen.add(((subject, predicate, t.obj), source))
            by_subject[subject].append(idx)
            by_object[t.obj].append(idx)
            by_predicate[predicate].append(idx)
            by_key[(subject, predicate)].append(idx)
            by_source[source].append(idx)
        for entity in entities:
            self._entities[entity.eid] = entity

    def bulk_append(self, triples: list[Triple]) -> None:
        """Trusted append of pre-deduplicated *new* triples.

        The snapshot layer-chain loader's continuation of
        :meth:`bulk_restore`: a delta layer records exactly the triples
        that :meth:`add_triple` accepted when the layer was created, so
        replaying them onto the restored base needs no membership
        decisions — only index extension.  The resulting state is
        identical to calling :meth:`add_triple` per triple.

        Raises:
            GraphError: if a triple duplicates an existing claim — delta
                layers are recorded post-deduplication, so a collision
                means the layer does not belong to this base graph.
        """
        spo_seen = self._spo_seen
        for t in triples:
            dedup_key = (t.spo(), t.source_id())
            if dedup_key in spo_seen:
                raise GraphError(
                    f"bulk_append: duplicate claim {t.spo()} from "
                    f"{t.source_id()!r} — layer does not extend this base"
                )
            spo_seen.add(dedup_key)
            idx = len(self._triples)
            self._triples.append(t)
            self._by_subject[t.subject].append(idx)
            self._by_object[t.obj].append(idx)
            self._by_predicate[t.predicate].append(idx)
            self._by_key[t.key()].append(idx)
            self._by_source[t.source_id()].append(idx)

    def fresh_like(self) -> "KnowledgeGraph":
        """An empty graph of the same concrete type and layout.

        Rebuild passes (entity standardization, snapshot compaction) use
        this instead of constructing ``KnowledgeGraph`` directly so a
        sharded graph stays sharded through the rebuild.
        """
        return KnowledgeGraph(name=self.name)

    def remove_triple(self, triple: Triple) -> bool:
        """Remove one stored triple (identity match).  Lazy deletion: the
        index slot is tombstoned, not compacted."""
        for idx in self._by_key.get(triple.key(), []):
            if idx in self._removed:
                continue
            stored = self._triples[idx]
            if stored == triple:
                self._removed.add(idx)
                self._spo_seen.discard((stored.spo(), stored.source_id()))
                return True
        return False

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def _live(self, indexes: Iterable[int]) -> Iterator[Triple]:
        for idx in indexes:
            if idx not in self._removed:
                yield self._triples[idx]

    def triples(self) -> Iterator[Triple]:
        """Iterate over all live triples."""
        return self._live(range(len(self._triples)))

    def __len__(self) -> int:
        return len(self._triples) - len(self._removed)

    def __contains__(self, spo: tuple[str, str, str]) -> bool:
        return any(t.spo() == spo for t in self.by_key(spo[0], spo[1]))

    def entity(self, eid: str) -> Entity:
        """Return the entity registered as ``eid``.

        Raises:
            EntityNotFoundError: if the entity is unknown.
        """
        try:
            return self._entities[eid]
        except KeyError:
            raise EntityNotFoundError(f"unknown entity: {eid!r}") from None

    def has_entity(self, eid: str) -> bool:
        return eid in self._entities

    def entities(self) -> Iterator[Entity]:
        return iter(self._entities.values())

    def num_entities(self) -> int:
        return len(self._entities)

    def by_subject(self, subject: str) -> list[Triple]:
        return list(self._live(self._by_subject.get(subject, [])))

    def by_object(self, obj: str) -> list[Triple]:
        return list(self._live(self._by_object.get(obj, [])))

    def by_predicate(self, predicate: str) -> list[Triple]:
        return list(self._live(self._by_predicate.get(predicate, [])))

    def by_key(self, subject: str, predicate: str) -> list[Triple]:
        """All multi-source claims about one ``(subject, predicate)`` pair."""
        return list(self._live(self._by_key.get((subject, predicate), [])))

    def by_source(self, source_id: str) -> list[Triple]:
        return list(self._live(self._by_source.get(source_id, [])))

    def keys(self) -> list[tuple[str, str]]:
        """All ``(subject, predicate)`` keys that currently have live triples."""
        return [k for k, idxs in self._by_key.items()
                if any(i not in self._removed for i in idxs)]

    def sources(self) -> list[str]:
        """Identifiers of all sources that contributed live triples."""
        return sorted(
            s for s, idxs in self._by_source.items()
            if s and any(i not in self._removed for i in idxs)
        )

    def predicates(self) -> list[str]:
        return sorted(
            p for p, idxs in self._by_predicate.items()
            if any(i not in self._removed for i in idxs)
        )

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def neighbors(self, node: str) -> set[str]:
        """Entities one hop away from ``node`` (either direction)."""
        out = {t.obj for t in self.by_subject(node)}
        inc = {t.subject for t in self.by_object(node)}
        return (out | inc) - {node}

    def degree(self, node: str) -> int:
        """Number of live triples incident to ``node``."""
        return (
            sum(1 for _ in self._live(self._by_subject.get(node, [])))
            + sum(1 for _ in self._live(self._by_object.get(node, [])))
        )

    def bfs_paths(self, start: str, goal: str, max_hops: int = 4) -> list[list[Triple]]:
        """All shortest triple-paths from ``start`` to ``goal``.

        Used by the multi-hop QA baselines; bounded by ``max_hops`` to keep
        worst-case cost predictable.
        """
        if start == goal:
            return [[]]
        frontier: list[tuple[str, list[Triple]]] = [(start, [])]
        visited = {start}
        for _ in range(max_hops):
            found: list[list[Triple]] = []
            next_frontier: list[tuple[str, list[Triple]]] = []
            next_visited: set[str] = set()
            for node, path in frontier:
                for triple in self.by_subject(node) + self.by_object(node):
                    nxt = triple.obj if triple.subject == node else triple.subject
                    if nxt in visited:
                        continue
                    new_path = path + [triple]
                    if nxt == goal:
                        found.append(new_path)
                    else:
                        next_visited.add(nxt)
                        next_frontier.append((nxt, new_path))
            if found:
                return found
            visited |= next_visited
            frontier = next_frontier
            if not frontier:
                break
        return []

    def subgraph(self, nodes: set[str]) -> "KnowledgeGraph":
        """Induced subgraph on ``nodes`` (triples with both endpoints inside)."""
        sub = KnowledgeGraph(name=f"{self.name}-sub")
        for triple in self.triples():
            if triple.subject in nodes and triple.obj in nodes:
                sub.add_triple(triple)
        for eid, entity in self._entities.items():
            if eid in nodes:
                sub.add_entity(entity)
        return sub

    def connected_component(self, seed: str, max_size: int | None = None) -> set[str]:
        """Entities reachable from ``seed`` ignoring edge direction."""
        component = {seed}
        stack = [seed]
        while stack:
            node = stack.pop()
            for nb in self.neighbors(node):
                if nb not in component:
                    component.add(nb)
                    stack.append(nb)
                    if max_size is not None and len(component) >= max_size:
                        return component
        return component

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        """Counts used by the Table I reproduction."""
        nodes = {t.subject for t in self.triples()} | {t.obj for t in self.triples()}
        return {
            "entities": len(nodes | set(self._entities)),
            "relations": len(self),
            "predicates": len(self.predicates()),
            "sources": len(self.sources()),
        }
