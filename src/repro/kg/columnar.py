"""On-disk Decomposition Storage Model (DSM) for normalized records.

Definition 1 stores structured data columnar-style so that "all attribute
information for consistency checks" is reachable "through the use of
column indices".  :class:`ColumnarStore` persists that layout: every
normalized record becomes a directory holding one file per column, so a
consistency check over one attribute reads exactly one small file per
source instead of re-parsing whole tables.

Layout::

    <root>/
      _catalog.json                      # record_id -> directory name
      <slug>/
        _meta.json                       # record_id, domain, name, meta
        directed_by.col.json             # one value list per column
        release_year.col.json
"""

from __future__ import annotations

import json
import re
from collections import Counter
from pathlib import Path

from repro.errors import GraphError
from repro.kg.storage import NormalizedRecord

_SLUG_RE = re.compile(r"[^a-z0-9]+")
_COLUMN_SUFFIX = ".col.json"


def _slug(text: str) -> str:
    cleaned = _SLUG_RE.sub("-", text.lower()).strip("-")
    return cleaned[:80] or "record"


class ColumnarStore:
    """Persist and selectively read DSM column files."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._catalog_path = self.root / "_catalog.json"
        self._catalog: dict[str, str] = {}
        if self._catalog_path.exists():
            self._catalog = json.loads(self._catalog_path.read_text())

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def write_record(self, record: NormalizedRecord) -> Path:
        """Write one record's columns; records without a column index
        (semi-/unstructured) are rejected — they are not columnar data.

        Raises:
            GraphError: if the record carries no ``cols_index``.
        """
        if record.cols_index is None:
            raise GraphError(
                f"record {record.record_id!r} has no column index; "
                "only structured (DSM) records are columnar"
            )
        directory = self._directory_for(record.record_id, create=True)
        (directory / "_meta.json").write_text(json.dumps({
            "record_id": record.record_id,
            "domain": record.domain,
            "name": record.name,
            "meta": record.meta,
            "columns": sorted(record.cols_index),
        }, ensure_ascii=False))
        for column, values in record.cols_index.items():
            path = directory / f"{_slug(column)}{_COLUMN_SUFFIX}"
            path.write_text(json.dumps({"column": column, "values": values},
                                        ensure_ascii=False))
        self._save_catalog()
        return directory

    def _directory_for(self, record_id: str, create: bool = False) -> Path:
        name = self._catalog.get(record_id)
        if name is None:
            if not create:
                raise GraphError(f"unknown record {record_id!r}")
            base = _slug(record_id)
            name = base
            counter = 1
            while (self.root / name).exists():
                counter += 1
                name = f"{base}-{counter}"
            self._catalog[record_id] = name
            (self.root / name).mkdir(parents=True, exist_ok=True)
        return self.root / name

    def _save_catalog(self) -> None:
        self._catalog_path.write_text(json.dumps(self._catalog, indent=1))

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def records(self) -> list[str]:
        """All stored record ids (catalog order is insertion order)."""
        return list(self._catalog)

    def columns(self, record_id: str) -> list[str]:
        """Column names stored for one record.

        Raises:
            GraphError: for unknown records.
        """
        directory = self._directory_for(record_id)
        meta = json.loads((directory / "_meta.json").read_text())
        return list(meta.get("columns", []))

    def read_meta(self, record_id: str) -> dict:
        """The record's ``_meta.json`` payload.

        Raises:
            GraphError: for unknown records.
        """
        directory = self._directory_for(record_id)
        return json.loads((directory / "_meta.json").read_text())

    def read_column(self, record_id: str, column: str) -> list[str]:
        """Selectively read one column of one record.

        Raises:
            GraphError: for unknown records or columns.
        """
        directory = self._directory_for(record_id)
        path = directory / f"{_slug(column)}{_COLUMN_SUFFIX}"
        if not path.exists():
            raise GraphError(
                f"record {record_id!r} has no column {column!r}"
            )
        payload = json.loads(path.read_text())
        return list(payload["values"])

    def scan_column(self, column: str) -> dict[str, list[str]]:
        """Read ``column`` from every record that has it (cross-source
        attribute scan — the consistency-check access pattern)."""
        out: dict[str, list[str]] = {}
        for record_id in self._catalog:
            try:
                out[record_id] = self.read_column(record_id, column)
            except GraphError:  # repro-lint: ignore[EXC003] — records lacking the column are skipped by design
                continue
        return out

    def distinct(self, column: str) -> set[str]:
        """Distinct values of ``column`` across all sources."""
        values: set[str] = set()
        for column_values in self.scan_column(column).values():
            values.update(column_values)
        return values

    def value_counts(self, column: str) -> Counter:
        """Cross-source support counts per value — the raw material of a
        column-level consistency check."""
        counts: Counter = Counter()
        for column_values in self.scan_column(column).values():
            counts.update(column_values)
        return counts
