"""Pattern queries over the knowledge graph.

A light SPARQL-flavoured matcher: a query is a list of triple patterns
whose terms are either constants or ``?variables``; evaluation returns all
variable bindings satisfying every pattern.  The KBQA-style baselines use
single patterns; multi-pattern conjunctions support the multi-hop logical
forms ("the spouse of the director of X") in one call.

Example::

    q = PatternQuery([
        TriplePattern("?film", "directed_by", "?director"),
        TriplePattern("?director", "born_in", "London"),
    ])
    for binding in q.evaluate(graph):
        print(binding["?film"], binding["?director"])
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import QueryError
from repro.kg.graph import KnowledgeGraph
from repro.kg.triple import Triple

Binding = dict[str, str]


def is_variable(term: str) -> bool:
    """Query terms starting with ``?`` are variables."""
    return term.startswith("?")


@dataclass(frozen=True, slots=True)
class TriplePattern:
    """One ``(subject, predicate, object)`` pattern with optional variables.

    The predicate may be a variable too, though constant predicates are
    dramatically cheaper (they hit the key/predicate indexes).
    """

    subject: str
    predicate: str
    obj: str

    def variables(self) -> set[str]:
        return {t for t in (self.subject, self.predicate, self.obj)
                if is_variable(t)}

    def ground(self, binding: Binding) -> "TriplePattern":
        """Substitute bound variables with their values."""
        def resolve(term: str) -> str:
            return binding.get(term, term)

        return TriplePattern(
            resolve(self.subject), resolve(self.predicate), resolve(self.obj)
        )

    def candidates(self, graph: KnowledgeGraph) -> list[Triple]:
        """Fetch the smallest candidate set the graph's indexes allow."""
        s_var = is_variable(self.subject)
        p_var = is_variable(self.predicate)
        o_var = is_variable(self.obj)
        if not s_var and not p_var:
            return graph.by_key(self.subject, self.predicate)
        if not s_var:
            return graph.by_subject(self.subject)
        if not o_var:
            return graph.by_object(self.obj)
        if not p_var:
            return graph.by_predicate(self.predicate)
        return list(graph.triples())

    def match(self, triple: Triple, binding: Binding) -> Binding | None:
        """Extend ``binding`` so the (grounded) pattern matches ``triple``;
        returns ``None`` on mismatch."""
        extended = dict(binding)
        for term, value in (
            (self.subject, triple.subject),
            (self.predicate, triple.predicate),
            (self.obj, triple.obj),
        ):
            if is_variable(term):
                bound = extended.get(term)
                if bound is None:
                    extended[term] = value
                elif bound != value:
                    return None
            elif term != value:
                return None
        return extended


@dataclass(frozen=True, slots=True)
class PatternQuery:
    """A conjunction of triple patterns evaluated by backtracking join."""

    patterns: tuple[TriplePattern, ...]

    def __init__(self, patterns: list[TriplePattern] | tuple[TriplePattern, ...]):
        if not patterns:
            raise QueryError("a pattern query needs at least one pattern")
        object.__setattr__(self, "patterns", tuple(patterns))

    def variables(self) -> set[str]:
        out: set[str] = set()
        for pattern in self.patterns:
            out |= pattern.variables()
        return out

    def evaluate(self, graph: KnowledgeGraph, limit: int | None = None) -> list[Binding]:
        """All satisfying bindings (deduplicated), optionally capped."""
        results: list[Binding] = []
        seen: set[tuple[tuple[str, str], ...]] = set()
        for binding in self._search(graph, 0, {}):
            key = tuple(sorted(binding.items()))
            if key in seen:
                continue
            seen.add(key)
            results.append(binding)
            if limit is not None and len(results) >= limit:
                break
        return results

    def _search(
        self, graph: KnowledgeGraph, index: int, binding: Binding
    ) -> Iterator[Binding]:
        if index == len(self.patterns):
            yield dict(binding)
            return
        pattern = self.patterns[index].ground(binding)
        for triple in pattern.candidates(graph):
            extended = pattern.match(triple, binding)
            if extended is not None:
                yield from self._search(graph, index + 1, extended)

    def values(self, graph: KnowledgeGraph, variable: str) -> set[str]:
        """Convenience: the distinct bindings of one output variable.

        Raises:
            QueryError: if ``variable`` does not occur in the query.
        """
        if variable not in self.variables():
            raise QueryError(f"{variable!r} does not occur in the query")
        return {b[variable] for b in self.evaluate(graph)}


def chain_query(start: str, predicates: list[str]) -> PatternQuery:
    """Build the hop-chain query ``start -p1-> ?v1 -p2-> ?v2 ...``.

    The final variable is ``?v{n}``; use :meth:`PatternQuery.values` with
    it to read the chain's answers.

    Raises:
        QueryError: if ``predicates`` is empty.
    """
    if not predicates:
        raise QueryError("chain_query needs at least one predicate")
    patterns = []
    subject = start
    for i, predicate in enumerate(predicates):
        var = f"?v{i + 1}"
        patterns.append(TriplePattern(subject, predicate, var))
        subject = var
    return PatternQuery(patterns)
