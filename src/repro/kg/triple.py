"""Core value types of the knowledge-graph substrate.

A :class:`Triple` is the atomic unit of knowledge: ``(subject, predicate,
object)`` plus :class:`Provenance` describing which source, domain and file
format it came from.  Provenance is what makes *multi-source* reasoning
possible downstream: homologous-group matching (Definition 3 of the paper)
groups triples that describe the same ``(subject, predicate)`` pair but come
from different sources, and the confidence machinery weighs them by source.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True, slots=True)
class Provenance:
    """Where a piece of knowledge came from.

    Attributes:
        source_id: Unique identifier of the originating source
            (e.g. ``"movies-src-03"``).
        domain: Domain of the data file per Definition 1 (e.g. ``"movies"``).
        fmt: Storage format of the source: ``"csv"``, ``"json"``, ``"xml"``,
            ``"kg"`` or ``"text"``.
        chunk_id: Identifier of the text chunk the triple was extracted from,
            if it came through the unstructured pipeline.
        record_id: Row / record identifier within the source file.
        observed_at: Optional observation timestamp of the claim.
    """

    source_id: str
    domain: str = ""
    fmt: str = ""
    chunk_id: str | None = None
    record_id: str | None = None
    #: observation time of the claim (seconds on any consistent clock);
    #: ``None`` for timeless data.  Set per source snapshot via
    #: ``RawSource.meta["observed_at"]`` and consumed by the pipeline's
    #: freshness filter (``MultiRAGConfig.staleness``).
    observed_at: float | None = None


@dataclass(frozen=True, slots=True)
class Triple:
    """A subject-predicate-object statement with provenance.

    Equality and hashing include provenance: the same assertion made by two
    different sources is represented by two distinct triples.  Use
    :meth:`spo` when only the statement itself matters.
    """

    subject: str
    predicate: str
    obj: str
    provenance: Provenance | None = None

    def spo(self) -> tuple[str, str, str]:
        """Return the bare ``(subject, predicate, object)`` statement key."""
        return (self.subject, self.predicate, self.obj)

    def key(self) -> tuple[str, str]:
        """Return the homologous-group key ``(subject, predicate)``.

        Triples sharing this key across sources are *multi-source homologous
        data* in the sense of Definition 3.
        """
        return (self.subject, self.predicate)

    def source_id(self) -> str:
        """Source identifier, or ``""`` for provenance-free triples."""
        return self.provenance.source_id if self.provenance else ""

    def shares_node_with(self, other: "Triple") -> bool:
        """True if the two statements share an endpoint or predicate subject.

        This is the adjacency criterion of the line-graph transform
        (Definition 2): two line-graph nodes are connected iff the triples
        they represent have a common node.
        """
        mine = {self.subject, self.obj}
        theirs = {other.subject, other.obj}
        return bool(mine & theirs)

    def __str__(self) -> str:  # pragma: no cover - display convenience
        src = f" @{self.source_id()}" if self.provenance else ""
        return f"({self.subject}, {self.predicate}, {self.obj}){src}"


@dataclass(slots=True)
class Entity:
    """A named entity with typed attributes.

    Attributes are multi-valued (``dict[str, set[str]]``): a movie can have
    several directors, a book several authors.  The paper calls out that
    single-answer fusers (majority vote) fail precisely on such attributes.
    """

    eid: str
    name: str
    etype: str = "thing"
    attributes: dict[str, set[str]] = field(default_factory=dict)

    def add_attribute(self, name: str, value: str) -> None:
        """Record ``value`` as one of the values of attribute ``name``."""
        self.attributes.setdefault(name, set()).add(value)

    def get(self, name: str) -> set[str]:
        """Return the value set for ``name`` (empty set if absent)."""
        return self.attributes.get(name, set())

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form used by the JSON-LD serializer."""
        return {
            "eid": self.eid,
            "name": self.name,
            "etype": self.etype,
            "attributes": {k: sorted(v) for k, v in self.attributes.items()},
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Entity":
        """Inverse of :meth:`to_dict`."""
        return cls(
            eid=data["eid"],
            name=data["name"],
            etype=data.get("etype", "thing"),
            attributes={k: set(v) for k, v in data.get("attributes", {}).items()},
        )
