"""JSON-LD-backed normalized storage (Definition 1 of the paper).

The multi-source fusion step turns every raw file into a
:class:`NormalizedRecord` ``{id, d, name, jsc, meta, (cols_index)}``:

* ``id`` — unique identifier assigned at normalization time;
* ``domain`` (``d``) — the domain the file belongs to;
* ``name`` — file / attribute name;
* ``jsonld`` (``jsc``) — the content re-expressed as JSON-LD linked data;
* ``meta`` — file metadata carried through unchanged;
* ``cols_index`` — for columnar (structured) data only: a column→values
  index in Decomposition Storage Model layout enabling O(1) attribute
  lookups during consistency checks.

This module also provides round-trip (de)serialization of a whole
:class:`~repro.kg.graph.KnowledgeGraph` so built graphs can be cached on
disk between benchmark runs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.kg.graph import KnowledgeGraph
from repro.kg.triple import Entity, Provenance, Triple
from repro.util import atomic_write_text

#: ``@context`` used for every JSON-LD document this library emits.
JSONLD_CONTEXT = "https://schema.org/"


@dataclass(slots=True)
class NormalizedRecord:
    """One normalized data file, per Definition 1."""

    record_id: str
    domain: str
    name: str
    jsonld: dict[str, Any]
    meta: dict[str, Any] = field(default_factory=dict)
    cols_index: dict[str, list[str]] | None = None

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "id": self.record_id,
            "domain": self.domain,
            "name": self.name,
            "jsonld": self.jsonld,
            "meta": self.meta,
        }
        if self.cols_index is not None:
            data["cols_index"] = self.cols_index
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "NormalizedRecord":
        return cls(
            record_id=data["id"],
            domain=data["domain"],
            name=data["name"],
            jsonld=data["jsonld"],
            meta=data.get("meta", {}),
            cols_index=data.get("cols_index"),
        )

    def column(self, name: str) -> list[str]:
        """Fast columnar lookup; empty list when no column index exists."""
        if not self.cols_index:
            return []
        return self.cols_index.get(name, [])


def make_jsonld(entity_id: str, properties: dict[str, Any]) -> dict[str, Any]:
    """Wrap a property map as a JSON-LD node (Fig. 2 of the paper)."""
    doc: dict[str, Any] = {"@context": JSONLD_CONTEXT, "@id": entity_id}
    doc.update(properties)
    return doc


def triple_to_jsonld(triple: Triple) -> dict[str, Any]:
    """One triple as a JSON-LD statement, provenance included."""
    doc = make_jsonld(triple.subject, {triple.predicate: triple.obj})
    if triple.provenance:
        doc["@provenance"] = {
            "source": triple.provenance.source_id,
            "domain": triple.provenance.domain,
            "format": triple.provenance.fmt,
            "chunk": triple.provenance.chunk_id,
            "record": triple.provenance.record_id,
            "observed_at": triple.provenance.observed_at,
        }
    return doc


def triple_from_jsonld(doc: dict[str, Any]) -> Triple:
    """Inverse of :func:`triple_to_jsonld`."""
    subject = doc["@id"]
    prov_doc = doc.get("@provenance")
    provenance = None
    if prov_doc:
        provenance = Provenance(
            source_id=prov_doc.get("source", ""),
            domain=prov_doc.get("domain", ""),
            fmt=prov_doc.get("format", ""),
            chunk_id=prov_doc.get("chunk"),
            record_id=prov_doc.get("record"),
            observed_at=prov_doc.get("observed_at"),
        )
    for key, value in doc.items():
        if not key.startswith("@"):
            return Triple(subject, key, str(value), provenance)
    raise ValueError(f"JSON-LD statement without predicate: {doc!r}")


def save_graph(graph: KnowledgeGraph, path: str | Path) -> None:
    """Serialize ``graph`` (triples + entities) to a JSON file.

    The write is atomic (temp file + ``os.replace``): a crash mid-save
    leaves the previous file intact rather than a truncated JSON.
    """
    payload = {
        "name": graph.name,
        "triples": [triple_to_jsonld(t) for t in graph.triples()],
        "entities": [e.to_dict() for e in graph.entities()],
    }
    atomic_write_text(path, json.dumps(payload, ensure_ascii=False, indent=1))


def load_graph(path: str | Path) -> KnowledgeGraph:
    """Inverse of :func:`save_graph`."""
    payload = json.loads(Path(path).read_text())
    graph = KnowledgeGraph(name=payload.get("name", "kg"))
    for doc in payload.get("triples", []):
        graph.add_triple(triple_from_jsonld(doc))
    for edoc in payload.get("entities", []):
        graph.add_entity(Entity.from_dict(edoc))
    return graph
