"""Temporal claim tracking — an extension beyond the paper's core.

The paper motivates KGs that "efficiently store data with fixed
characteristics (such as temporal KGs, event KGs)" and its flagship case
study (CA981) is inherently temporal: a flight's status *changes*, and a
stale "on time" is not a conflict with a fresh "delayed" — it is an
earlier snapshot.  This module adds a validity-time layer over the claim
model:

* :class:`TimestampedClaim` — a claim observed at a point in time;
* :class:`TemporalStore` — per-key history with ``as_of`` queries and
  interval views;
* :func:`latest_consensus` — freshness-aware conflict resolution: only
  the claims of the latest observation window compete, older snapshots
  inform history instead of polluting the candidate set.

The store is deliberately independent of :class:`KnowledgeGraph`; the
pipeline can consult it before homologous matching to drop superseded
claims (see ``examples``/future work).
"""

from __future__ import annotations

from bisect import bisect_right, insort
from collections import Counter, defaultdict
from dataclasses import dataclass, field

from repro.errors import GraphError
from repro.util import normalize_value


@dataclass(frozen=True, slots=True, order=True)
class TimestampedClaim:
    """One observation: at ``observed_at``, ``source_id`` said the key's
    value was ``value``.  Ordering is by time (then source, then value)
    so stores stay sorted."""

    observed_at: float
    source_id: str
    entity: str
    attribute: str
    value: str

    def key(self) -> tuple[str, str]:
        return (self.entity, self.attribute)


@dataclass(slots=True)
class TemporalStore:
    """Sorted per-key claim histories with time-sliced views."""

    _by_key: dict[tuple[str, str], list[TimestampedClaim]] = field(
        default_factory=lambda: defaultdict(list)
    )

    def add(self, claim: TimestampedClaim) -> None:
        insort(self._by_key[claim.key()], claim)

    def add_all(self, claims: list[TimestampedClaim]) -> None:
        for claim in claims:
            self.add(claim)

    def keys(self) -> list[tuple[str, str]]:
        return sorted(k for k, v in self._by_key.items() if v)

    def history(self, entity: str, attribute: str) -> list[TimestampedClaim]:
        """Full observation history of one key, oldest first."""
        return list(self._by_key.get((entity, attribute), ()))

    def as_of(
        self, entity: str, attribute: str, timestamp: float
    ) -> list[TimestampedClaim]:
        """Every observation made at or before ``timestamp``."""
        claims = self._by_key.get((entity, attribute), [])
        # Claims sort by observed_at first; find the cut point (ties at
        # exactly ``timestamp`` are included).
        cut = bisect_right(claims, timestamp, key=lambda c: c.observed_at)
        return claims[:cut]

    def latest_per_source(
        self, entity: str, attribute: str, timestamp: float | None = None
    ) -> dict[str, TimestampedClaim]:
        """Each source's most recent observation of the key.

        A source that updated its claim supersedes its own history — the
        temporal analogue of "this is not a conflict, it is a correction".
        """
        claims = (
            self.as_of(entity, attribute, timestamp)
            if timestamp is not None
            else self.history(entity, attribute)
        )
        latest: dict[str, TimestampedClaim] = {}
        for claim in claims:  # sorted ascending; later wins
            latest[claim.source_id] = claim
        return latest

    def window(
        self, entity: str, attribute: str, start: float, end: float
    ) -> list[TimestampedClaim]:
        """Observations with ``start <= observed_at <= end``.

        Raises:
            GraphError: if ``start`` is greater than ``end``.
        """
        if start > end:
            raise GraphError(f"empty window: start {start} > end {end}")
        return [
            c for c in self._by_key.get((entity, attribute), ())
            if start <= c.observed_at <= end
        ]


def latest_consensus(
    store: TemporalStore,
    entity: str,
    attribute: str,
    timestamp: float | None = None,
    staleness: float | None = None,
) -> tuple[str | None, dict[str, int]]:
    """Freshness-aware consensus for one key.

    Takes each source's latest observation (optionally discarding those
    older than ``staleness`` before the most recent observation) and
    majority-votes over the *current* claims only.  Returns the winning
    display value (``None`` when the key has no observations) plus the
    support counts per normalized value.
    """
    latest = store.latest_per_source(entity, attribute, timestamp)
    if not latest:
        return None, {}
    newest = max(c.observed_at for c in latest.values())
    considered = [
        c for c in latest.values()
        if staleness is None or newest - c.observed_at <= staleness
    ]
    counts: Counter[str] = Counter()
    display: dict[str, str] = {}
    for claim in considered:
        norm = normalize_value(claim.value)
        counts[norm] += 1
        display.setdefault(norm, claim.value)
    winner = min(counts, key=lambda k: (-counts[k], k))
    return display[winner], dict(counts)
